//! Content-addressed result cache for EDA invocations.
//!
//! AIVRIL2's corrective loops re-invoke the tools on near-duplicate
//! inputs constantly: the testbench is recompiled unchanged on every
//! iteration, `SimLlm` derives candidates by fault-injecting golden RTL
//! (so distinct grid runs converge to identical text), and the scoring
//! pass recompiles sources the pipeline already compiled. Every tool
//! invocation here is a pure function of its inputs, so memoization is
//! sound with **no invalidation logic at all** — a key can never go
//! stale because nothing outside the key influences the result.
//!
//! # Key derivation
//!
//! A key is a 128-bit FNV-1a hash over an unambiguous serialisation of
//! everything the invocation reads:
//!
//! - an operation tag (`analyze` / `compile` / `simulate`), so the
//!   three shards can never alias;
//! - the ordered `(name, language, text)` file set, each string
//!   length-prefixed (file order matters to the tools: the first file's
//!   language selects the frontend, and logs list files in order);
//! - the `top` override (tagged, so `None` differs from `Some("")`);
//! - the [`ToolLatencyModel`] constants as IEEE-754 bit patterns
//!   (reports embed `modeled_latency`);
//! - for simulation, the [`SimConfig`] limits (they shape truncation
//!   and therefore logs, pass/fail, and instruction counts).
//!
//! # Deterministic hit accounting
//!
//! Hit/miss totals must not depend on `AIVRIL_THREADS` or scheduling,
//! or they would perturb the canonical metrics artifact. Each key maps
//! to an [`OnceLock`] slot; a thread counts a **miss** iff it is the
//! one that *inserts* the slot (decided under the write lock), and a
//! **hit** otherwise — even when the value is still being computed by
//! the inserting thread. Consequently `misses == #distinct keys` and
//! `hits == #lookups − #distinct keys`, both schedule-independent.
//! `OnceLock::get_or_init` deduplicates the computation itself.
//!
//! # Why modeled latency is stored, not recomputed
//!
//! The latency model is part of the *result* (`modeled_latency` drives
//! Figure 3), and recomputing it on a hit would need the instruction
//! count — which only the kernel run produces. Storing the full report
//! makes a hit byte-identical to a live run by construction rather than
//! by reimplementation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::disk::{DiskStats, DiskStore};
use crate::latency::ToolLatencyModel;
use crate::report::{CompileReport, SimReport};
use crate::source::{HdlFile, Language};
use aivril_hdl::diag::Diagnostics;
use aivril_hdl::ir::Design;
use aivril_sim::{KernelTelemetry, SimConfig};

/// A compile shard entry: the report plus the elaborated design, so a
/// hit also skips re-elaboration for `simulate`'s compile phase.
#[derive(Debug, Clone)]
pub(crate) struct CompileEntry {
    pub(crate) report: CompileReport,
    pub(crate) design: Option<Arc<Design>>,
}

/// A simulate shard entry: the full report, the sim-phase share of the
/// modeled latency (the span needs it separately from the report's
/// compile+sim total), and the kernel telemetry to replay on a hit.
#[derive(Debug, Clone)]
pub(crate) struct SimEntry {
    pub(crate) report: SimReport,
    pub(crate) sim_latency: f64,
    pub(crate) kernel: Option<KernelTelemetry>,
}

/// A parse shard entry: one file's AST together with its syntax
/// diagnostics, replayed verbatim on a hit. The AST nodes are
/// `Arc`-shared by construction (see the frontends' `ast` modules), so
/// cloning a unit to stitch it into a compile is pointer-cheap.
#[derive(Debug, Clone)]
pub(crate) enum ParsedFile {
    /// A Verilog file's modules.
    Verilog(aivril_verilog::ast::SourceUnit, Diagnostics),
    /// A VHDL file's entities and architectures.
    Vhdl(aivril_vhdl::ast::DesignFile, Diagnostics),
}

/// An elaboration shard entry: the elaborated design (when elaboration
/// produced one) plus the elab-phase diagnostics to replay.
#[derive(Debug, Clone)]
pub(crate) struct ElabEntry {
    pub(crate) design: Option<Arc<Design>>,
    pub(crate) diags: Diagnostics,
}

/// A cache slot: present in the map from the moment some thread claims
/// the key, initialised once the computation finishes.
pub(crate) type Slot<V> = Arc<OnceLock<V>>;

/// One keyed shard with insert-counts-as-miss accounting.
#[derive(Debug)]
struct Shard<V> {
    map: RwLock<HashMap<u128, Slot<V>>>,
}

impl<V> Default for Shard<V> {
    // Manual impl: the derive would demand `V: Default`, which the
    // entry types have no reason to satisfy.
    fn default() -> Shard<V> {
        Shard {
            map: RwLock::new(HashMap::new()),
        }
    }
}

impl<V> Shard<V> {
    /// Returns the slot for `key` and whether this lookup was a hit,
    /// bumping the shared counters. See the module docs for why the
    /// accounting is schedule-independent.
    fn slot(&self, key: u128, hits: &AtomicU64, misses: &AtomicU64) -> (Slot<V>, bool) {
        if let Some(slot) = self.map.read().expect("cache lock").get(&key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(slot), true);
        }
        let mut map = self.map.write().expect("cache lock");
        match map.entry(key) {
            Entry::Occupied(e) => {
                hits.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.get()), true)
            }
            Entry::Vacant(e) => {
                misses.fetch_add(1, Ordering::Relaxed);
                (Arc::clone(e.insert(Arc::new(OnceLock::new()))), false)
            }
        }
    }

    fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }
}

#[derive(Debug, Default)]
struct Inner {
    analyze: Shard<CompileReport>,
    compile: Shard<CompileEntry>,
    sim: Shard<SimEntry>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Incremental-compile shards. These memoize *phases* of the whole
    /// invocations above, so their counters are kept separate: the
    /// `hits`/`misses` pair must keep meaning "whole tool invocations"
    /// for the canonical metrics artifact.
    parse: Shard<ParsedFile>,
    elab: Shard<ElabEntry>,
    parse_hits: AtomicU64,
    parse_misses: AtomicU64,
    elab_hits: AtomicU64,
    elab_misses: AtomicU64,
    /// Optional persistent tier (`AIVRIL_EDA_CACHE_DIR`), probed only
    /// after a memory miss so the hit/miss accounting above stays
    /// schedule-independent with or without it.
    disk: Option<DiskStore>,
}

/// Shared content-addressed cache of EDA invocation results.
///
/// Cloning is cheap and shares the underlying store — the bench harness
/// clones one cache into every `AIVRIL_THREADS` worker's tool suite.
/// Enable it per suite with [`XsimToolSuite::with_cache`]; results are
/// bit-identical with the cache on or off (only wall-clock changes),
/// which `tests/eda_cache.rs` enforces.
///
/// [`XsimToolSuite::with_cache`]: crate::XsimToolSuite::with_cache
#[derive(Debug, Clone, Default)]
pub struct EdaCache {
    inner: Arc<Inner>,
}

impl EdaCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> EdaCache {
        EdaCache::default()
    }

    /// Creates a cache backed by a persistent on-disk store at `dir`
    /// (created lazily on first write). The disk tier is shared across
    /// processes, shards and runs; corrupt or alien entries degrade to
    /// misses. See `crate::disk` for the format and robustness
    /// contract.
    #[must_use]
    pub fn persistent(dir: impl AsRef<std::path::Path>) -> EdaCache {
        EdaCache {
            inner: Arc::new(Inner {
                disk: Some(DiskStore::new(dir.as_ref())),
                ..Inner::default()
            }),
        }
    }

    /// [`EdaCache::persistent`] with a deterministic fault plan on the
    /// disk tier (`AIVRIL_EDA_FAULTS` disk classes). The disk tier is
    /// an accelerator, so injected storage chaos perturbs only its
    /// diagnostic counters — results still degrade to recomputation.
    #[must_use]
    pub fn persistent_with_faults(
        dir: impl AsRef<std::path::Path>,
        plan: crate::faults::EdaFaultPlan,
    ) -> EdaCache {
        EdaCache {
            inner: Arc::new(Inner {
                disk: Some(DiskStore::new(dir.as_ref()).with_faults(plan)),
                ..Inner::default()
            }),
        }
    }

    /// Diagnostic counters of the disk tier; `None` for a memory-only
    /// cache. Unlike [`EdaCache::stats`] these depend on what earlier
    /// runs left on disk, so they never enter canonical artifacts.
    #[must_use]
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.inner.disk.as_ref().map(DiskStore::stats)
    }

    /// Snapshot of the lifetime hit/miss/entry counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            entries: (self.inner.analyze.len() + self.inner.compile.len() + self.inner.sim.len())
                as u64,
            parse_hits: self.inner.parse_hits.load(Ordering::Relaxed),
            parse_misses: self.inner.parse_misses.load(Ordering::Relaxed),
            elab_hits: self.inner.elab_hits.load(Ordering::Relaxed),
            elab_misses: self.inner.elab_misses.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn analyze_slot(&self, key: u128) -> (Slot<CompileReport>, bool) {
        let (slot, hit) = self
            .inner
            .analyze
            .slot(key, &self.inner.hits, &self.inner.misses);
        if !hit {
            // Fresh key: give the disk tier one chance to pre-fill the
            // slot before the caller's get_or_init runs the tools.
            if let Some(report) = self.inner.disk.as_ref().and_then(|d| d.load_analyze(key)) {
                let _ = slot.set(report);
            }
        }
        (slot, hit)
    }

    pub(crate) fn compile_slot(&self, key: u128) -> (Slot<CompileEntry>, bool) {
        // Memory-only: the entry's `Arc<Design>` is process-local IR
        // with no serial form (see `crate::disk`).
        self.inner
            .compile
            .slot(key, &self.inner.hits, &self.inner.misses)
    }

    /// Per-file parse memo (memory-only: ASTs have no serial form).
    /// Counted separately from whole-invocation hits/misses.
    pub(crate) fn parse_slot(&self, key: u128) -> (Slot<ParsedFile>, bool) {
        self.inner
            .parse
            .slot(key, &self.inner.parse_hits, &self.inner.parse_misses)
    }

    /// Elaboration memo keyed by the top's instantiation-closure source
    /// (memory-only). Counted separately from whole-invocation
    /// hits/misses.
    pub(crate) fn elab_slot(&self, key: u128) -> (Slot<ElabEntry>, bool) {
        self.inner
            .elab
            .slot(key, &self.inner.elab_hits, &self.inner.elab_misses)
    }

    pub(crate) fn sim_slot(&self, key: u128) -> (Slot<SimEntry>, bool) {
        let (slot, hit) = self
            .inner
            .sim
            .slot(key, &self.inner.hits, &self.inner.misses);
        if !hit {
            if let Some(entry) = self.inner.disk.as_ref().and_then(|d| d.load_sim(key)) {
                let _ = slot.set(entry);
            }
        }
        (slot, hit)
    }

    /// Persists a freshly-computed analyze result (no-op without a
    /// disk tier). Called from inside the compute closure, so a value
    /// that came *from* disk is never written back.
    pub(crate) fn persist_analyze(&self, key: u128, report: &CompileReport) {
        if let Some(disk) = &self.inner.disk {
            disk.store_analyze(key, report);
        }
    }

    /// Persists a freshly-computed simulation result (no-op without a
    /// disk tier).
    pub(crate) fn persist_sim(&self, key: u128, entry: &SimEntry) {
        if let Some(disk) = &self.inner.disk {
            disk.store_sim(key, entry);
        }
    }
}

/// Point-in-time cache counters; subtract two snapshots (via
/// [`CacheStats::since`]) to scope them to one evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including lookups that waited
    /// on a concurrently-computing entry).
    pub hits: u64,
    /// Lookups that claimed a fresh key and ran the tools.
    pub misses: u64,
    /// Distinct keys stored across all shards.
    pub entries: u64,
    /// Per-file parse lookups served from the incremental-compile memo.
    pub parse_hits: u64,
    /// Per-file parse lookups that ran the frontend parser.
    pub parse_misses: u64,
    /// Elaboration lookups served from the incremental-compile memo.
    pub elab_hits: u64,
    /// Elaboration lookups that re-ran the elaborator.
    pub elab_misses: u64,
}

impl CacheStats {
    /// Total lookups.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache, in `[0, 1]`; `0` when
    /// there were no lookups.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter deltas relative to an `earlier` snapshot of the same
    /// cache (entries stay absolute: they describe the store, not the
    /// interval).
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            parse_hits: self.parse_hits - earlier.parse_hits,
            parse_misses: self.parse_misses - earlier.parse_misses,
            elab_hits: self.elab_hits - earlier.elab_hits,
            elab_misses: self.elab_misses - earlier.elab_misses,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries; \
             incremental: parse {}/{}, elab {}/{})",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.parse_hits,
            self.parse_misses,
            self.elab_hits,
            self.elab_misses
        )
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a over an explicit, length-prefixed
/// serialisation (so adjacent fields can never alias).
struct KeyHasher(u128);

impl KeyHasher {
    fn new(op: &str) -> KeyHasher {
        let mut h = KeyHasher(FNV128_OFFSET);
        h.write_str(op);
        h
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u128::from(b);
            self.0 = self.0.wrapping_mul(FNV128_PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    fn write_files(&mut self, files: &[HdlFile]) {
        self.write_u64(files.len() as u64);
        for f in files {
            self.write_str(&f.name);
            self.write_u64(match f.language {
                Language::Verilog => 0,
                Language::Vhdl => 1,
            });
            self.write_str(&f.text);
        }
    }

    fn write_top(&mut self, top: Option<&str>) {
        match top {
            None => self.write_u64(0),
            Some(t) => {
                self.write_u64(1);
                self.write_str(t);
            }
        }
    }

    fn write_latency(&mut self, m: &ToolLatencyModel) {
        self.write_u64(m.compile_base.to_bits());
        self.write_u64(m.compile_per_kb.to_bits());
        self.write_u64(m.sim_base.to_bits());
        self.write_u64(m.sim_per_minstr.to_bits());
    }

    fn finish(self) -> u128 {
        self.0
    }
}

/// Key for `ToolSuite::analyze`.
pub(crate) fn analyze_key(files: &[HdlFile], latency: &ToolLatencyModel) -> u128 {
    let mut h = KeyHasher::new("analyze");
    h.write_files(files);
    h.write_latency(latency);
    h.finish()
}

/// Key for `compile_to_design` (and `ToolSuite::compile`).
pub(crate) fn compile_key(
    files: &[HdlFile],
    top: Option<&str>,
    latency: &ToolLatencyModel,
) -> u128 {
    let mut h = KeyHasher::new("compile");
    h.write_files(files);
    h.write_top(top);
    h.write_latency(latency);
    h.finish()
}

/// Key for the simulation phase of `ToolSuite::simulate` (the compile
/// phase goes through [`compile_key`]).
pub(crate) fn sim_key(
    files: &[HdlFile],
    top: Option<&str>,
    latency: &ToolLatencyModel,
    config: &SimConfig,
) -> u128 {
    let mut h = KeyHasher::new("simulate");
    h.write_files(files);
    h.write_top(top);
    h.write_latency(latency);
    h.write_u64(config.max_time);
    h.write_u64(u64::from(config.max_deltas_per_step));
    h.write_u64(config.max_instrs_per_activation);
    h.write_u64(config.max_total_instrs);
    h.finish()
}

fn language_tag(language: Language) -> u64 {
    match language {
        Language::Verilog => 0,
        Language::Vhdl => 1,
    }
}

/// Key for one file's parse in the incremental-compile path.
///
/// The file's *index* in the compile file list is part of the key:
/// spans embed the `FileId` the file was parsed under, and diagnostics
/// rendered from a replayed AST must point at the same position in the
/// source map. Same text at a different index is therefore a different
/// key — correctness over hit rate.
pub(crate) fn parse_key(language: Language, index: usize, name: &str, text: &str) -> u128 {
    let mut h = KeyHasher::new("parse");
    h.write_u64(language_tag(language));
    h.write_u64(index as u64);
    h.write_str(name);
    h.write_str(text);
    h.finish()
}

/// Key for one elaboration in the incremental-compile path: the
/// resolved top plus the ordered `(index, name, text)` set of files
/// that contribute at least one design unit to the top's instantiation
/// closure. Files outside the closure don't influence elaboration, so
/// editing them must (and does) leave this key unchanged.
pub(crate) fn elab_key(language: Language, top: &str, closure: &[(usize, &str, &str)]) -> u128 {
    let mut h = KeyHasher::new("elab");
    h.write_u64(language_tag(language));
    h.write_str(top);
    h.write_u64(closure.len() as u64);
    for &(index, name, text) in closure {
        h.write_u64(index as u64);
        h.write_str(name);
        h.write_str(text);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<HdlFile> {
        vec![
            HdlFile::new(
                "inv.v",
                "module inv(input a, output y); assign y = ~a; endmodule\n",
            ),
            HdlFile::new("tb.v", "module tb; endmodule\n"),
        ]
    }

    #[test]
    fn keys_are_stable_and_input_sensitive() {
        let m = ToolLatencyModel::default();
        let base = compile_key(&files(), Some("tb"), &m);
        assert_eq!(base, compile_key(&files(), Some("tb"), &m), "deterministic");

        let mut renamed = files();
        renamed[0].name = "other.v".into();
        assert_ne!(base, compile_key(&renamed, Some("tb"), &m), "file name");

        let mut edited = files();
        edited[1].text.push('\n');
        assert_ne!(base, compile_key(&edited, Some("tb"), &m), "file text");

        let mut relang = files();
        relang[1].language = Language::Vhdl;
        assert_ne!(base, compile_key(&relang, Some("tb"), &m), "language");

        let mut reordered = files();
        reordered.swap(0, 1);
        assert_ne!(base, compile_key(&reordered, Some("tb"), &m), "file order");

        assert_ne!(base, compile_key(&files(), None, &m), "top override");
        assert_ne!(
            base,
            compile_key(&files(), Some(""), &m),
            "None vs Some(\"\")"
        );

        let slower = ToolLatencyModel {
            compile_base: 1.0,
            ..m
        };
        assert_ne!(base, compile_key(&files(), Some("tb"), &slower), "latency");
    }

    #[test]
    fn op_tags_and_sim_config_separate_shards() {
        let m = ToolLatencyModel::default();
        let c = SimConfig::default();
        let compile = compile_key(&files(), None, &m);
        let analyze = analyze_key(&files(), &m);
        let sim = sim_key(&files(), None, &m, &c);
        assert_ne!(compile, analyze);
        assert_ne!(compile, sim);
        assert_ne!(analyze, sim);

        let tighter = SimConfig {
            max_time: 10,
            ..SimConfig::default()
        };
        assert_ne!(sim, sim_key(&files(), None, &m, &tighter), "sim config");
    }

    #[test]
    fn length_prefixing_prevents_field_aliasing() {
        let m = ToolLatencyModel::default();
        // Same concatenated bytes, different (name, text) split.
        let a = vec![HdlFile::new("ab.v", "cd")];
        let b = vec![HdlFile::new("a.v", "bcd")];
        assert_ne!(compile_key(&a, None, &m), compile_key(&b, None, &m));
    }

    #[test]
    fn miss_then_hit_accounting() {
        let cache = EdaCache::new();
        let key = analyze_key(&files(), &ToolLatencyModel::default());
        let (slot, hit) = cache.analyze_slot(key);
        assert!(!hit, "first lookup claims the key");
        let report = CompileReport {
            success: true,
            log: String::new(),
            messages: Vec::new(),
            modeled_latency: 1.0,
        };
        let _ = slot.set(report);
        let (slot2, hit2) = cache.analyze_slot(key);
        assert!(hit2, "second lookup is a hit");
        assert!(slot2.get().is_some_and(|r| r.success));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.lookups(), 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let cache = EdaCache::new();
        let clone = cache.clone();
        let key = analyze_key(&files(), &ToolLatencyModel::default());
        let _ = cache.analyze_slot(key);
        let (_, hit) = clone.analyze_slot(key);
        assert!(hit, "clone sees entries inserted through the original");
    }

    #[test]
    fn concurrent_lookups_count_one_miss_per_key() {
        // Whatever the interleaving, a key is missed exactly once.
        let cache = EdaCache::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..32u64 {
                        let mut h = KeyHasher::new("test");
                        h.write_u64(i);
                        let (slot, _) = cache.sim_slot(h.finish());
                        let _ = slot.get_or_init(|| SimEntry {
                            report: SimReport {
                                compiled: true,
                                passed: true,
                                log: String::new(),
                                failures: Vec::new(),
                                compile_messages: Vec::new(),
                                end_time: i,
                                finished: true,
                                diverged: None,
                                modeled_latency: 0.0,
                            },
                            sim_latency: 0.0,
                            kernel: None,
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 32, "one miss per distinct key");
        assert_eq!(stats.hits, 8 * 32 - 32);
        assert_eq!(stats.entries, 32);
    }

    #[test]
    fn stats_since_scopes_an_interval() {
        let cache = EdaCache::new();
        let key = analyze_key(&files(), &ToolLatencyModel::default());
        let _ = cache.analyze_slot(key);
        let before = cache.stats();
        let _ = cache.analyze_slot(key);
        let _ = cache.analyze_slot(key);
        let delta = cache.stats().since(&before);
        assert_eq!((delta.hits, delta.misses), (2, 0));
        assert_eq!(delta.entries, 1, "entries stay absolute");
    }

    #[test]
    fn display_is_humane() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            entries: 1,
            parse_hits: 4,
            parse_misses: 2,
            elab_hits: 1,
            elab_misses: 1,
        };
        assert_eq!(
            s.to_string(),
            "3 hits / 1 misses (75.0% hit rate, 1 entries; \
             incremental: parse 4/2, elab 1/1)"
        );
    }

    #[test]
    fn parse_and_elab_counters_are_separate_from_invocation_counters() {
        let cache = EdaCache::new();
        let pk = parse_key(Language::Verilog, 0, "a.v", "module a; endmodule\n");
        let (slot, hit) = cache.parse_slot(pk);
        assert!(!hit);
        let _ = slot.set(ParsedFile::Verilog(
            aivril_verilog::ast::SourceUnit::default(),
            Diagnostics::new(),
        ));
        let (_, hit) = cache.parse_slot(pk);
        assert!(hit);

        let ek = elab_key(
            Language::Verilog,
            "a",
            &[(0, "a.v", "module a; endmodule\n")],
        );
        let (slot, hit) = cache.elab_slot(ek);
        assert!(!hit);
        let _ = slot.set(ElabEntry {
            design: None,
            diags: Diagnostics::new(),
        });
        let (_, hit) = cache.elab_slot(ek);
        assert!(hit);

        let stats = cache.stats();
        // Whole-invocation counters (and the entries gauge the exact
        // count tests pin) must be untouched by phase-level lookups.
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert_eq!((stats.parse_hits, stats.parse_misses), (1, 1));
        assert_eq!((stats.elab_hits, stats.elab_misses), (1, 1));
    }

    #[test]
    fn incremental_keys_are_position_and_closure_sensitive() {
        let base = parse_key(Language::Verilog, 0, "a.v", "text");
        assert_eq!(base, parse_key(Language::Verilog, 0, "a.v", "text"));
        assert_ne!(
            base,
            parse_key(Language::Verilog, 1, "a.v", "text"),
            "index"
        );
        assert_ne!(
            base,
            parse_key(Language::Vhdl, 0, "a.v", "text"),
            "language"
        );
        assert_ne!(base, parse_key(Language::Verilog, 0, "b.v", "text"), "name");
        assert_ne!(
            base,
            parse_key(Language::Verilog, 0, "a.v", "other"),
            "text"
        );

        let closure = [(0usize, "a.v", "ta"), (2usize, "c.v", "tc")];
        let e = elab_key(Language::Verilog, "top", &closure);
        assert_eq!(e, elab_key(Language::Verilog, "top", &closure));
        assert_ne!(e, elab_key(Language::Verilog, "other", &closure), "top");
        let edited = [(0usize, "a.v", "ta"), (2usize, "c.v", "TC")];
        assert_ne!(
            e,
            elab_key(Language::Verilog, "top", &edited),
            "closure text"
        );
        let shrunk = [(0usize, "a.v", "ta")];
        assert_ne!(
            e,
            elab_key(Language::Verilog, "top", &shrunk),
            "closure size"
        );
    }
}
