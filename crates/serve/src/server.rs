//! The TCP front-end: connection handling, the worker pool, and the
//! deterministic response-streaming discipline.
//!
//! Execution pulls jobs from the [`JobQueue`] and runs them through
//! [`Harness::run_job`] with a job-private [`Recorder`]. Response
//! frames are rendered *after* the pipeline run completes, from the
//! recorder's journal in span-close order — never from live callbacks —
//! so a job's `ack`/`progress`/`result` stream is a pure function of
//! its identity, byte-identical however jobs interleave across workers.

use crate::config::ServeConfig;
use crate::journal::JobJournal;
use crate::outbox::Outbox;
use crate::protocol::{self, Request, SubmitRequest};
use crate::queue::{Admission, FrameSink, Job, JobQueue};
use aivril_bench::Harness;
use aivril_llm::ModelProfile;
use aivril_obs::{render_event, Recorder};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Bounded memo of completed jobs' response frames, keyed by identity.
/// A resubmission of a finished job replays these bytes instead of
/// executing a second time — and because the frames are deterministic,
/// a replay is indistinguishable from a re-run on the wire. FIFO
/// eviction keeps the memo from growing with job history.
#[derive(Default)]
struct CompletedMemo {
    order: VecDeque<(String, String)>,
    frames: HashMap<(String, String), Vec<String>>,
}

/// The job service: shared harness, per-tenant admission queue, and
/// the accept loop. Wrapped in an [`Arc`] and shared by the accept
/// thread, connection threads and the worker pool.
pub struct Server {
    harness: Harness,
    profile: ModelProfile,
    queue: JobQueue,
    config: ServeConfig,
    journal: Option<JobJournal>,
    completed: Mutex<CompletedMemo>,
    executions: AtomicU64,
    started: Instant,
    stop: AtomicBool,
    local_addr: OnceLock<SocketAddr>,
}

impl Server {
    /// Builds a server (harness, model profile, empty queue) from
    /// `config`. Does not bind anything yet. When
    /// [`ServeConfig::journal_dir`] is set the admission journal is
    /// opened (replaying any torn tail away); call [`Server::recover`]
    /// to re-admit the jobs a previous process left unfinished.
    #[must_use]
    pub fn new(config: ServeConfig) -> Server {
        let harness = Harness::new(config.harness.clone());
        let profile = config.profile();
        let queue = JobQueue::new(
            config.max_inflight,
            config.max_queue,
            config.harness.pipeline.resilience,
        )
        .with_global_limits(config.max_tenants, config.max_jobs);
        let journal = config.journal_dir.as_ref().and_then(|dir| {
            match JobJournal::open(dir) {
                Ok(j) => Some(j),
                Err(e) => {
                    // A broken journal degrades durability, not service.
                    eprintln!("[serve] journal disabled ({dir}): {e}");
                    None
                }
            }
        });
        Server {
            harness,
            profile,
            queue,
            config,
            journal,
            completed: Mutex::new(CompletedMemo::default()),
            executions: AtomicU64::new(0),
            started: Instant::now(),
            stop: AtomicBool::new(false),
            local_addr: OnceLock::new(),
        }
    }

    /// The admission clock: wall seconds since server start. Admission
    /// is deliberately outside the deterministic replay surface (see
    /// the [`crate::queue`] docs); job execution never reads this.
    fn now_s(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The admission queue (exposed for tests and stats).
    #[must_use]
    pub fn queue(&self) -> &JobQueue {
        &self.queue
    }

    /// The service configuration in force.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Validates and admits one submission, emitting the `ack` or
    /// `reject` frame to `sink` so the transcript carries the verdict.
    ///
    /// Submission is idempotent on `(tenant, job)`: resubmitting a
    /// still-admitted job attaches the new sink to the running job
    /// (one execution), and resubmitting a recently *completed* job
    /// replays its memoized frames without executing again.
    ///
    /// # Errors
    ///
    /// Returns a message (sent back as an `error` frame) when the task
    /// name is not in the suite.
    pub fn submit(&self, spec: SubmitRequest, sink: FrameSink) -> Result<Admission, String> {
        self.submit_inner(spec, sink, true)
    }

    /// [`Server::submit`] with journaling switchable off — recovery
    /// re-admits jobs that are *already* journaled, and writing a
    /// second `admit` for them would double-count the identity.
    fn submit_inner(
        &self,
        spec: SubmitRequest,
        sink: FrameSink,
        journal: bool,
    ) -> Result<Admission, String> {
        let problem_index = self
            .harness
            .problems()
            .iter()
            .position(|p| p.name == spec.task)
            .ok_or_else(|| format!("unknown task {:?}", spec.task))?;
        let seed = crate::job_seed(&spec.tenant, &spec.job);
        let (tenant, job_id) = (spec.tenant.clone(), spec.job.clone());
        // Finished-job replay: serve the memoized frames (preceded by
        // the deterministic ack) without a second execution.
        {
            let memo = self
                .completed
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(frames) = memo.frames.get(&(tenant.clone(), job_id.clone())) {
                sink(&protocol::ack_frame(&tenant, &job_id, seed));
                for frame in frames {
                    sink(frame);
                }
                drop(memo);
                self.queue.note_replay(&tenant);
                return Ok(Admission::Accepted { seed });
            }
        }
        // The verdict frame is enqueued (never socket-written — the
        // sink must not block) under the queue lock, before the job
        // becomes claimable — the ack always precedes progress. The
        // journal's `admit` record lands in the same window, so a crash
        // after the ack is on its way re-admits the job on restart.
        let journal_spec = spec.clone();
        let verdict = self.queue.submit_with(
            Job {
                spec,
                problem_index,
                seed,
                admitted_at: self.now_s(),
                sink: Arc::new(Mutex::new(sink.clone())),
            },
            self.now_s(),
            |verdict| match verdict {
                Admission::Accepted { seed } => {
                    if journal {
                        if let Some(j) = &self.journal {
                            let _ = j.record_admit(&journal_spec);
                        }
                    }
                    sink(&protocol::ack_frame(&tenant, &job_id, *seed));
                }
                Admission::Attached { seed } => {
                    sink(&protocol::ack_frame(&tenant, &job_id, *seed));
                }
                Admission::Rejected {
                    reason,
                    retry_after_s,
                } => sink(&protocol::reject_frame(
                    &tenant,
                    &job_id,
                    reason,
                    *retry_after_s,
                )),
            },
        );
        Ok(verdict)
    }

    /// Re-admits every job the journal recorded as admitted but never
    /// finished — in original admission order, with a detached sink
    /// (their frames land in the completed memo; a reconnecting client
    /// resubmits the job id and replays them). Returns the number of
    /// jobs re-admitted. Jobs whose task no longer exists are marked
    /// done (they can never run); jobs the current limits reject stay
    /// journaled for the next restart.
    pub fn recover(&self) -> usize {
        let Some(journal) = &self.journal else {
            return 0;
        };
        let pending: Vec<SubmitRequest> = journal.pending().to_vec();
        let mut recovered = 0;
        for spec in pending {
            let (tenant, job) = (spec.tenant.clone(), spec.job.clone());
            let sink: FrameSink = Arc::new(|_| {});
            match self.submit_inner(spec, sink, false) {
                Ok(Admission::Accepted { .. } | Admission::Attached { .. }) => recovered += 1,
                Ok(Admission::Rejected { .. }) => {}
                Err(_) => {
                    // The task vanished from the suite: the job can
                    // never execute; purge it from future recoveries.
                    let _ = journal.record_done(&tenant, &job);
                }
            }
        }
        recovered
    }

    /// Number of pipeline executions this process has actually run —
    /// memo replays and sink re-attachments do not count. The
    /// one-execution observability for idempotence tests.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::SeqCst)
    }

    /// Records a finished job's frames in the bounded replay memo.
    fn memoize(&self, tenant: &str, job: &str, frames: Vec<String>) {
        let mut memo = self
            .completed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let key = (tenant.to_string(), job.to_string());
        if memo.frames.insert(key.clone(), frames).is_none() {
            memo.order.push_back(key);
        }
        while memo.order.len() > self.config.max_jobs {
            if let Some(evict) = memo.order.pop_front() {
                memo.frames.remove(&evict);
            }
        }
    }

    /// Executes one claimed job and streams its frames. The journal is
    /// recorded privately and replayed to the sink only after the run
    /// completes, which is what makes the stream schedule-invariant.
    ///
    /// A job claimed past its deadline (see [`ServeConfig::deadline_s`])
    /// is not executed: it gets a terminal `expired` frame and releases
    /// its admission slot immediately instead of pinning a worker.
    pub fn execute(&self, job: &Job) {
        let spec = &job.spec;
        if self.config.deadline_s > 0.0 && self.now_s() - job.admitted_at > self.config.deadline_s {
            job.send(&protocol::expired_frame(
                &spec.tenant,
                &spec.job,
                "deadline_exceeded",
            ));
            if let Some(j) = &self.journal {
                let _ = j.record_done(&spec.tenant, &spec.job);
            }
            self.queue
                .complete(&spec.tenant, &spec.job, 0.0, false, self.now_s());
            return;
        }
        self.executions.fetch_add(1, Ordering::SeqCst);
        let recorder = Recorder::new();
        recorder.set_context(&[
            ("flow", protocol::flow_label(spec.flow)),
            ("job", &spec.job),
            ("lang", protocol::lang_label(spec.verilog)),
            ("model", &self.profile.name),
            ("task", &spec.task),
            ("tenant", &spec.tenant),
        ]);
        let run = self.harness.run_job(
            &self.profile,
            job.problem_index,
            job.seed,
            spec.verilog,
            spec.flow,
            &recorder,
        );
        let mut frames = Vec::new();
        let mut seq = 0usize;
        for journal in recorder.runs() {
            for event in &journal.events {
                let rendered = render_event(&journal, event);
                frames.push(protocol::progress_frame(
                    &spec.tenant,
                    &spec.job,
                    seq,
                    &rendered,
                ));
                seq += 1;
            }
        }
        frames.push(protocol::result_frame(spec, job.seed, &run));
        for frame in &frames {
            job.send(frame);
        }
        self.memoize(&spec.tenant, &spec.job, frames);
        if let Some(j) = &self.journal {
            let _ = j.record_done(&spec.tenant, &spec.job);
        }
        let failed = run.record.outcome.crashed || run.record.resilience.degraded > 0;
        self.queue.complete(
            &spec.tenant,
            &spec.job,
            run.record.outcome.total_latency,
            failed,
            self.now_s(),
        );
    }

    /// One worker thread's life: claim, execute, repeat until the
    /// queue shuts down and drains.
    pub fn run_worker(&self) {
        while let Some(job) = self.queue.next() {
            self.execute(&job);
        }
    }

    /// Spawns `n` worker threads running [`Server::run_worker`].
    #[must_use]
    pub fn spawn_workers(self: &Arc<Self>, n: usize) -> Vec<std::thread::JoinHandle<()>> {
        (0..n)
            .map(|i| {
                let server = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || server.run_worker())
                    .expect("spawn worker thread")
            })
            .collect()
    }

    /// Drains the queue on the current thread until no job is runnable
    /// right now. Deterministic single-threaded execution for tests.
    pub fn drain(&self) {
        while let Some(job) = self.queue.try_next() {
            self.execute(&job);
        }
    }

    /// Initiates shutdown: pending jobs still drain, then workers exit.
    pub fn finish(&self) {
        self.queue.shutdown();
    }

    /// The bound address once [`Server::serve`] is running.
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr.get().copied()
    }

    /// Flags the accept loop to stop and wakes it with a self-connect
    /// (accept has no timeout; a dummy connection is the portable way
    /// to interrupt it).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(addr) = self.local_addr() {
            drop(TcpStream::connect(addr));
        }
    }

    /// Runs the accept loop on `listener` until [`Server::request_stop`].
    /// Each connection gets its own thread.
    pub fn serve(self: &Arc<Self>, listener: &TcpListener) {
        if let Ok(addr) = listener.local_addr() {
            let _ = self.local_addr.set(addr);
        }
        for stream in listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(self);
            let _ = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || server.handle_connection(stream));
        }
    }

    /// Serves one connection: greet, then one request per line until
    /// EOF. All socket writes go through the connection's bounded
    /// [`Outbox`] writer thread — the sink shared with job sinks only
    /// *enqueues*, so neither the submission path (which emits the
    /// ack under the queue lock) nor a worker thread ever blocks on a
    /// slow client; a client that stops reading is dropped when its
    /// outbox overflows or a write times out.
    pub fn handle_connection(self: &Arc<Self>, stream: TcpStream) {
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let outbox = Outbox::spawn(
            write_half,
            self.config.outbox_cap,
            self.config.send_timeout_s,
        );
        /// Closes the outbox when the last sink clone drops (the
        /// connection handler and every in-flight job share one
        /// closure), letting the writer thread drain and exit.
        struct SinkGuard(Arc<Outbox>);
        impl Drop for SinkGuard {
            fn drop(&mut self) {
                self.0.close();
            }
        }
        let sink: FrameSink = {
            let guard = SinkGuard(Arc::clone(&outbox));
            Arc::new(move |frame: &str| {
                // A vanished client must not take a worker down: a
                // dead outbox swallows frames silently.
                guard.0.push(frame);
            })
        };
        sink(&protocol::hello_frame(
            &self.profile.name,
            self.config.max_inflight,
            self.config.max_queue,
        ));
        let reader = BufReader::new(stream);
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            match protocol::parse_request(&line) {
                Err(e) => sink(&protocol::error_frame(&e)),
                Ok(Request::Ping) => sink(&protocol::pong_frame()),
                Ok(Request::Stats) => sink(&protocol::stats_frame(
                    &self.queue.stats(),
                    self.harness.cache_stats().as_ref(),
                )),
                Ok(Request::Shutdown) => {
                    sink(&protocol::bye_frame());
                    // The process exits once the accept loop notices
                    // the stop flag — make sure the `bye` actually hits
                    // the wire before that instead of racing the writer
                    // thread.
                    outbox.drain(std::time::Duration::from_secs(5));
                    self.finish();
                    self.request_stop();
                    break;
                }
                Ok(Request::Submit(spec)) => {
                    if let Err(e) = self.submit(spec, sink.clone()) {
                        sink(&protocol::error_frame(&e));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_bench::Flow;
    use std::sync::{Mutex, PoisonError};

    fn collect_sink() -> (FrameSink, Arc<Mutex<Vec<String>>>) {
        let frames = Arc::new(Mutex::new(Vec::new()));
        let sink_frames = Arc::clone(&frames);
        let sink: FrameSink = Arc::new(move |f: &str| {
            sink_frames
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(f.to_string());
        });
        (sink, frames)
    }

    fn small_server() -> Server {
        let (mut config, _) = ServeConfig::from_vars_checked(|_| None);
        config.harness.task_limit = 4;
        Server::new(config)
    }

    #[test]
    fn unknown_task_is_an_error_not_a_job() {
        let server = small_server();
        let (sink, frames) = collect_sink();
        let err = server
            .submit(
                SubmitRequest {
                    tenant: "acme".into(),
                    job: "j1".into(),
                    task: "prob999_warp_drive".into(),
                    verilog: true,
                    flow: Flow::Aivril2,
                },
                sink,
            )
            .unwrap_err();
        assert!(err.contains("unknown task"), "{err}");
        assert!(frames.lock().unwrap().is_empty(), "no frame for an error");
        assert_eq!(server.queue().stats().queued, 0);
    }

    #[test]
    fn submitted_job_streams_ack_progress_result() {
        let server = small_server();
        let (sink, frames) = collect_sink();
        let verdict = server
            .submit(
                SubmitRequest {
                    tenant: "acme".into(),
                    job: "j1".into(),
                    task: "prob000_and2".into(),
                    verilog: true,
                    flow: Flow::Aivril2,
                },
                sink,
            )
            .unwrap();
        assert!(matches!(verdict, Admission::Accepted { .. }));
        server.drain();
        let frames = frames.lock().unwrap();
        assert!(frames[0].contains("\"type\":\"ack\""), "{}", frames[0]);
        assert!(
            frames.len() > 2,
            "expected progress frames between ack and result: {frames:?}"
        );
        for frame in &frames[1..frames.len() - 1] {
            assert!(frame.contains("\"type\":\"progress\""), "{frame}");
        }
        let last = frames.last().unwrap();
        assert!(last.contains("\"type\":\"result\""), "{last}");
        assert!(last.contains("\"task\":\"prob000_and2\""), "{last}");
        assert_eq!(server.queue().stats().completed, 1);
    }

    #[test]
    fn replayed_job_is_byte_identical() {
        let server = small_server();
        let run_once = || {
            let (sink, frames) = collect_sink();
            server
                .submit(
                    SubmitRequest {
                        tenant: "acme".into(),
                        job: "replay-me".into(),
                        task: "prob002_xor2".into(),
                        verilog: true,
                        flow: Flow::Aivril2,
                    },
                    sink,
                )
                .unwrap();
            server.drain();
            let g = frames.lock().unwrap();
            g.clone()
        };
        let first = run_once();
        let second = run_once();
        assert_eq!(first, second, "replay must be byte-identical");
        // The second transcript came from the completed-job memo, not a
        // second pipeline run.
        assert_eq!(server.executions(), 1, "one execution serves both");
        assert_eq!(server.queue().stats().completed, 2);
    }

    #[test]
    fn expired_jobs_are_cancelled_not_executed() {
        let (mut config, _) = ServeConfig::from_vars_checked(|_| None);
        config.harness.task_limit = 4;
        config.deadline_s = 1e-9;
        let server = Server::new(config);
        let (sink, frames) = collect_sink();
        server
            .submit(
                SubmitRequest {
                    tenant: "acme".into(),
                    job: "stale".into(),
                    task: "prob000_and2".into(),
                    verilog: true,
                    flow: Flow::Aivril2,
                },
                sink,
            )
            .unwrap();
        // Any real delay exceeds a nanosecond deadline by claim time.
        std::thread::sleep(std::time::Duration::from_millis(2));
        server.drain();
        let frames = frames.lock().unwrap();
        assert_eq!(frames.len(), 2, "{frames:?}");
        assert!(frames[0].contains("\"type\":\"ack\""), "{}", frames[0]);
        assert!(frames[1].contains("\"type\":\"expired\""), "{}", frames[1]);
        assert!(frames[1].contains("deadline_exceeded"), "{}", frames[1]);
        assert_eq!(server.executions(), 0, "the pipeline never ran");
        let stats = server.queue().stats();
        assert_eq!((stats.completed, stats.inflight, stats.queued), (1, 0, 0));
    }

    #[test]
    fn journaled_jobs_survive_a_crash_and_replay_identically() {
        let dir = std::env::temp_dir().join(format!("aivril-serve-journal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = || SubmitRequest {
            tenant: "acme".into(),
            job: "interrupted".into(),
            task: "prob001_or2".into(),
            verilog: true,
            flow: Flow::Aivril2,
        };
        let journal_config = || {
            let (mut config, _) = ServeConfig::from_vars_checked(|_| None);
            config.harness.task_limit = 4;
            config.journal_dir = Some(dir.display().to_string());
            config
        };
        // The uninterrupted baseline (no journal involved).
        let baseline = {
            let server = small_server();
            let (sink, frames) = collect_sink();
            server.submit(spec(), sink).unwrap();
            server.drain();
            let g = frames.lock().unwrap();
            g.clone()
        };
        // "Crash": the job is admitted (journaled) but the server goes
        // away before any worker claims it.
        {
            let server = Server::new(journal_config());
            let (sink, _frames) = collect_sink();
            server.submit(spec(), sink).unwrap();
            assert_eq!(server.executions(), 0, "nothing drained yet");
        }
        // Restart over the same journal dir: recovery re-admits and the
        // job completes; the reconnecting client resubmits the id and
        // gets the full transcript byte-identically.
        let server = Server::new(journal_config());
        assert_eq!(server.recover(), 1, "one unfinished job re-admitted");
        server.drain();
        assert_eq!(server.executions(), 1);
        let (sink, frames) = collect_sink();
        server.submit(spec(), sink).unwrap();
        let replayed = frames.lock().unwrap().clone();
        assert_eq!(replayed, baseline, "recovered run is byte-identical");
        // The journal is balanced: a third process recovers nothing.
        drop(server);
        let server = Server::new(journal_config());
        assert_eq!(server.recover(), 0, "done record closed the job");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
