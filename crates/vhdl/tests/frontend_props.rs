//! Property-based tests for the VHDL frontend.

use aivril_hdl::source::SourceMap;
use aivril_verilogeval::Problem;
use aivril_vhdl::{analyze, compile};
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static [Problem] {
    static SUITE: OnceLock<Vec<Problem>> = OnceLock::new();
    SUITE.get_or_init(aivril_verilogeval::suite)
}

proptest! {
    /// The lexer and parser never panic on printable noise.
    #[test]
    fn frontend_total_on_noise(src in "[ -~\\n\\t]{0,400}") {
        let mut sources = SourceMap::new();
        sources.add_file("noise.vhd", src);
        let _ = analyze(&sources);
    }

    /// Case-insensitivity: uppercasing a whole golden design must not
    /// change whether it elaborates (VHDL is case-insensitive).
    #[test]
    fn case_insensitive_elaboration(idx in 0usize..32) {
        let problems = suite();
        let p = &problems[idx * 5 % problems.len()];
        let upper = p.vhdl.dut.to_ascii_uppercase();
        let mut sources = SourceMap::new();
        sources.add_file("dut.vhd", upper);
        let design = compile(&sources, &p.module_name);
        prop_assert!(design.is_ok(), "{}: {:?}", p.name, design.err().map(|d| d.render(&SourceMap::new())));
    }

    /// Generic widths elaborate and control port width.
    #[test]
    fn generic_widths_elaborate(w in 1u32..40) {
        let src = format!(
            "entity wide is\n  generic (w : integer := 4);\n\
             \x20 port (a : in std_logic_vector(w-1 downto 0); y : out std_logic_vector(w-1 downto 0));\n\
             end entity;\n\
             architecture rtl of wide is begin y <= not a; end architecture;\n\
             entity top is end entity;\n\
             architecture s of top is\n  signal a, y : std_logic_vector({hi} downto 0);\nbegin\n\
             \x20 u: entity work.wide generic map (w => {w}) port map (a => a, y => y);\n\
             end architecture;\n",
            hi = w - 1
        );
        let mut sources = SourceMap::new();
        sources.add_file("t.vhd", src);
        let design = compile(&sources, "top").expect("elaborates");
        let net = design.find_net("u.a").expect("child port");
        prop_assert_eq!(design.net(net).width, w);
    }

    /// Deleting an arbitrary line from a golden VHDL design is always
    /// diagnosed or still compiles.
    #[test]
    fn line_deletion_is_diagnosed(idx in 0usize..16, line in 0usize..40) {
        let problems = suite();
        let p = &problems[idx * 7 % problems.len()];
        let lines: Vec<&str> = p.vhdl.dut.lines().collect();
        let drop = line % lines.len();
        let mutated: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let mut sources = SourceMap::new();
        sources.add_file("m.vhd", mutated);
        match compile(&sources, &p.module_name) {
            Ok(design) => prop_assert!(!design.nets.is_empty()),
            Err(diags) => prop_assert!(diags.has_errors()),
        }
    }
}

/// Every golden VHDL DUT+TB pair analyzes without errors.
#[test]
fn all_golden_duts_analyze_cleanly() {
    for p in suite() {
        let mut sources = SourceMap::new();
        sources.add_file("dut.vhd", p.vhdl.dut.clone());
        sources.add_file("tb.vhd", p.vhdl.tb.clone());
        let (_, diags) = analyze(&sources);
        assert!(
            !diags.has_errors(),
            "{}: {}",
            p.name,
            diags.render(&sources)
        );
    }
}
