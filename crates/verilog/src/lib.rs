//! Verilog-2001 subset frontend: lexer, parser, AST and elaborator.
//!
//! This crate plays the role of Vivado's `xvlog` in the AIVRIL2
//! reproduction: it turns Verilog source into either the shared
//! simulatable IR ([`aivril_hdl::ir::Design`]) or a Vivado-style error
//! log with exact file/line locations — the raw material the paper's
//! *Review Agent* distills into corrective prompts.
//!
//! Supported subset (chosen to cover the VerilogEval-Human-style
//! benchmark suite and its testbenches): ANSI module headers with
//! parameters, `wire`/`reg`/`integer` declarations, continuous assigns,
//! `always`/`initial` with full behavioural statements (`if`, `case`/
//! `casez`/`casex`, `for`/`while`/`repeat`/`forever`, delays, event
//! controls, `wait`), module instantiation with named/positional
//! connections and parameter overrides, the full operator set including
//! case equality and reductions, and the usual system tasks.
//!
//! # Example
//!
//! ```
//! use aivril_hdl::source::SourceMap;
//! use aivril_verilog::compile;
//!
//! let mut sources = SourceMap::new();
//! sources.add_file(
//!     "inv.v",
//!     "module inv(input a, output y);\n  assign y = ~a;\nendmodule\n",
//! );
//! let design = compile(&sources, "inv").map_err(|d| d.render(&sources))?;
//! assert_eq!(design.nets.len(), 2);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod elab;
mod lexer;
mod literal;
mod parser;
pub mod token;

pub use elab::elaborate;
pub use lexer::lex;
pub use literal::try_parse_literal;
pub use parser::parse;

use aivril_hdl::diag::Diagnostics;
use aivril_hdl::ir::Design;
use aivril_hdl::source::{FileId, SourceMap};

/// Lexes and parses a single source file.
///
/// The per-file granularity exists so callers (the EDA layer's
/// incremental compile path) can memoize parse results keyed by file
/// content; [`analyze`] is a loop over this function.
#[must_use]
pub fn analyze_file(file: FileId, text: &str) -> (ast::SourceUnit, Diagnostics) {
    let mut diags = Diagnostics::new();
    let tokens = lexer::lex(file, text, &mut diags);
    let unit = parser::parse(tokens, &mut diags);
    (unit, diags)
}

/// Lexes and parses every file in `sources` (the `xvlog` analysis step).
///
/// Returns the parsed unit together with all syntax diagnostics; callers
/// decide whether errors are fatal.
#[must_use]
pub fn analyze(sources: &SourceMap) -> (ast::SourceUnit, Diagnostics) {
    let mut diags = Diagnostics::new();
    let mut unit = ast::SourceUnit::default();
    for (file, source) in sources.iter() {
        let (mut part, part_diags) = analyze_file(file, source.text());
        unit.modules.append(&mut part.modules);
        diags.extend(part_diags);
    }
    (unit, diags)
}

/// Compiles `sources` and elaborates `top` into a simulatable design
/// (the `xvlog` + `xelab` pipeline).
///
/// # Errors
///
/// Returns the accumulated diagnostics when any syntax or semantic error
/// occurs; render them with [`Diagnostics::render`] for a Vivado-style
/// log.
pub fn compile(sources: &SourceMap, top: &str) -> Result<Design, Diagnostics> {
    let (unit, mut diags) = analyze(sources);
    if diags.has_errors() {
        return Err(diags);
    }
    match elab::elaborate(&unit, top, &mut diags) {
        Some(design) if !diags.has_errors() => Ok(design),
        _ => Err(diags),
    }
}

/// Picks a plausible top module: one that is never instantiated by
/// another module (ties broken by declaration order, preferring later
/// definitions, which is where testbenches conventionally sit).
#[must_use]
pub fn find_top(unit: &ast::SourceUnit) -> Option<String> {
    let mut instantiated = std::collections::HashSet::new();
    for m in &unit.modules {
        for item in &m.items {
            if let ast::Item::Instance { module, .. } = item {
                instantiated.insert(module.clone());
            }
        }
    }
    unit.modules
        .iter()
        .rev()
        .find(|m| !instantiated.contains(&m.name))
        .map(|m| m.name.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    fn sim(src: &str, top: &str) -> (aivril_sim::SimResult, Design) {
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = match compile(&sources, top) {
            Ok(d) => d,
            Err(diags) => panic!("compile failed:\n{}", diags.render(&sources)),
        };
        let result = Simulator::new(&design, SimConfig::default()).run();
        (result, design)
    }

    fn compile_err(src: &str) -> Diagnostics {
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        match compile(&sources, "top") {
            Ok(_) => panic!("expected failure"),
            Err(d) => d,
        }
    }

    #[test]
    fn end_to_end_combinational() {
        let (r, _) = sim(
            "module andgate(input a, input b, output y);\n\
             assign y = a & b;\nendmodule\n\
             module tb;\n reg a, b; wire y;\n andgate dut(.a(a), .b(b), .y(y));\n\
             initial begin\n  a = 1; b = 1; #1;\n\
             if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n\
             a = 0; #1;\n\
             if (y !== 1'b0) $error(\"Test Case 2 Failed: y should be 0\");\n\
             $display(\"All tests passed successfully!\");\n  $finish;\nend\nendmodule\n",
            "tb",
        );
        assert!(r.finished);
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed successfully!"));
    }

    #[test]
    fn end_to_end_sequential_counter() {
        let (r, _) = sim(
            "module counter #(parameter W = 4) (\n  input clk, input rst, output reg [W-1:0] q);\n\
             always @(posedge clk or posedge rst) begin\n\
               if (rst) q <= 0; else q <= q + 1;\n end\nendmodule\n\
             module tb;\n reg clk = 0, rst = 1; wire [3:0] q;\n\
             counter dut(.clk(clk), .rst(rst), .q(q));\n\
             always #5 clk = ~clk;\n\
             initial begin\n  #12 rst = 0;\n  #100;\n\
             if (q !== 4'd10) $error(\"Test Case 1 Failed: q=%0d expected 10\", q);\n\
             else $display(\"All tests passed successfully!\");\n  $finish;\nend\nendmodule\n",
            "tb",
        );
        assert!(r.finished);
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn parameter_overrides_apply() {
        let (r, design) = sim(
            "module ffs #(parameter W = 2) (input clk, output reg [W-1:0] q);\n\
             always @(posedge clk) q <= {W{1'b1}};\nendmodule\n\
             module tb;\n reg clk = 0; wire [7:0] q;\n\
             ffs #(.W(8)) dut(.clk(clk), .q(q));\n\
             initial begin #1 clk = 1; #1;\n\
             if (q !== 8'hFF) $error(\"bad q=%h\", q);\n $finish; end\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(design.find_net("dut.q").is_some());
    }

    #[test]
    fn case_statement_runs() {
        let (r, _) = sim(
            "module mux4(input [1:0] s, input [3:0] d, output reg y);\n\
             always @* begin\n  case (s)\n    2'd0: y = d[0];\n    2'd1: y = d[1];\n\
             2'd2: y = d[2];\n    default: y = d[3];\n  endcase\nend\nendmodule\n\
             module tb;\n reg [1:0] s; reg [3:0] d; wire y; integer i;\n\
             mux4 dut(.s(s), .d(d), .y(y));\n\
             initial begin\n  d = 4'b1010;\n\
             for (i = 0; i < 4; i = i + 1) begin\n    s = i[1:0]; #1;\n\
             if (y !== d[s]) $error(\"Test Case %0d Failed\", i);\n  end\n\
             $display(\"done\"); $finish;\nend\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn casez_wildcards_match() {
        let (r, _) = sim(
            "module pri(input [3:0] r, output reg [1:0] g);\n\
             always @* begin\n  casez (r)\n    4'b1???: g = 2'd3;\n    4'b01??: g = 2'd2;\n\
             4'b001?: g = 2'd1;\n    default: g = 2'd0;\n  endcase\nend\nendmodule\n\
             module tb;\n reg [3:0] r; wire [1:0] g;\n pri dut(.r(r), .g(g));\n\
             initial begin\n  r = 4'b1000; #1;\n  if (g !== 2'd3) $error(\"tc1\");\n\
             r = 4'b0110; #1;\n  if (g !== 2'd2) $error(\"tc2\");\n\
             r = 4'b0011; #1;\n  if (g !== 2'd1) $error(\"tc3\");\n\
             r = 4'b0000; #1;\n  if (g !== 2'd0) $error(\"tc4\");\n  $finish;\nend\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn undeclared_identifier_is_elab_error() {
        let diags =
            compile_err("module top(input a, output y);\n  assign y = a & missing;\nendmodule\n");
        let text = format!("{:?}", diags.all());
        assert!(text.contains("missing"), "{text}");
    }

    #[test]
    fn procedural_assign_to_wire_is_error() {
        let diags = compile_err(
            "module top(input clk, output y);\n\
             always @(posedge clk) y = 1;\nendmodule\n",
        );
        assert!(diags.has_errors());
        let text = format!("{:?}", diags.all());
        assert!(text.contains("reg"), "{text}");
    }

    #[test]
    fn continuous_assign_to_reg_is_error() {
        let diags = compile_err("module top; reg r; assign r = 1; endmodule\n");
        assert!(diags.has_errors());
    }

    #[test]
    fn unknown_module_instance_is_error() {
        let diags = compile_err("module top; ghost u(.a(1'b0)); endmodule\n");
        let text = format!("{:?}", diags.all());
        assert!(text.contains("ghost"), "{text}");
    }

    #[test]
    fn bad_port_name_is_error() {
        let diags = compile_err(
            "module sub(input a); endmodule\nmodule top; reg x; sub u(.b(x)); endmodule\n",
        );
        let text = format!("{:?}", diags.all());
        assert!(text.contains("no port named 'b'"), "{text}");
    }

    #[test]
    fn syntax_error_log_has_line_numbers() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "shift.v",
            "module s(input clk, output reg q)\n  always @(posedge clk) q <= 1;\nendmodule\n",
        );
        let err = compile(&sources, "s").expect_err("missing ; must fail");
        let log = err.render(&sources);
        assert!(log.contains("[shift.v:"), "log: {log}");
        assert!(log.contains("ERROR: [VRFC"), "log: {log}");
    }

    #[test]
    fn find_top_prefers_uninstantiated() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module leaf; endmodule\nmodule mid; leaf u(); endmodule\nmodule tb; mid m(); endmodule\n",
        );
        let (unit, _) = analyze(&sources);
        assert_eq!(find_top(&unit).as_deref(), Some("tb"));
    }

    #[test]
    fn repeat_and_while_loops() {
        let (r, _) = sim(
            "module tb;\n integer n; reg [7:0] acc;\n\
             initial begin\n  acc = 0; n = 0;\n  repeat (5) acc = acc + 2;\n\
             while (n < 3) begin acc = acc + 1; n = n + 1; end\n\
             if (acc !== 8'd13) $error(\"acc=%0d\", acc);\n  $finish;\nend\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn shift_register_example_from_paper() {
        // The Fig. 2 worked example: a 4-cycle shift-register enable.
        let (r, _) = sim(
            "module shift_reg(input clk, input rst, output reg shift_ena);\n\
             reg [2:0] cnt;\n\
             always @(posedge clk) begin\n\
               if (rst) begin cnt <= 0; shift_ena <= 1; end\n\
               else if (cnt < 3) begin cnt <= cnt + 1; shift_ena <= 1; end\n\
               else shift_ena <= 0;\n\
             end\nendmodule\n\
             module tb;\n reg clk = 0, rst = 1; wire shift_ena;\n\
             shift_reg dut(.clk(clk), .rst(rst), .shift_ena(shift_ena));\n\
             always #5 clk = ~clk;\n\
             initial begin\n  #12 rst = 0;\n  #40;\n\
             if (shift_ena !== 1'b0) $error(\"Test Case 2 Failed: shift_ena should be 0 after 4 clock cycles\");\n\
             else $display(\"All tests passed successfully!\");\n  $finish;\nend\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn concat_assignment_and_adder() {
        let (r, _) = sim(
            "module add8(input [7:0] a, input [7:0] b, output [7:0] sum, output cout);\n\
             assign {cout, sum} = a + b;\nendmodule\n\
             module tb;\n reg [7:0] a, b; wire [7:0] sum; wire cout;\n\
             add8 dut(.a(a), .b(b), .sum(sum), .cout(cout));\n\
             initial begin\n  a = 8'd200; b = 8'd100; #1;\n\
             if ({cout, sum} !== 9'd300) $error(\"sum wrong: %0d\", {cout, sum});\n\
             $finish;\nend\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn width_mismatch_is_warning_not_error() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module top(input [3:0] a, output [7:0] y);\n  assign y = a;\nendmodule\n",
        );
        let design = compile(&sources, "top");
        assert!(design.is_ok(), "width mismatch must stay a warning");
    }
}

#[cfg(test)]
mod monitor_integration {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    #[test]
    fn dollar_monitor_traces_signal_changes() {
        let src = "module tb;\n  reg [3:0] n;\n  initial $monitor(\"n=%0d at %t\", n, $time);\n\
                   initial begin\n    n = 0;\n    #10 n = 5;\n    #10 n = 5;\n    #10 n = 9;\n\
                   #5 $finish;\n  end\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = compile(&sources, "tb").expect("compiles");
        let r = Simulator::new(&design, SimConfig::default()).run();
        let texts: Vec<&str> = r.lines.iter().map(|l| l.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["n=0 at 0", "n=5 at 10", "n=9 at 30"],
            "{texts:?}"
        );
    }
}

#[cfg(test)]
mod nonansi_tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    #[test]
    fn nonansi_module_simulates() {
        let src = "module count4(clk, rst, q);\n  input clk;\n  input rst;\n  output [3:0] q;\n  reg [3:0] q;\n\
                   always @(posedge clk) begin\n    if (rst) q <= 0;\n    else q <= q + 1;\n  end\nendmodule\n\
                   module tb;\n  reg clk = 0, rst = 1;\n  wire [3:0] q;\n  count4 dut(clk, rst, q);\n\
                   always #5 clk = ~clk;\n  initial begin\n    #12 rst = 0;\n    #60;\n\
                   if (q !== 4'd6) $error(\"Test Case 1 Failed: q=%0d\", q);\n\
                   else $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = match compile(&sources, "tb") {
            Ok(d) => d,
            Err(e) => panic!("{}", e.render(&sources)),
        };
        let r = Simulator::new(&design, SimConfig::default()).run();
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn output_reg_shorthand_in_body() {
        let src = "module ff(clk, d, q);\n  input clk, d;\n  output reg q;\n\
                   always @(posedge clk) q <= d;\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        assert!(compile(&sources, "ff").is_ok());
    }

    #[test]
    fn undeclared_nonansi_port_is_error() {
        let src = "module m(a, b);\n  input a;\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let err = compile(&sources, "m").expect_err("b lacks a direction");
        let text = err.render(&sources);
        assert!(text.contains("'b'"), "{text}");
    }

    #[test]
    fn stray_body_port_decl_is_error() {
        let src = "module m(a);\n  input a;\n  output z;\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let err = compile(&sources, "m").expect_err("z not in port list");
        assert!(err.render(&sources).contains("'z'"));
    }
}

#[cfg(test)]
mod function_tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    fn run(src: &str, top: &str) -> aivril_sim::SimResult {
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = match compile(&sources, top) {
            Ok(d) => d,
            Err(e) => panic!("{}", e.render(&sources)),
        };
        Simulator::new(&design, SimConfig::default()).run()
    }

    #[test]
    fn function_in_procedural_code() {
        let r = run(
            "module tb;\n\
             function [7:0] clamp;\n    input [7:0] v;\n    input [7:0] hi;\n\
             begin\n      if (v > hi) clamp = hi;\n      else clamp = v;\n    end\n  endfunction\n\
             reg [7:0] y;\n\
             initial begin\n    y = clamp(8'd200, 8'd100);\n\
             if (y !== 8'd100) $error(\"Test Case 1 Failed: y=%0d\", y);\n\
             y = clamp(8'd42, 8'd100);\n\
             if (y !== 8'd42) $error(\"Test Case 2 Failed: y=%0d\", y);\n\
             $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn function_in_continuous_assign() {
        let r = run(
            "module gray(input [3:0] b, output [3:0] g);\n\
             function [3:0] bin2gray;\n    input [3:0] v;\n\
             bin2gray = v ^ (v >> 1);\n  endfunction\n\
             assign g = bin2gray(b);\nendmodule\n\
             module tb;\n  reg [3:0] b;\n  wire [3:0] g;\n  integer i;\n\
             gray dut(.b(b), .g(g));\n\
             initial begin\n    for (i = 0; i < 16; i = i + 1) begin\n      b = i[3:0];\n      #1;\n\
             if (g !== (b ^ (b >> 1))) $error(\"Test Case %0d Failed\", i);\n    end\n\
             $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn nested_function_calls() {
        let r = run(
            "module tb;\n\
             function [7:0] double;\n    input [7:0] v;\n    double = v * 2;\n  endfunction\n\
             function [7:0] quad;\n    input [7:0] v;\n    quad = double(double(v));\n  endfunction\n\
             reg [7:0] y;\n\
             initial begin\n    y = quad(8'd5);\n\
             if (y !== 8'd20) $error(\"Test Case 1 Failed: y=%0d\", y);\n\
             $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n",
            "tb",
        );
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn recursive_function_is_rejected() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module tb;\n  function [7:0] f;\n    input [7:0] v;\n    f = f(v) + 1;\n  endfunction\n\
             reg [7:0] y;\n  initial y = f(8'd1);\nendmodule\n",
        );
        let err = compile(&sources, "tb").expect_err("recursion must fail");
        assert!(err.render(&sources).contains("nesting exceeds"));
    }

    #[test]
    fn unknown_function_is_diagnosed() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module tb;\n  reg y;\n  initial y = ghost(1'b0);\nendmodule\n",
        );
        let err = compile(&sources, "tb").expect_err("unknown function");
        assert!(err.render(&sources).contains("ghost"));
    }

    #[test]
    fn wrong_arity_is_diagnosed() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module tb;\n  function f;\n    input a, b;\n    f = a & b;\n  endfunction\n\
             reg y;\n  initial y = f(1'b1);\nendmodule\n",
        );
        let err = compile(&sources, "tb").expect_err("arity");
        assert!(err.render(&sources).contains("argument"));
    }

    #[test]
    fn timing_controls_in_function_rejected() {
        let mut sources = SourceMap::new();
        sources.add_file(
            "t.v",
            "module tb;\n  function f;\n    input a;\n    begin\n      #5;\n      f = a;\n    end\n  endfunction\n\
             reg y;\n  initial y = f(1'b1);\nendmodule\n",
        );
        let err = compile(&sources, "tb").expect_err("timing in function");
        assert!(err.render(&sources).contains("timing"));
    }
}

#[cfg(test)]
mod memory_tests {
    use super::*;
    use aivril_sim::{SimConfig, Simulator};

    #[test]
    fn ram_16x8_write_then_read() {
        let src = "module ram(input clk, input we, input [3:0] addr, input [7:0] din, output [7:0] dout);\n\
                   reg [7:0] mem [0:15];\n\
                   always @(posedge clk) begin\n    if (we) mem[addr] <= din;\n  end\n\
                   assign dout = mem[addr];\nendmodule\n\
                   module tb;\n  reg clk = 0, we;\n  reg [3:0] addr;\n  reg [7:0] din;\n  wire [7:0] dout;\n\
                   ram dut(.clk(clk), .we(we), .addr(addr), .din(din), .dout(dout));\n  integer i;\n\
                   initial begin\n\
                   for (i = 0; i < 16; i = i + 1) begin\n\
                     addr = i[3:0]; din = i[7:0] + 8'd100; we = 1;\n\
                     #4; clk = 1; #5; clk = 0; #1;\n\
                   end\n\
                   we = 0;\n\
                   for (i = 0; i < 16; i = i + 1) begin\n\
                     addr = i[3:0]; #1;\n\
                     if (dout !== i[7:0] + 8'd100) $error(\"Test Case %0d Failed: dout=%0d\", i, dout);\n\
                   end\n\
                   $display(\"All tests passed successfully!\");\n  $finish;\nend\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = match compile(&sources, "tb") {
            Ok(d) => d,
            Err(e) => panic!("{}", e.render(&sources)),
        };
        let r = Simulator::new(&design, SimConfig::default()).run();
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
        assert!(r.log_text().contains("All tests passed"));
    }

    #[test]
    fn unwritten_words_read_x() {
        let src = "module tb;\n  reg [7:0] mem [0:3];\n  reg [7:0] v;\n\
                   initial begin\n    mem[1] = 8'd7;\n    v = mem[1];\n\
                   if (v !== 8'd7) $error(\"Test Case 1 Failed\");\n\
                   v = mem[2];\n\
                   if (v === v && v !== 8'bx) $error(\"Test Case 2 Failed: expected x, got %b\", v);\n\
                   $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";
        let mut sources = SourceMap::new();
        sources.add_file("t.v", src);
        let design = compile(&sources, "tb").expect("compiles");
        let r = Simulator::new(&design, SimConfig::default()).run();
        // The x-check above: v === v is always true; v !== 8'bx is false
        // only when v is exactly all-x. So no errors expected.
        assert_eq!(r.error_count, 0, "log: {}", r.log_text());
    }

    #[test]
    fn oversized_memory_is_rejected() {
        let mut sources = SourceMap::new();
        sources.add_file("t.v", "module tb;\n  reg [7:0] mem [0:99999];\nendmodule\n");
        let err = compile(&sources, "tb").expect_err("too big");
        assert!(err.render(&sources).contains("1024"));
    }

    #[test]
    fn wire_memory_is_rejected() {
        let mut sources = SourceMap::new();
        sources.add_file("t.v", "module tb;\n  wire [7:0] mem [0:3];\nendmodule\n");
        let err = compile(&sources, "tb").expect_err("wire memory");
        assert!(err.render(&sources).contains("reg"));
    }
}
