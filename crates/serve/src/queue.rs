//! Per-tenant admission control and the bounded job queue.
//!
//! Invariant: a tenant's admitted-but-unfinished jobs (queued +
//! in-flight) never exceed `max_inflight + max_queue`. Submissions past
//! that bound are rejected *at admission* with a structured reason and
//! a `retry_after_s` hint — the queue cannot grow without bound, so
//! overload degrades into fast rejections instead of latency collapse.
//!
//! The second admission gate is a per-tenant circuit breaker
//! ([`BreakerBank`]): job completions feed each tenant's breaker
//! (failure = crashed or degraded), and a tenant whose runs keep
//! failing is refused at the door (`breaker_open`) until its cooldown
//! lapses — without ever touching any other tenant's breaker.
//!
//! Clock discipline: admission runs on *wall* seconds since server
//! start, supplied by the caller. This is deliberately outside the
//! deterministic replay surface — see `DESIGN.md` §13: a modeled
//! per-tenant clock would freeze the moment a breaker opens (no
//! completions means no clock advance means no recovery). Job
//! *execution* stays entirely on the modeled clock.

use crate::protocol::SubmitRequest;
use aivril_core::{BreakerBank, ResiliencePolicy};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Where a job's response frames go (one frame per call, no trailing
/// newline). Shared with the connection that submitted the job.
pub type FrameSink = Arc<dyn Fn(&str) + Send + Sync>;

/// One admitted job, waiting for or undergoing execution.
pub struct Job {
    /// The validated submission.
    pub spec: SubmitRequest,
    /// Index of [`Job::spec`]'s task in the harness problem set.
    pub problem_index: usize,
    /// Deterministic run seed, [`crate::job_seed`] of the identity.
    pub seed: u64,
    /// Destination for this job's `progress`/`result` frames.
    pub sink: FrameSink,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("spec", &self.spec)
            .field("problem_index", &self.problem_index)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The admission verdict for one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The job was queued; `seed` echoes its deterministic run seed.
    Accepted {
        /// The job's [`crate::job_seed`].
        seed: u64,
    },
    /// The job was refused and will not run.
    Rejected {
        /// `"queue_full"` or `"breaker_open"`.
        reason: &'static str,
        /// Suggested wall-seconds to wait before resubmitting.
        retry_after_s: f64,
    },
}

/// Aggregate service counters, for the `stats` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Jobs completed since startup.
    pub completed: u64,
    /// Submissions rejected at admission since startup.
    pub rejected: u64,
    /// Jobs currently waiting.
    pub queued: usize,
    /// Jobs currently executing.
    pub inflight: usize,
    /// Distinct tenants seen.
    pub tenants: usize,
}

#[derive(Debug, Clone, Default)]
struct TenantState {
    queued: usize,
    inflight: usize,
    completed: u64,
    rejected: u64,
    /// Total modeled seconds of this tenant's completed jobs — the
    /// basis for the `queue_full` retry hint.
    modeled_s: f64,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    tenants: HashMap<String, TenantState>,
    shutdown: bool,
    completed: u64,
    rejected: u64,
    inflight: usize,
}

/// The bounded multi-tenant job queue. All methods are safe to call
/// from any thread.
pub struct JobQueue {
    max_inflight: usize,
    max_queue: usize,
    breakers: BreakerBank,
    state: Mutex<QueueState>,
    cvar: Condvar,
}

/// Floor for `retry_after_s` hints, so a hint is never zero.
const MIN_RETRY_S: f64 = 0.5;

impl JobQueue {
    /// Creates a queue with the given per-tenant bounds and the
    /// breaker policy each tenant's admission breaker will follow.
    #[must_use]
    pub fn new(max_inflight: usize, max_queue: usize, policy: ResiliencePolicy) -> JobQueue {
        JobQueue {
            max_inflight: max_inflight.max(1),
            max_queue,
            breakers: BreakerBank::new(policy),
            state: Mutex::new(QueueState::default()),
            cvar: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits or rejects `job`. `now` is wall seconds since server
    /// start (the admission clock). On acceptance the job is queued and
    /// a worker is woken; on rejection the job is dropped.
    pub fn submit(&self, job: Job, now: f64) -> Admission {
        self.submit_with(job, now, |_| {})
    }

    /// [`JobQueue::submit`] with a verdict hook invoked *before* an
    /// accepted job becomes claimable (still under the queue lock).
    /// The server emits the `ack`/`reject` frame here — otherwise a
    /// fast worker could stream a cache-warm job's progress before the
    /// submitting thread wrote the ack, reordering the transcript.
    pub fn submit_with(
        &self,
        job: Job,
        now: f64,
        on_verdict: impl FnOnce(&Admission),
    ) -> Admission {
        let tenant = job.spec.tenant.clone();
        let mut g = self.lock();
        if g.shutdown {
            g.rejected += 1;
            g.tenants.entry(tenant).or_default().rejected += 1;
            let verdict = Admission::Rejected {
                reason: "shutting_down",
                retry_after_s: MIN_RETRY_S,
            };
            on_verdict(&verdict);
            return verdict;
        }
        if !self.breakers.try_acquire(&tenant, now) {
            let retry_after_s = self
                .breakers
                .retry_after_s(&tenant, now)
                .unwrap_or(MIN_RETRY_S)
                .max(MIN_RETRY_S);
            g.rejected += 1;
            g.tenants.entry(tenant).or_default().rejected += 1;
            let verdict = Admission::Rejected {
                reason: "breaker_open",
                retry_after_s,
            };
            on_verdict(&verdict);
            return verdict;
        }
        let st = g.tenants.entry(tenant.clone()).or_default();
        let capacity = self.max_inflight + self.max_queue;
        if st.queued + st.inflight >= capacity {
            // Hint: this tenant's average modeled seconds per job.
            let avg = if st.completed > 0 {
                st.modeled_s / st.completed as f64
            } else {
                0.0
            };
            let retry_after_s = (avg.max(1.0)).max(MIN_RETRY_S);
            st.rejected += 1;
            g.rejected += 1;
            let verdict = Admission::Rejected {
                reason: "queue_full",
                retry_after_s,
            };
            on_verdict(&verdict);
            return verdict;
        }
        st.queued += 1;
        let verdict = Admission::Accepted { seed: job.seed };
        on_verdict(&verdict);
        g.pending.push_back(job);
        drop(g);
        self.cvar.notify_one();
        verdict
    }

    fn take_runnable(st: &mut QueueState, max_inflight: usize) -> Option<Job> {
        let pos = st.pending.iter().position(|j| {
            st.tenants
                .get(&j.spec.tenant)
                .is_some_and(|t| t.inflight < max_inflight)
        })?;
        let job = st.pending.remove(pos)?;
        let t = st
            .tenants
            .get_mut(&job.spec.tenant)
            .expect("queued job has tenant state");
        t.queued -= 1;
        t.inflight += 1;
        st.inflight += 1;
        Some(job)
    }

    /// Blocks until a runnable job is available (first queued job whose
    /// tenant is under its in-flight cap) and claims it. Returns `None`
    /// once the queue is shut down and drained.
    pub fn next(&self) -> Option<Job> {
        let mut g = self.lock();
        loop {
            if let Some(job) = Self::take_runnable(&mut g, self.max_inflight) {
                return Some(job);
            }
            if g.shutdown && g.pending.is_empty() {
                return None;
            }
            g = self.cvar.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking [`JobQueue::next`]: claims a runnable job if one
    /// exists right now. For deterministic single-threaded draining in
    /// tests.
    pub fn try_next(&self) -> Option<Job> {
        Self::take_runnable(&mut self.lock(), self.max_inflight)
    }

    /// Records completion of a claimed job: releases the tenant's
    /// in-flight slot, accounts `modeled_s`, feeds the tenant's
    /// admission breaker (`failed` = crashed or degraded), and wakes
    /// waiters.
    pub fn complete(&self, tenant: &str, modeled_s: f64, failed: bool, now: f64) {
        {
            let mut g = self.lock();
            let t = g.tenants.entry(tenant.to_string()).or_default();
            t.inflight = t.inflight.saturating_sub(1);
            t.completed += 1;
            t.modeled_s += modeled_s;
            g.inflight = g.inflight.saturating_sub(1);
            g.completed += 1;
        }
        if failed {
            self.breakers.on_failure(tenant, now);
        } else {
            self.breakers.on_success(tenant);
        }
        self.cvar.notify_all();
    }

    /// Marks the queue as shutting down: pending jobs still drain, new
    /// submissions are rejected, and [`JobQueue::next`] returns `None`
    /// once empty.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cvar.notify_all();
    }

    /// `true` once [`JobQueue::shutdown`] has been called.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Times a tenant's admission breaker has opened (diagnostics).
    #[must_use]
    pub fn breaker_opens(&self, tenant: &str) -> u32 {
        self.breakers.opens(tenant)
    }

    /// Current aggregate counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let g = self.lock();
        QueueStats {
            completed: g.completed,
            rejected: g.rejected,
            queued: g.pending.len(),
            inflight: g.inflight,
            tenants: g.tenants.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_bench::Flow;

    fn job(tenant: &str, id: &str) -> Job {
        Job {
            spec: SubmitRequest {
                tenant: tenant.to_string(),
                job: id.to_string(),
                task: "prob000_and2".to_string(),
                verilog: true,
                flow: Flow::Aivril2,
            },
            problem_index: 0,
            seed: crate::job_seed(tenant, id),
            sink: Arc::new(|_| {}),
        }
    }

    fn accepted(a: &Admission) -> bool {
        matches!(a, Admission::Accepted { .. })
    }

    #[test]
    fn capacity_bounds_each_tenant_independently() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        assert!(accepted(&q.submit(job("acme", "b"), 0.0)));
        match q.submit(job("acme", "c"), 0.0) {
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "queue_full");
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Another tenant still has its own full budget.
        assert!(accepted(&q.submit(job("globex", "a"), 0.0)));
        assert_eq!(q.stats().rejected, 1);
        assert_eq!(q.stats().queued, 3);
    }

    #[test]
    fn inflight_cap_holds_back_second_job_until_completion() {
        let q = JobQueue::new(1, 2, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        assert!(accepted(&q.submit(job("acme", "b"), 0.0)));
        let first = q.try_next().expect("first job runnable");
        assert_eq!(first.spec.job, "a");
        assert!(
            q.try_next().is_none(),
            "tenant at max_inflight=1; second job must wait"
        );
        q.complete("acme", 10.0, false, 1.0);
        let second = q.try_next().expect("slot freed");
        assert_eq!(second.spec.job, "b");
    }

    #[test]
    fn failures_open_only_the_noisy_tenants_breaker() {
        let policy = ResiliencePolicy {
            breaker_threshold: 2,
            ..ResiliencePolicy::default()
        };
        let q = JobQueue::new(2, 2, policy);
        for id in ["a", "b"] {
            assert!(accepted(&q.submit(job("noisy", id), 0.0)));
            q.try_next().expect("runnable");
            q.complete("noisy", 5.0, true, 1.0);
        }
        match q.submit(job("noisy", "c"), 1.5) {
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "breaker_open");
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected breaker rejection, got {other:?}"),
        }
        assert!(q.breaker_opens("noisy") >= 1);
        // The quiet tenant is untouched.
        assert!(accepted(&q.submit(job("quiet", "a"), 1.5)));
        assert_eq!(q.breaker_opens("quiet"), 0);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_old() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        q.shutdown();
        match q.submit(job("acme", "b"), 0.0) {
            Admission::Rejected { reason, .. } => assert_eq!(reason, "shutting_down"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.next().expect("drains pending").spec.job, "a");
        q.complete("acme", 1.0, false, 0.5);
        assert!(q.next().is_none(), "drained + shutdown ends the loop");
    }
}
