//! Structured tool reports paired with their textual logs.

use aivril_hdl::diag::Severity;

/// One parsed tool message (mirrors a rendered log line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ToolMessage {
    /// Severity.
    pub severity: Severity,
    /// Message id, e.g. `VRFC 10-91`.
    pub code: String,
    /// Message text.
    pub message: String,
    /// Source file, when the message is located.
    pub file: Option<String>,
    /// 1-based line number, when located.
    pub line: Option<u32>,
}

impl ToolMessage {
    /// `true` for error-or-worse severities.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity >= Severity::Error
    }
}

/// Result of the analysis/elaboration step (`xvlog`/`xvhdl` + `xelab`).
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// `true` when no errors occurred.
    pub success: bool,
    /// Vivado-style log text — what the Review Agent reads.
    pub log: String,
    /// The same information, structured (for metrics and tests).
    pub messages: Vec<ToolMessage>,
    /// Modeled tool wall-clock in seconds (drives Figure 3).
    pub modeled_latency: f64,
}

impl CompileReport {
    /// Count of error messages.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.messages.iter().filter(|m| m.is_error()).count()
    }
}

/// One testbench failure extracted from the simulation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestFailure {
    /// Test case index when the log line follows the
    /// `Test Case N Failed` convention.
    pub case: Option<u32>,
    /// Full failure message.
    pub message: String,
}

/// Structured divergence diagnostic: a kernel watchdog aborted the run
/// because the design never settled (zero-delay oscillation, runaway
/// process, exhausted instruction budget). Carried alongside the raw log
/// so the corrective-prompt builder can quote *what* diverged instead of
/// hoping the model parses an `ERROR: [XSIM 43-3225]` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimDiverged {
    /// Which watchdog fired.
    pub limit: aivril_sim::LimitKind,
    /// Modeled simulation time at the abort.
    pub at_time: u64,
    /// Instructions the kernel had executed when it gave up.
    pub instructions: u64,
}

impl SimDiverged {
    /// One-paragraph description suitable for quoting in a corrective
    /// prompt.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "The simulation did not settle: {} at time {} after {} executed instructions. \
             This usually means the design contains combinational feedback \
             (e.g. a signal assigned from its own value with no clock or delay) \
             or a loop with no event or time control.",
            self.limit, self.at_time, self.instructions
        )
    }
}

/// Result of the simulation step (`xsim`).
#[derive(Debug, Clone)]
pub struct SimReport {
    /// `true` when compilation succeeded (simulation was attempted).
    pub compiled: bool,
    /// `true` when the run finished with zero test failures.
    pub passed: bool,
    /// Full log: compile log followed by simulation output.
    pub log: String,
    /// Extracted test failures.
    pub failures: Vec<TestFailure>,
    /// Compile-step messages (empty when compilation was clean).
    pub compile_messages: Vec<ToolMessage>,
    /// Final simulation time (0 when simulation never ran).
    pub end_time: u64,
    /// `true` when the run ended via `$finish`/`severity failure`.
    pub finished: bool,
    /// Set when a kernel watchdog aborted the run (the design diverged
    /// instead of settling); `None` for normal completions.
    pub diverged: Option<SimDiverged>,
    /// Modeled tool wall-clock in seconds (compile + simulate).
    pub modeled_latency: f64,
}

/// `true` when the line opens with an error-or-worse severity word
/// followed by a colon, matched case-insensitively: testbenches print
/// `$error`/`$fatal` output through `$display` in whatever casing the
/// author chose (`ERROR:`, `Error:`, `Fatal:` all occur in the wild).
fn has_error_severity_prefix(line: &str) -> bool {
    let Some((prefix, _)) = line.split_once(':') else {
        return false;
    };
    prefix.eq_ignore_ascii_case("error") || prefix.eq_ignore_ascii_case("fatal")
}

/// Extracts `Test Case N Failed ...` style failures from raw log text;
/// any other line carrying an error-or-worse severity prefix
/// (`ERROR:`/`Fatal:`/... — case-insensitive) is kept as an unnumbered
/// failure. `Test Case` lines tolerate extra whitespace around the case
/// number and a missing number (`Test Case Failed: ...` stays a failure
/// with `case: None`).
#[must_use]
pub fn extract_failures(log: &str) -> Vec<TestFailure> {
    let mut out = Vec::new();
    for line in log.lines() {
        let is_sim_error = has_error_severity_prefix(line);
        if let Some(pos) = line.find("Test Case") {
            let rest = line[pos + "Test Case".len()..].trim_start();
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if rest[digits.len()..].trim_start().starts_with("Failed") {
                out.push(TestFailure {
                    case: digits.parse().ok(),
                    message: line.trim().to_string(),
                });
                continue;
            }
        }
        if is_sim_error && !line.contains("[VRFC") {
            out.push(TestFailure {
                case: None,
                message: line.trim().to_string(),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_numbered_failures() {
        let log = "some output\n\
                   ERROR: Test Case 2 Failed: shift_ena should be 0 after 4 clock cycles (at time 52)\n\
                   All tests passed successfully!\n";
        let fails = extract_failures(log);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].case, Some(2));
        assert!(fails[0].message.contains("shift_ena"));
    }

    #[test]
    fn keeps_unnumbered_errors() {
        let log = "ERROR: something exploded (at time 10)\n";
        let fails = extract_failures(log);
        assert_eq!(fails.len(), 1);
        assert_eq!(fails[0].case, None);
    }

    #[test]
    fn severity_prefix_matching_is_case_insensitive() {
        // Each row: (log line, expected extraction count). Testbenches
        // render `$fatal`/`assert severity failure` output with
        // author-chosen casing; all severities at error-or-worse must
        // be kept, and non-severity or info lines must not.
        let table: &[(&str, usize)] = &[
            ("ERROR: bus value mismatch (at time 10)", 1),
            ("Error: bus value mismatch (at time 10)", 1),
            ("error: bus value mismatch (at time 10)", 1),
            ("FATAL: premature end of simulation (at time 40)", 1),
            ("Fatal: premature end of simulation (at time 40)", 1),
            ("fatal: premature end of simulation (at time 40)", 1),
            ("INFO: [xsim] Running simulation", 0),
            ("Warning: X propagated to output", 0),
            ("A line mentioning error: mid-sentence", 0),
            ("ERROR", 0), // no colon, not a rendered severity line
            ("Fatal", 0), // ditto
            ("ERROR: [VRFC 10-91] syntax [f.v:1]", 0), // compile diag
        ];
        for &(line, want) in table {
            let got = extract_failures(line);
            assert_eq!(got.len(), want, "line: {line:?} -> {got:?}");
        }
    }

    #[test]
    fn test_case_lines_tolerate_whitespace_and_missing_number() {
        // Each row: (log line, expected case field of the single
        // extracted failure). Regression shapes: a double space before
        // the number used to demote the line to an unnumbered failure,
        // and a `Fatal:`-prefixed unnumbered `Test Case Failed` line
        // used to be dropped entirely.
        let table: &[(&str, Option<u32>)] = &[
            ("ERROR: Test Case 2 Failed: q stuck (at time 52)", Some(2)),
            ("ERROR: Test Case  3 Failed: q stuck (at time 52)", Some(3)),
            ("ERROR: Test Case 12  Failed: q stuck", Some(12)),
            ("Error: Test Case\t4 Failed: q stuck", Some(4)),
            ("ERROR: Test Case Failed: q stuck (at time 9)", None),
            ("Fatal: Test Case Failed: q stuck (at time 9)", None),
        ];
        for &(line, want) in table {
            let got = extract_failures(line);
            assert_eq!(got.len(), 1, "line: {line:?} -> {got:?}");
            assert_eq!(got[0].case, want, "line: {line:?}");
        }
        // `Test Cases Failed` (plural, no severity) is prose, not a
        // failure record.
        assert!(extract_failures("3 Test Cases Failed in total").is_empty());
    }

    #[test]
    fn ignores_compile_errors_and_clean_lines() {
        let log = "INFO: [VRFC 10-2263] analyzing\nERROR: [VRFC 10-91] syntax [f.v:1]\nok\n";
        assert!(extract_failures(log).is_empty());
    }

    #[test]
    fn tool_message_severity() {
        let m = ToolMessage {
            severity: Severity::Error,
            code: "VRFC 10-91".into(),
            message: "m".into(),
            file: None,
            line: None,
        };
        assert!(m.is_error());
    }
}
