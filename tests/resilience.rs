//! Resilience suite: injected faults, retries, breaker trips and
//! degradations must be *deterministic* — bit-identical for every
//! thread count, because every fault decision is a pure function of
//! request content — and fault-free runs must leave artifacts
//! indistinguishable from a build without the resilience layer.
//!
//! Floating-point comparison is `to_bits` equality, never an epsilon:
//! the guarantee under test is that `AIVRIL_THREADS` changes nothing,
//! including backoff summation order.

use aivril_bench::{EvalStats, Flow, Harness, HarnessConfig};
use aivril_core::ResilienceCounters;
use aivril_llm::{profiles, FaultConfig};
use aivril_metrics::EvalOutcome;
use aivril_obs::{render_journal, Recorder};

fn harness(threads: usize, faults: FaultConfig, recorder: Recorder) -> Harness {
    Harness::new(HarnessConfig {
        samples: 2,
        task_limit: 8,
        threads,
        faults,
        ..HarnessConfig::default()
    })
    .with_recorder(recorder)
}

fn run(threads: usize, faults: FaultConfig, recorder: Recorder) -> (Vec<EvalOutcome>, EvalStats) {
    harness(threads, faults, recorder).evaluate_with_stats(
        &profiles::claude35_sonnet(),
        true,
        Flow::Aivril2,
    )
}

/// Bitwise equality of two outcome sets, including the crash flag.
fn assert_bit_identical(a: &[EvalOutcome], b: &[EvalOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: task count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.task, y.task, "{what}: task order differs");
        for (i, (s, t)) in x.samples.iter().zip(&y.samples).enumerate() {
            let ctx = format!("{what}: task {} sample {i}", x.task);
            assert_eq!(s.syntax, t.syntax, "{ctx}: syntax");
            assert_eq!(s.functional, t.functional, "{ctx}: functional");
            assert_eq!(s.crashed, t.crashed, "{ctx}: crashed");
            assert_eq!(s.syntax_iters, t.syntax_iters, "{ctx}: syntax_iters");
            assert_eq!(
                s.functional_iters, t.functional_iters,
                "{ctx}: functional_iters"
            );
            assert_eq!(
                s.total_latency.to_bits(),
                t.total_latency.to_bits(),
                "{ctx}: total_latency {} vs {}",
                s.total_latency,
                t.total_latency
            );
        }
    }
}

#[test]
fn faulted_grid_is_bit_identical_across_thread_counts() {
    let faults = FaultConfig::uniform(0.2);
    let (a, sa) = run(1, faults, Recorder::disabled());
    let (b, sb) = run(2, faults, Recorder::disabled());
    let (c, sc) = run(4, faults, Recorder::disabled());
    assert_bit_identical(&a, &b, "1 vs 2 threads under faults");
    assert_bit_identical(&a, &c, "1 vs 4 threads under faults");
    assert_eq!(sa.resilience, sb.resilience, "1 vs 2 threads: counters");
    assert_eq!(sa.resilience, sc.resilience, "1 vs 4 threads: counters");
    assert_eq!(
        sa.resilience.backoff_s.to_bits(),
        sc.resilience.backoff_s.to_bits(),
        "backoff accumulation must not depend on scheduling"
    );
    assert_eq!(sa.modeled_seconds.to_bits(), sb.modeled_seconds.to_bits());
    assert_eq!(sa.modeled_seconds.to_bits(), sc.modeled_seconds.to_bits());
    // The plan must actually have fired, or the test proves nothing.
    assert!(sa.resilience.llm_faults > 0, "no faults fired: {sa}");
    assert!(sa.resilience.retries > 0, "no retries happened: {sa}");
    assert!(sa.resilience.backoff_s > 0.0, "no backoff waited: {sa}");
    assert_eq!(sa.crashed, 0, "faults are handled, never crashes");
}

#[test]
fn faulted_journals_and_metrics_are_identical_across_thread_counts() {
    let faults = FaultConfig::uniform(0.2);
    let serial = Recorder::new();
    let _ = run(1, faults, serial.clone());
    let four = Recorder::new();
    let _ = run(4, faults, four.clone());
    assert_eq!(
        render_journal(&serial),
        render_journal(&four),
        "faulted journal bytes must not depend on AIVRIL_THREADS"
    );
    assert_eq!(
        serial.metrics().snapshot(),
        four.metrics().snapshot(),
        "faulted metrics must not depend on AIVRIL_THREADS"
    );
    // Fault telemetry is present — and only in the diagnostic view.
    let rendered = serial.metrics().render();
    assert!(
        rendered.contains("resilience_llm_faults_total"),
        "{rendered}"
    );
    assert!(
        !serial
            .metrics()
            .canonical()
            .render()
            .contains("resilience_"),
        "resilience series must be diagnostic-only"
    );
}

#[test]
fn fault_free_artifacts_carry_no_resilience_traces() {
    let rec = Recorder::new();
    let (_, stats) = run(2, FaultConfig::off(), rec.clone());
    assert_eq!(stats.resilience, ResilienceCounters::default());
    assert_eq!(stats.crashed, 0);
    assert!(
        !stats.to_string().contains("resilience"),
        "fault-free stats line must match pre-resilience output"
    );
    let journal = render_journal(&rec);
    assert!(
        !journal.contains("\"fault\""),
        "fault-free journal must contain no fault spans"
    );
    let metrics = rec.metrics().render();
    assert!(
        !metrics.contains("resilience_"),
        "fault-free metrics must contain no resilience series"
    );
}

#[test]
fn saturating_faults_degrade_every_run_without_crashing() {
    // Every LLM call fails: retries exhaust, breakers open, and every
    // run must still come back as a structured (degraded) failure.
    let (outcomes, stats) = run(1, FaultConfig::uniform(1.0), Recorder::disabled());
    assert_eq!(outcomes.len(), 8);
    assert_eq!(stats.crashed, 0, "total fault saturation must not panic");
    assert!(stats.resilience.degraded > 0, "{stats}");
    assert!(stats.resilience.breaker_opens > 0, "{stats}");
    for o in &outcomes {
        for s in &o.samples {
            assert!(!s.functional, "no run can pass with every call failing");
        }
    }
}
