//! Value-generation strategies (no shrinking — see the crate docs).

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Object-safe: `Box<dyn Strategy<Value = T>>` is itself a strategy,
/// which is what [`crate::prop_oneof!`] builds on.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` derives
    /// from it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
