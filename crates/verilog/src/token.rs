//! Token definitions for the Verilog-2001 subset.

use aivril_hdl::source::Span;
use std::fmt;

/// Kinds of token the lexer produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword text is kept in [`Token::text`]; keywords
    /// are distinguished by [`TokenKind::Keyword`].
    Ident,
    /// Reserved word (`module`, `always`, ...).
    Keyword(Keyword),
    /// System task/function name including the `$` (e.g. `$display`).
    SysIdent,
    /// Integer literal, possibly sized/based (`8'hFF`, `42`).
    Number,
    /// String literal; [`Token::text`] holds the unquoted contents.
    Str,
    /// Operator or punctuation.
    Punct(Punct),
    /// End of input.
    Eof,
}

/// All reserved words recognised by this subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Integer,
    Parameter,
    Localparam,
    Assign,
    Always,
    Initial,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Casex,
    Endcase,
    Default,
    For,
    While,
    Repeat,
    Forever,
    Posedge,
    Negedge,
    Or,
    Signed,
    Generate,
    Endgenerate,
    Genvar,
    Function,
    Endfunction,
    Task,
    Endtask,
    Wait,
}

impl Keyword {
    /// Looks up a keyword from identifier text.
    #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
    #[must_use]
    pub fn from_str(s: &str) -> Option<Keyword> {
        use Keyword::*;
        Some(match s {
            "module" => Module,
            "endmodule" => Endmodule,
            "input" => Input,
            "output" => Output,
            "inout" => Inout,
            "wire" => Wire,
            "reg" => Reg,
            "integer" => Integer,
            "parameter" => Parameter,
            "localparam" => Localparam,
            "assign" => Assign,
            "always" => Always,
            "initial" => Initial,
            "begin" => Begin,
            "end" => End,
            "if" => If,
            "else" => Else,
            "case" => Case,
            "casez" => Casez,
            "casex" => Casex,
            "endcase" => Endcase,
            "default" => Default,
            "for" => For,
            "while" => While,
            "repeat" => Repeat,
            "forever" => Forever,
            "posedge" => Posedge,
            "negedge" => Negedge,
            "or" => Or,
            "signed" => Signed,
            "generate" => Generate,
            "endgenerate" => Endgenerate,
            "genvar" => Genvar,
            "function" => Function,
            "endfunction" => Endfunction,
            "task" => Task,
            "endtask" => Endtask,
            "wait" => Wait,
            _ => return None,
        })
    }

    /// Canonical source spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        use Keyword::*;
        match self {
            Module => "module",
            Endmodule => "endmodule",
            Input => "input",
            Output => "output",
            Inout => "inout",
            Wire => "wire",
            Reg => "reg",
            Integer => "integer",
            Parameter => "parameter",
            Localparam => "localparam",
            Assign => "assign",
            Always => "always",
            Initial => "initial",
            Begin => "begin",
            End => "end",
            If => "if",
            Else => "else",
            Case => "case",
            Casez => "casez",
            Casex => "casex",
            Endcase => "endcase",
            Default => "default",
            For => "for",
            While => "while",
            Repeat => "repeat",
            Forever => "forever",
            Posedge => "posedge",
            Negedge => "negedge",
            Or => "or",
            Signed => "signed",
            Generate => "generate",
            Endgenerate => "endgenerate",
            Genvar => "genvar",
            Function => "function",
            Endfunction => "endfunction",
            Task => "task",
            Endtask => "endtask",
            Wait => "wait",
        }
    }
}

/// Operators and punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Punct {
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Semi,
    Comma,
    Colon,
    Dot,
    Hash,
    At,
    Question,
    Assign,  // =
    LtEqual, // <= (both relational and nonblocking)
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,        // &
    AmpAmp,     // &&
    Pipe,       // |
    PipePipe,   // ||
    Caret,      // ^
    TildeCaret, // ~^ (also ^~)
    Tilde,      // ~
    TildeAmp,   // ~&
    TildePipe,  // ~|
    Bang,       // !
    EqEq,       // ==
    NotEq,      // !=
    CaseEq,     // ===
    CaseNotEq,  // !==
    Lt,
    Gt,
    GtEq,
    Shl,   // <<
    Shr,   // >>
    Star2, // **
}

impl fmt::Display for Punct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Punct::*;
        let s = match self {
            LParen => "(",
            RParen => ")",
            LBracket => "[",
            RBracket => "]",
            LBrace => "{",
            RBrace => "}",
            Semi => ";",
            Comma => ",",
            Colon => ":",
            Dot => ".",
            Hash => "#",
            At => "@",
            Question => "?",
            Assign => "=",
            LtEqual => "<=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            AmpAmp => "&&",
            Pipe => "|",
            PipePipe => "||",
            Caret => "^",
            TildeCaret => "~^",
            Tilde => "~",
            TildeAmp => "~&",
            TildePipe => "~|",
            Bang => "!",
            EqEq => "==",
            NotEq => "!=",
            CaseEq => "===",
            CaseNotEq => "!==",
            Lt => "<",
            Gt => ">",
            GtEq => ">=",
            Shl => "<<",
            Shr => ">>",
            Star2 => "**",
        };
        f.write_str(s)
    }
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token.
    pub kind: TokenKind,
    /// Source text (unquoted for strings).
    pub text: String,
    /// Source location.
    pub span: Span,
}

impl Token {
    /// Short human-readable description for error messages, e.g. `';'`
    /// or `'endmodule'`.
    #[must_use]
    pub fn describe(&self) -> String {
        match &self.kind {
            TokenKind::Eof => "end of file".to_string(),
            TokenKind::Str => format!("\"{}\"", self.text),
            _ => format!("'{}'", self.text),
        }
    }
}
