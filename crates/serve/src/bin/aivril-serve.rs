//! `aivril-serve` — the multi-tenant RTL-generation job service.
//!
//! ```text
//! AIVRIL_SERVE_ADDR=127.0.0.1:4117 AIVRIL_SERVE_WORKERS=2 aivril-serve
//! ```
//!
//! Binds the configured address, prints `[serve] listening on ADDR`
//! once ready, and serves the newline-delimited JSON protocol until a
//! client sends `{"type":"shutdown"}`. See the crate docs and the
//! README "Serving" section for the protocol and the environment
//! knobs.

use aivril_serve::{ServeConfig, Server};
use std::io::Write;
use std::net::TcpListener;
use std::sync::Arc;

fn main() {
    let config = ServeConfig::from_env();
    let listener = match TcpListener::bind(&config.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[serve] cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    let workers = config.effective_workers();
    let server = Arc::new(Server::new(config));
    // Re-admit journaled jobs a previous process left unfinished,
    // before new submissions can interleave with them.
    let recovered = server.recover();
    if recovered > 0 {
        println!("[serve] recovered {recovered} journaled job(s)");
    }
    let handles = server.spawn_workers(workers);
    let addr = listener
        .local_addr()
        .expect("bound listener has an address");
    println!("[serve] listening on {addr} ({workers} workers)");
    let _ = std::io::stdout().flush();
    server.serve(&listener);
    // Accept loop ended (shutdown request): drain and join.
    server.finish();
    for h in handles {
        let _ = h.join();
    }
    let stats = server.queue().stats();
    println!(
        "[serve] done: {} completed, {} rejected",
        stats.completed, stats.rejected
    );
}
