//! The JSONL run-journal exporter.
//!
//! # Schema (`aivril.journal`, version 1)
//!
//! Line 1 is a header object:
//!
//! ```json
//! {"schema":"aivril.journal","version":1,"runs":N,"events":M}
//! ```
//!
//! Every following line is one span-close event:
//!
//! ```json
//! {"run":{"problem":P,"sample":S},"ctx":{"model":"..."},
//!  "span":"llm.chat","depth":1,"t0":0.000000,"t1":2.104000,
//!  "attrs":{"tokens":412}}
//! ```
//!
//! `run` is `null` for events recorded outside an explicit run.
//! Timestamps are modeled seconds with fixed six-decimal formatting, so
//! the journal is byte-identical across reruns and thread counts.

use crate::json;
use crate::recorder::{AttrValue, Recorder, RunJournal, SpanEvent, UNSCOPED};

/// Current journal schema version.
pub const JOURNAL_VERSION: u32 = 1;

/// Span attributes excluded from the canonical journal.
///
/// The journal is a *canonical artifact*: byte-identical across
/// `AIVRIL_THREADS` and `AIVRIL_EDA_CACHE` settings. A per-invocation
/// cache verdict is inherently schedule-dependent (which worker reaches
/// a key first is a race), so `cache_hit` would break that contract.
/// The Chrome trace — a profiling artifact, not a canonical one —
/// still carries these attributes.
pub const DIAGNOSTIC_ATTRS: &[&str] = &["cache_hit"];

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::Str(s) => json::string(s),
        AttrValue::Int(i) => i.to_string(),
        AttrValue::Float(f) => json::number(*f),
        AttrValue::Bool(b) => b.to_string(),
    }
}

fn ctx_json(context: &[(String, String)]) -> String {
    let inner: Vec<String> = context
        .iter()
        .map(|(k, v)| format!("{}:{}", json::string(k), json::string(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn run_json(run: &RunJournal) -> String {
    if run.problem == UNSCOPED && run.sample == UNSCOPED {
        "null".to_string()
    } else {
        format!("{{\"problem\":{},\"sample\":{}}}", run.problem, run.sample)
    }
}

/// Renders one span-close event as a single journal line (no trailing
/// newline) — the unit [`render_journal`] emits after its header.
///
/// Public so streaming consumers (the serve layer's per-iteration
/// progress frames) reuse the exact canonical encoding: an event
/// rendered live, frame by frame, is byte-identical to the same event
/// in a post-hoc journal export.
#[must_use]
pub fn render_event(run: &RunJournal, event: &SpanEvent) -> String {
    let attrs: Vec<String> = event
        .attrs
        .iter()
        .filter(|(k, _)| !DIAGNOSTIC_ATTRS.contains(&k.as_str()))
        .map(|(k, v)| format!("{}:{}", json::string(k), attr_json(v)))
        .collect();
    json::object(&[
        ("run", run_json(run)),
        ("ctx", ctx_json(&run.context)),
        ("span", json::string(&event.name)),
        ("depth", event.depth.to_string()),
        ("t0", json::number(event.t_start)),
        ("t1", json::number(event.t_end)),
        ("attrs", format!("{{{}}}", attrs.join(","))),
    ])
}

/// Renders the full JSONL journal for a recorder: header line followed
/// by one line per span-close event, grouped run-by-run.
#[must_use]
pub fn render_journal(recorder: &Recorder) -> String {
    let runs = recorder.runs();
    let events: usize = runs.iter().map(|r| r.events.len()).sum();
    let mut out = String::new();
    out.push_str(&json::object(&[
        ("schema", json::string("aivril.journal")),
        ("version", JOURNAL_VERSION.to_string()),
        ("runs", runs.len().to_string()),
        ("events", events.to_string()),
    ]));
    out.push('\n');
    for run in &runs {
        for event in &run.events {
            out.push_str(&render_event(run, event));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_has_header_and_event_lines() {
        let r = Recorder::new();
        r.set_context(&[("model", "sim")]);
        r.begin_run(2, 0);
        {
            let s = r.span("llm.chat");
            r.advance(1.25);
            s.attr_int("tokens", 40);
            s.attr_str("kind", "generate");
        }
        r.end_run();
        let journal = render_journal(&r);
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"schema\":\"aivril.journal\",\"version\":1,\"runs\":1,\"events\":1}"
        );
        assert_eq!(
            lines[1],
            "{\"run\":{\"problem\":2,\"sample\":0},\"ctx\":{\"model\":\"sim\"},\
             \"span\":\"llm.chat\",\"depth\":0,\"t0\":0.000000,\"t1\":1.250000,\
             \"attrs\":{\"tokens\":40,\"kind\":\"generate\"}}"
        );
    }

    #[test]
    fn diagnostic_attrs_are_filtered_from_events() {
        let r = Recorder::new();
        {
            let s = r.span("eda.compile");
            s.attr_bool("success", true);
            s.attr_bool("cache_hit", true);
        }
        let journal = render_journal(&r);
        let line = journal.lines().nth(1).unwrap();
        assert!(line.contains("\"success\":true"), "line: {line}");
        assert!(
            !line.contains("cache_hit"),
            "cache_hit is schedule-dependent and must stay out of the \
             canonical journal: {line}"
        );
    }

    #[test]
    fn render_event_matches_journal_lines() {
        let r = Recorder::new();
        r.set_context(&[("tenant", "acme"), ("job", "j1")]);
        r.begin_run(3, 0);
        {
            let s = r.span("llm.chat");
            r.advance(0.5);
            s.attr_int("tokens", 12);
        }
        {
            let _s = r.span("eda.compile");
        }
        r.end_run();
        let runs = r.runs();
        let streamed: Vec<String> = runs
            .iter()
            .flat_map(|run| run.events.iter().map(|e| render_event(run, e)))
            .collect();
        let journal = render_journal(&r);
        let exported: Vec<&str> = journal.lines().skip(1).collect();
        assert_eq!(
            streamed, exported,
            "a streamed frame must be byte-identical to the journal line"
        );
    }

    #[test]
    fn unscoped_run_renders_null() {
        let r = Recorder::new();
        {
            let _s = r.span("loose");
        }
        let journal = render_journal(&r);
        assert!(journal
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("{\"run\":null,"));
    }
}
