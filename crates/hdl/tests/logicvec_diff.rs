//! Differential property tests for the packed [`LogicVec`].
//!
//! Every packed operation (including its one-word fast path and the
//! word-level multi-word paths) is checked against a naive per-bit
//! reference built directly on `Vec<Logic>` and the scalar [`Logic`]
//! resolution tables. Widths span 1–200 with extra cases pinned at the
//! word boundaries (63/64/65/127/128/129), and operands are drawn from
//! an X/Z-heavy distribution so the four-state corners get real
//! coverage.

use aivril_hdl::bits::ScratchBuf;
use aivril_hdl::vec::LogicVec;
use aivril_hdl::Logic;
use proptest::collection::vec as pvec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// LSB-first bit list — the reference representation.
type Bits = Vec<Logic>;

/// Bit `i`, zero-extended beyond the end (how every width-mixing Verilog
/// operator treats the shorter operand).
fn bit(v: &Bits, i: usize) -> Logic {
    v.get(i).copied().unwrap_or(Logic::Zero)
}

fn is_known(b: Logic) -> bool {
    matches!(b, Logic::Zero | Logic::One)
}

fn all_known(v: &Bits) -> bool {
    v.iter().copied().all(is_known)
}

/// Unsigned value of the low 64 bits; bits above 64 are ignored (the
/// truncation the packed word-level arithmetic applies).
fn low64(v: &Bits) -> u64 {
    v.iter()
        .take(64)
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | u64::from(b == Logic::One) << i)
}

/// `to_u64` semantics: `None` when unknown or when bits >= 64 are set.
fn ref_to_u64(v: &Bits) -> Option<u64> {
    if !all_known(v) || v.iter().skip(64).any(|&b| b == Logic::One) {
        return None;
    }
    Some(low64(v))
}

fn xes(width: usize) -> Bits {
    vec![Logic::X; width]
}

fn ref_bitwise(a: &Bits, b: &Bits, f: impl Fn(Logic, Logic) -> Logic) -> Bits {
    let w = a.len().max(b.len());
    (0..w).map(|i| f(bit(a, i), bit(b, i))).collect()
}

fn ref_not(a: &Bits) -> Bits {
    a.iter().map(|b| b.not()).collect()
}

/// Ripple-carry adder over known bits; all-X on any unknown operand bit.
fn ref_add(a: &Bits, b: &Bits) -> Bits {
    let w = a.len().max(b.len());
    if !all_known(a) || !all_known(b) {
        return xes(w);
    }
    let mut carry = false;
    (0..w)
        .map(|i| {
            let x = bit(a, i) == Logic::One;
            let y = bit(b, i) == Logic::One;
            let s = x ^ y ^ carry;
            carry = x && y || carry && (x || y);
            Logic::from_bool(s)
        })
        .collect()
}

/// `a - b` as `a + !b + 1` at the common width.
fn ref_sub(a: &Bits, b: &Bits) -> Bits {
    let w = a.len().max(b.len());
    if !all_known(a) || !all_known(b) {
        return xes(w);
    }
    let not_b: Bits = (0..w).map(|i| bit(b, i).not()).collect();
    let one: Bits = (0..w).map(|i| Logic::from_bool(i == 0)).collect();
    ref_add(&ref_add(&a.clone(), &not_b), &one)
}

fn ref_negate(a: &Bits) -> Bits {
    if !all_known(a) {
        return xes(a.len());
    }
    ref_sub(&vec![Logic::Zero; a.len()], a)
}

/// Word-level multiplication semantics: product of the low 64 bits of
/// each operand, placed in the low word of the result.
fn ref_mul(a: &Bits, b: &Bits) -> Bits {
    let w = a.len().max(b.len());
    if !all_known(a) || !all_known(b) {
        return xes(w);
    }
    from_u64_bits(w, low64(a).wrapping_mul(low64(b)))
}

fn from_u64_bits(width: usize, value: u64) -> Bits {
    (0..width)
        .map(|i| Logic::from_bool(i < 64 && value >> i & 1 == 1))
        .collect()
}

fn ref_divrem(a: &Bits, b: &Bits, rem: bool) -> Bits {
    let w = a.len().max(b.len());
    match (ref_to_u64(a), ref_to_u64(b)) {
        (Some(x), Some(y)) if y != 0 => from_u64_bits(w, if rem { x % y } else { x / y }),
        _ => xes(w),
    }
}

fn ref_shl_const(a: &Bits, n: usize) -> Bits {
    (0..a.len())
        .map(|i| if i >= n { bit(a, i - n) } else { Logic::Zero })
        .collect()
}

fn ref_shr_const(a: &Bits, n: usize) -> Bits {
    (0..a.len())
        .map(|i| match i.checked_add(n) {
            Some(src) if src < a.len() => a[src],
            _ => Logic::Zero,
        })
        .collect()
}

/// Variable shifts: an amount that is unknown *or* has bits set at 64
/// and above yields all-X (the packed form goes through `to_u64`); the
/// in-range amount is then truncated to u32, exactly like the packed
/// implementation's cast.
fn ref_shift(a: &Bits, amount: &Bits, left: bool) -> Bits {
    match ref_to_u64(amount) {
        None => xes(a.len()),
        Some(n) => {
            let n = n as u32 as usize;
            if left {
                ref_shl_const(a, n)
            } else {
                ref_shr_const(a, n)
            }
        }
    }
}

fn ref_concat(hi: &Bits, lo: &Bits) -> Bits {
    lo.iter().chain(hi.iter()).copied().collect()
}

fn ref_replicate(a: &Bits, count: usize) -> Bits {
    let mut out = Bits::new();
    for _ in 0..count {
        out.extend_from_slice(a);
    }
    out
}

fn ref_slice(a: &Bits, msb: usize, lsb: usize) -> Bits {
    let (msb, lsb) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
    (lsb..=msb)
        .map(|i| if i < a.len() { a[i] } else { Logic::X })
        .collect()
}

fn ref_set_slice(a: &Bits, msb: usize, lsb: usize, value: &Bits) -> Bits {
    let (msb, lsb) = if msb >= lsb { (msb, lsb) } else { (lsb, msb) };
    let mut out = a.clone();
    for i in 0..=(msb - lsb) {
        if lsb + i < out.len() {
            out[lsb + i] = if i < value.len() {
                value[i]
            } else {
                Logic::Zero
            };
        }
    }
    out
}

fn ref_logic_eq(a: &Bits, b: &Bits) -> Logic {
    if !all_known(a) || !all_known(b) {
        return Logic::X;
    }
    let w = a.len().max(b.len());
    Logic::from_bool((0..w).all(|i| bit(a, i) == bit(b, i)))
}

fn ref_case_eq(a: &Bits, b: &Bits) -> bool {
    let w = a.len().max(b.len());
    (0..w).all(|i| bit(a, i) == bit(b, i))
}

fn ref_value_cmp(a: &Bits, b: &Bits) -> Option<std::cmp::Ordering> {
    if !all_known(a) || !all_known(b) {
        return None;
    }
    let w = a.len().max(b.len());
    for i in (0..w).rev() {
        let (x, y) = (bit(a, i) == Logic::One, bit(b, i) == Logic::One);
        if x != y {
            return Some(if x {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Less
            });
        }
    }
    Some(std::cmp::Ordering::Equal)
}

fn ref_to_bool(a: &Bits) -> Option<bool> {
    if a.contains(&Logic::One) {
        return Some(true);
    }
    if all_known(a) {
        Some(false)
    } else {
        None
    }
}

fn ref_reduce(a: &Bits, init: Logic, f: impl Fn(Logic, Logic) -> Logic) -> Logic {
    a.iter().copied().fold(init, f)
}

fn ref_count_ones(a: &Bits) -> Option<u32> {
    if !all_known(a) {
        return None;
    }
    Some(a.iter().filter(|&&b| b == Logic::One).count() as u32)
}

fn ref_resize(a: &Bits, width: usize) -> Bits {
    (0..width).map(|i| bit(a, i)).collect()
}

/// Packs the reference bits into a LogicVec.
fn lv(bits: &Bits) -> LogicVec {
    let mut v = LogicVec::zeros(bits.len() as u32);
    for (i, &b) in bits.iter().enumerate() {
        v.set(i as u32, b);
    }
    v
}

/// Unpacks a LogicVec back into reference bits.
fn unpack(v: &LogicVec) -> Bits {
    v.iter().collect()
}

/// Asserts a packed result matches the reference, bit for bit.
fn assert_same(packed: &LogicVec, reference: &Bits, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(packed.width() as usize, reference.len(), "{} width", what);
    prop_assert_eq!(&unpack(packed), reference, "{} bits", what);
    // The representation invariant: width alone picks inline vs spilled.
    prop_assert_eq!(packed.is_spilled(), packed.width() > 64, "{} repr", what);
    Ok(())
}

/// Widths 1–200 with the word boundaries pinned as explicit choices.
fn width_strategy() -> BoxedStrategy<u32> {
    prop_oneof![
        1u32..=200,
        Just(63u32),
        Just(64u32),
        Just(65u32),
        Just(127u32),
        Just(128u32),
        Just(129u32),
    ]
    .boxed()
}

/// X/Z-heavy four-state distribution (one third unknown bits).
fn logic_strategy() -> BoxedStrategy<Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::One),
        Just(Logic::X),
        Just(Logic::Z),
    ]
    .boxed()
}

/// Mostly-known distribution, so arithmetic paths run on real values
/// often instead of short-circuiting to all-X.
fn mostly_known_strategy() -> BoxedStrategy<Logic> {
    prop_oneof![
        Just(Logic::Zero),
        Just(Logic::Zero),
        Just(Logic::Zero),
        Just(Logic::One),
        Just(Logic::One),
        Just(Logic::One),
        Just(Logic::One),
        Just(Logic::X),
    ]
    .boxed()
}

fn bits_strategy(element: fn() -> BoxedStrategy<Logic>) -> BoxedStrategy<Bits> {
    width_strategy()
        .prop_flat_map(move |w| pvec(element(), w as usize..=w as usize))
        .boxed()
}

proptest! {
    #[test]
    fn bitwise_ops_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(logic_strategy),
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        assert_same(&pa.and(&pb), &ref_bitwise(&a, &b, Logic::and), "and")?;
        assert_same(&pa.or(&pb), &ref_bitwise(&a, &b, Logic::or), "or")?;
        assert_same(&pa.xor(&pb), &ref_bitwise(&a, &b, Logic::xor), "xor")?;
        assert_same(
            &pa.xnor(&pb),
            &ref_bitwise(&a, &b, |x, y| x.xor(y).not()),
            "xnor",
        )?;
        assert_same(&pa.not(), &ref_not(&a), "not")?;
    }

    #[test]
    fn arithmetic_matches_reference(
        a in bits_strategy(mostly_known_strategy),
        b in bits_strategy(mostly_known_strategy),
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        assert_same(&pa.add(&pb), &ref_add(&a, &b), "add")?;
        assert_same(&pa.sub(&pb), &ref_sub(&a, &b), "sub")?;
        assert_same(&pa.negate(), &ref_negate(&a), "negate")?;
        assert_same(&pa.mul(&pb), &ref_mul(&a, &b), "mul")?;
        assert_same(&pa.div(&pb), &ref_divrem(&a, &b, false), "div")?;
        assert_same(&pa.rem(&pb), &ref_divrem(&a, &b, true), "rem")?;
    }

    #[test]
    fn shifts_match_reference(
        a in bits_strategy(logic_strategy),
        n in 0u32..210,
        amt in bits_strategy(mostly_known_strategy),
    ) {
        let (pa, pamt) = (lv(&a), lv(&amt));
        assert_same(&pa.shift_left_const(n), &ref_shl_const(&a, n as usize), "shl const")?;
        assert_same(&pa.shift_right_const(n), &ref_shr_const(&a, n as usize), "shr const")?;
        assert_same(&pa.shl(&pamt), &ref_shift(&a, &amt, true), "shl")?;
        assert_same(&pa.shr(&pamt), &ref_shift(&a, &amt, false), "shr")?;
    }

    #[test]
    fn structure_ops_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(logic_strategy),
        count in 1u32..4,
        msb in 0u32..210,
        lsb in 0u32..210,
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        assert_same(&pa.concat(&pb), &ref_concat(&a, &b), "concat")?;
        assert_same(&pa.replicate(count), &ref_replicate(&a, count as usize), "replicate")?;
        assert_same(
            &pa.slice(msb, lsb),
            &ref_slice(&a, msb as usize, lsb as usize),
            "slice",
        )?;
        let mut target = pa.clone();
        target.set_slice(msb, lsb, &pb);
        assert_same(
            &target,
            &ref_set_slice(&a, msb as usize, lsb as usize, &b),
            "set_slice",
        )?;
    }

    #[test]
    fn predicates_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(mostly_known_strategy),
        w in width_strategy(),
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        prop_assert_eq!(pa.logic_eq(&pb), ref_logic_eq(&a, &b));
        prop_assert_eq!(pa.case_eq(&pb), ref_case_eq(&a, &b));
        prop_assert_eq!(pa.value_cmp(&pb), ref_value_cmp(&a, &b));
        let cmp = ref_value_cmp(&a, &b);
        let expect = |want: &[std::cmp::Ordering]| match cmp {
            Some(ord) => Logic::from_bool(want.contains(&ord)),
            None => Logic::X,
        };
        use std::cmp::Ordering::*;
        prop_assert_eq!(pa.lt(&pb), expect(&[Less]));
        prop_assert_eq!(pa.le(&pb), expect(&[Less, Equal]));
        prop_assert_eq!(pa.gt(&pb), expect(&[Greater]));
        prop_assert_eq!(pa.ge(&pb), expect(&[Greater, Equal]));
        prop_assert_eq!(pa.to_bool(), ref_to_bool(&a));
        prop_assert_eq!(pa.to_u64(), ref_to_u64(&a));
        prop_assert_eq!(pa.count_ones(), ref_count_ones(&a));
        prop_assert_eq!(pa.has_unknown(), !all_known(&a));
        prop_assert_eq!(pa.reduce_and(), ref_reduce(&a, Logic::One, Logic::and));
        prop_assert_eq!(pa.reduce_or(), ref_reduce(&a, Logic::Zero, Logic::or));
        prop_assert_eq!(pa.reduce_xor(), ref_reduce(&a, Logic::Zero, Logic::xor));
        assert_same(&pa.resize(w), &ref_resize(&a, w as usize), "resize")?;
        for i in 0..(a.len() as u32 + 3) {
            let want = if (i as usize) < a.len() { a[i as usize] } else { Logic::X };
            prop_assert_eq!(pa.get(i), want, "get({})", i);
        }
    }
}

/// Ternary merge under an unknown condition: zero-extended arms, the
/// shared value where both are known and agree, X otherwise.
fn ref_select_merge(then: &Bits, els: &Bits) -> Bits {
    let w = then.len().max(els.len());
    (0..w)
        .map(|i| {
            let (x, y) = (bit(then, i), bit(els, i));
            if is_known(x) && x == y {
                x
            } else {
                Logic::X
            }
        })
        .collect()
}

/// Loads the reference bits into a scratch buffer (via the packed form,
/// which the random `LogicVec` suites above already pin to the oracle).
fn sb(bits: &Bits) -> ScratchBuf {
    let mut buf = ScratchBuf::new();
    buf.load(lv(bits).as_bits());
    buf
}

/// Asserts an in-place result matches the reference, bit for bit, and
/// that the buffer never grew past its initial `load` (the zero-alloc
/// contract: one sizing at load, none during the op).
fn assert_same_sb(buf: &ScratchBuf, reference: &Bits, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(buf.width() as usize, reference.len(), "{} width", what);
    prop_assert_eq!(&unpack(&buf.to_logic_vec()), reference, "{} bits", what);
    Ok(())
}

// The word-parallel in-place ops of `ScratchBuf` against the same
// scalar oracle as the packed suites, at the same boundary-pinned
// widths (63/64/65/127/128/129 among 1-200). These are the kernels the
// wide-value arena executes on borrowed slices, so any divergence here
// is a simulation wrong-answer, not just a perf bug.
proptest! {
    #[test]
    fn scratch_bitwise_ops_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(logic_strategy),
    ) {
        let pb = lv(&b);
        let mut s = sb(&a);
        s.and_assign(pb.as_bits());
        assert_same_sb(&s, &ref_bitwise(&a, &b, Logic::and), "and_assign")?;
        let mut s = sb(&a);
        s.or_assign(pb.as_bits());
        assert_same_sb(&s, &ref_bitwise(&a, &b, Logic::or), "or_assign")?;
        let mut s = sb(&a);
        s.xor_assign(pb.as_bits());
        assert_same_sb(&s, &ref_bitwise(&a, &b, Logic::xor), "xor_assign")?;
        let mut s = sb(&a);
        s.xnor_assign(pb.as_bits());
        assert_same_sb(&s, &ref_bitwise(&a, &b, |x, y| x.xor(y).not()), "xnor_assign")?;
        let mut s = sb(&a);
        s.not_self();
        assert_same_sb(&s, &ref_not(&a), "not_self")?;
        let mut s = sb(&a);
        s.select_merge(lv(&a).as_bits(), pb.as_bits());
        assert_same_sb(&s, &ref_select_merge(&a, &b), "select_merge")?;
    }

    #[test]
    fn scratch_arithmetic_matches_reference(
        a in bits_strategy(mostly_known_strategy),
        b in bits_strategy(mostly_known_strategy),
    ) {
        let pb = lv(&b);
        let mut s = sb(&a);
        s.add_assign(pb.as_bits());
        assert_same_sb(&s, &ref_add(&a, &b), "add_assign")?;
        let mut s = sb(&a);
        s.sub_assign(pb.as_bits());
        assert_same_sb(&s, &ref_sub(&a, &b), "sub_assign")?;
        let mut s = sb(&a);
        s.neg_self();
        assert_same_sb(&s, &ref_negate(&a), "neg_self")?;
        let mut s = sb(&a);
        s.mul_assign(pb.as_bits());
        assert_same_sb(&s, &ref_mul(&a, &b), "mul_assign")?;
        let mut s = sb(&a);
        s.div_assign(pb.as_bits());
        assert_same_sb(&s, &ref_divrem(&a, &b, false), "div_assign")?;
        let mut s = sb(&a);
        s.rem_assign(pb.as_bits());
        assert_same_sb(&s, &ref_divrem(&a, &b, true), "rem_assign")?;
    }

    #[test]
    fn scratch_shifts_and_structure_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(logic_strategy),
        n in 0u32..210,
        amt in bits_strategy(mostly_known_strategy),
        count in 1u32..4,
        msb in 0u32..210,
        lsb in 0u32..210,
    ) {
        let (pa, pb, pamt) = (lv(&a), lv(&b), lv(&amt));
        let mut s = sb(&a);
        s.shl_assign_const(n);
        assert_same_sb(&s, &ref_shl_const(&a, n as usize), "shl_assign_const")?;
        let mut s = sb(&a);
        s.shr_assign_const(n);
        assert_same_sb(&s, &ref_shr_const(&a, n as usize), "shr_assign_const")?;
        let mut s = sb(&a);
        s.shl_assign(pamt.as_bits());
        assert_same_sb(&s, &ref_shift(&a, &amt, true), "shl_assign")?;
        let mut s = sb(&a);
        s.shr_assign(pamt.as_bits());
        assert_same_sb(&s, &ref_shift(&a, &amt, false), "shr_assign")?;
        let mut s = ScratchBuf::new();
        s.slice_from(pa.as_bits(), msb, lsb);
        assert_same_sb(&s, &ref_slice(&a, msb as usize, lsb as usize), "slice_from")?;
        let mut s = sb(&a);
        s.concat_low(pb.as_bits());
        assert_same_sb(&s, &ref_concat(&a, &b), "concat_low")?;
        let mut s = sb(&a);
        let mut spare = ScratchBuf::new();
        s.replicate_self(count, &mut spare);
        assert_same_sb(&s, &ref_replicate(&a, count as usize), "replicate_self")?;
    }

    #[test]
    fn bits_ref_predicates_match_reference(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(mostly_known_strategy),
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        let (ra, rb) = (pa.as_bits(), pb.as_bits());
        prop_assert_eq!(ra.logic_eq(rb), ref_logic_eq(&a, &b));
        prop_assert_eq!(ra.case_eq(rb), ref_case_eq(&a, &b));
        prop_assert_eq!(ra.value_cmp(rb), ref_value_cmp(&a, &b));
        prop_assert_eq!(ra.to_bool(), ref_to_bool(&a));
        prop_assert_eq!(ra.to_u64(), ref_to_u64(&a));
        prop_assert_eq!(ra.has_unknown(), !all_known(&a));
        prop_assert_eq!(ra.reduce_and(), ref_reduce(&a, Logic::One, Logic::and));
        prop_assert_eq!(ra.reduce_or(), ref_reduce(&a, Logic::Zero, Logic::or));
        prop_assert_eq!(ra.reduce_xor(), ref_reduce(&a, Logic::Zero, Logic::xor));
        for i in 0..(a.len() as u32 + 3) {
            let want = if (i as usize) < a.len() { a[i as usize] } else { Logic::X };
            prop_assert_eq!(ra.get(i), want, "get({})", i);
        }
    }

    /// The arena contract: a buffer pre-sized to the op's statically
    /// known result width completes any op sequence without regrowing.
    #[test]
    fn presized_scratch_never_grows(
        a in bits_strategy(logic_strategy),
        b in bits_strategy(mostly_known_strategy),
        n in 0u32..210,
    ) {
        let (pa, pb) = (lv(&a), lv(&b));
        let max_w = (a.len().max(b.len()) as u32) * 4;
        let mut s = ScratchBuf::with_width(max_w);
        let mut spare = ScratchBuf::with_width(max_w);
        s.load_resized(pa.as_bits(), a.len() as u32);
        s.xor_assign(pb.as_bits());
        s.add_assign(pb.as_bits());
        s.shl_assign_const(n.min(s.width()));
        s.not_self();
        s.replicate_self(3, &mut spare);
        s.select_merge(pa.as_bits(), pb.as_bits());
        prop_assert_eq!(s.grows(), 0, "pre-sized buffer must not regrow");
        prop_assert_eq!(spare.grows(), 0, "spare must not regrow");
    }
}

/// Deterministic sweep of the word-boundary widths with structured
/// patterns — belt and braces on top of the random cases above.
#[test]
fn boundary_width_patterns_match_reference() {
    let patterns: &[fn(usize) -> Logic] = &[
        |_| Logic::Zero,
        |_| Logic::One,
        |i| Logic::from_bool(i % 2 == 0),
        |i| if i % 7 == 3 { Logic::X } else { Logic::One },
        |i| if i % 5 == 0 { Logic::Z } else { Logic::Zero },
    ];
    for &w in &[1usize, 2, 63, 64, 65, 127, 128, 129, 191, 192, 193, 200] {
        for make_a in patterns {
            for make_b in patterns {
                let a: Bits = (0..w).map(make_a).collect();
                let b: Bits = (0..w).map(make_b).collect();
                let (pa, pb) = (lv(&a), lv(&b));
                assert_eq!(unpack(&pa.add(&pb)), ref_add(&a, &b), "add w={w}");
                assert_eq!(unpack(&pa.sub(&pb)), ref_sub(&a, &b), "sub w={w}");
                assert_eq!(
                    unpack(&pa.and(&pb)),
                    ref_bitwise(&a, &b, Logic::and),
                    "and w={w}"
                );
                assert_eq!(
                    unpack(&pa.xor(&pb)),
                    ref_bitwise(&a, &b, Logic::xor),
                    "xor w={w}"
                );
                assert_eq!(pa.case_eq(&pb), ref_case_eq(&a, &b), "case_eq w={w}");
                assert_eq!(pa.value_cmp(&pb), ref_value_cmp(&a, &b), "cmp w={w}");
                assert_eq!(
                    unpack(&pa.shift_left_const(w as u32 / 2)),
                    ref_shl_const(&a, w / 2),
                    "shl w={w}"
                );
                assert_eq!(
                    pa.reduce_and(),
                    ref_reduce(&a, Logic::One, Logic::and),
                    "reduce_and w={w}"
                );
            }
        }
    }
}
