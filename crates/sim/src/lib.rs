//! Event-driven four-state HDL simulator.
//!
//! Executes the elaborated [`aivril_hdl::ir::Design`] shared by the
//! Verilog and VHDL frontends, providing the *functional verification*
//! substrate of the AIVRIL2 reproduction (the role Vivado `xsim` plays in
//! the paper).
//!
//! The kernel implements the classic stratified event queue:
//!
//! 1. **Active region** — runnable processes execute until they suspend
//!    at a `#delay`, an `@(...)` event control, or terminate.
//! 2. **NBA region** — when no process is runnable, pending nonblocking
//!    assignments commit atomically, possibly waking more processes
//!    (a new delta cycle).
//! 3. **Time advance** — when a time step is quiescent, simulation time
//!    jumps to the earliest scheduled wake-up.
//!
//! Runaway protection (per-process instruction budgets, delta-cycle and
//! wall-time limits) matters here more than in an ordinary simulator:
//! the AIVRIL2 loop routinely simulates *LLM-corrupted* RTL, and a
//! mutated loop bound must surface as a diagnosable runtime error rather
//! than a hang.
//!
//! # Example
//!
//! ```
//! use aivril_hdl::ir::*;
//! use aivril_sim::{Simulator, SimConfig};
//!
//! let mut d = Design::new("hello");
//! d.add_process(Process {
//!     name: "main".into(),
//!     kind: ProcessKind::Initial,
//!     body: vec![
//!         Instr::SysCall {
//!             kind: SysTaskKind::Display,
//!             format: Some("hello at %t".into()),
//!             args: vec![Expr::Time],
//!         },
//!         Instr::Halt,
//!     ],
//! });
//! let result = Simulator::new(&d, SimConfig::default()).run();
//! assert!(result.log_text().contains("hello at 0"));
//! ```

#![warn(missing_docs)]

mod bytecode;
mod engine;
mod eval;
mod format;
mod result;
mod sched;
mod vcd;

pub use engine::{KernelPerf, KernelTelemetry, Simulator};
pub use result::{LimitKind, LogLine, SimConfig, SimResult};
