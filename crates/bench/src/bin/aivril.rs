//! `aivril` — command-line front door to the toolchain.
//!
//! ```text
//! aivril compile  <files...>            # xvlog/xvhdl + xelab style check
//! aivril simulate <files...> [--top T] [--vcd out.vcd]
//! aivril suite list                     # the 156 benchmark problems
//! aivril suite show <name> [--vhdl]     # spec + golden + testbench
//! ```
//!
//! Exit code 0 on success (clean compile / passing simulation), 1 on
//! errors — so the binary slots into scripts and CI like the real tools.

use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  aivril compile <files...>\n  aivril simulate <files...> [--top T] [--vcd out.vcd]\n  aivril suite list\n  aivril suite show <name> [--vhdl]"
    );
    ExitCode::FAILURE
}

fn read_files(paths: &[String]) -> Result<Vec<HdlFile>, ExitCode> {
    let mut files = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(text) => files.push(HdlFile::new(p.clone(), text)),
            Err(e) => {
                eprintln!("error: cannot read {p}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    if files.is_empty() {
        eprintln!("error: no input files");
        return Err(ExitCode::FAILURE);
    }
    Ok(files)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        return usage();
    };
    let tools = XsimToolSuite::new();
    match command {
        "compile" => {
            let files = match read_files(&args[1..]) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let report = tools.compile(&files);
            print!("{}", report.log);
            if report.success {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "simulate" => {
            let mut paths = Vec::new();
            let mut top: Option<String> = None;
            let mut vcd_out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--top" => top = it.next().cloned(),
                    "--vcd" => vcd_out = it.next().cloned(),
                    _ => paths.push(a.clone()),
                }
            }
            let files = match read_files(&paths) {
                Ok(f) => f,
                Err(code) => return code,
            };
            let (report, waves) = tools.simulate_with_waves(&files, top.as_deref());
            print!("{}", report.log);
            if let (Some(path), Some(vcd)) = (vcd_out, waves) {
                match std::fs::write(&path, vcd) {
                    Ok(()) => eprintln!("waveform written to {path}"),
                    Err(e) => eprintln!("error: cannot write {path}: {e}"),
                }
            }
            if report.passed {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "suite" => match args.get(1).map(String::as_str) {
            Some("list") => {
                for p in aivril_verilogeval::suite() {
                    println!(
                        "{:<34} {:<16} {:?}",
                        p.name,
                        p.family.to_string(),
                        p.difficulty
                    );
                }
                ExitCode::SUCCESS
            }
            Some("show") => {
                let Some(name) = args.get(2) else {
                    return usage();
                };
                let vhdl = args.iter().any(|a| a == "--vhdl");
                let problems = aivril_verilogeval::suite();
                let Some(p) = problems.iter().find(|p| &p.name == name) else {
                    eprintln!("error: unknown problem '{name}' (try `aivril suite list`)");
                    return ExitCode::FAILURE;
                };
                let golden = p.golden(!vhdl);
                println!("=== spec ===\n{}", p.spec);
                println!("=== golden DUT ===\n{}", golden.dut);
                println!("=== reference testbench ===\n{}", golden.tb);
                ExitCode::SUCCESS
            }
            _ => usage(),
        },
        _ => usage(),
    }
}
