//! Abstract syntax tree for the Verilog-2001 subset.

use aivril_hdl::source::Span;
use std::sync::Arc;

/// A parsed compilation unit (one or more source files).
///
/// Modules are `Arc`-shared so per-file parse results can be memoized
/// (the EDA parse cache) and stitched into fresh units without cloning
/// the AST bodies.
#[derive(Debug, Clone, Default)]
pub struct SourceUnit {
    /// All module definitions in parse order.
    pub modules: Vec<Arc<Module>>,
}

/// A `module ... endmodule` definition.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Location of the header.
    pub span: Span,
    /// `#(parameter ...)` header parameters, plus body `parameter` items.
    pub params: Vec<ParamDecl>,
    /// ANSI-style port declarations (empty for non-ANSI headers).
    pub ports: Vec<Port>,
    /// Non-ANSI header port names (`module m(a, b);`), in port order;
    /// their directions come from body [`Item::PortDecl`] items.
    pub nonansi_ports: Vec<(String, Span)>,
    /// Module body items.
    pub items: Vec<Item>,
}

/// One parameter declaration with its default expression.
#[derive(Debug, Clone)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Default value (a constant expression).
    pub default: Expr,
    /// Declaration location.
    pub span: Span,
    /// `true` for `localparam` (not overridable at instantiation).
    pub local: bool,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `input`
    Input,
    /// `output`
    Output,
    /// `inout` (accepted, treated as unsupported at elaboration)
    Inout,
}

/// Declared net discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetType {
    /// `wire` (default for ports)
    Wire,
    /// `reg`
    Reg,
}

/// An ANSI port declaration.
#[derive(Debug, Clone)]
pub struct Port {
    /// Direction.
    pub dir: PortDir,
    /// Discipline (`output reg q` vs `output q`).
    pub net_type: NetType,
    /// Optional `[msb:lsb]` range (constant expressions).
    pub range: Option<(Expr, Expr)>,
    /// Port name.
    pub name: String,
    /// Location.
    pub span: Span,
}

/// A module body item.
#[derive(Debug, Clone)]
pub enum Item {
    /// `wire`/`reg` declaration (possibly multiple names).
    NetDecl {
        /// Discipline.
        net_type: NetType,
        /// Optional `[msb:lsb]` range.
        range: Option<(Expr, Expr)>,
        /// Declared names with optional initialisers (`reg q = 0;`).
        names: Vec<(String, Span, Option<Expr>)>,
    },
    /// Memory declaration: `reg [7:0] name [0:15];`
    MemDecl {
        /// Element `[msb:lsb]` range (element width).
        width_range: Option<(Expr, Expr)>,
        /// Declared memories.
        names: Vec<MemName>,
    },
    /// `integer` declaration — elaborated as a 32-bit `reg`.
    IntegerDecl {
        /// Declared names.
        names: Vec<(String, Span)>,
    },
    /// Body port-direction declaration for a non-ANSI header
    /// (`input [3:0] a;` / `output reg q;`).
    PortDecl {
        /// Direction.
        dir: PortDir,
        /// Discipline (`output reg q`).
        net_type: NetType,
        /// Optional `[msb:lsb]` range.
        range: Option<(Expr, Expr)>,
        /// Declared names.
        names: Vec<(String, Span)>,
    },
    /// Body `parameter`/`localparam`.
    Param(ParamDecl),
    /// `assign target = expr;`
    ContinuousAssign {
        /// Target expression (must elaborate to an l-value).
        target: Expr,
        /// Source expression.
        expr: Expr,
        /// Location.
        span: Span,
    },
    /// `always ...`
    Always {
        /// Sensitivity: `Some(events)` for `@(...)`, `None` when the body
        /// paces itself with delays (`always #5 clk = ~clk;`), and
        /// `Some(empty)` for `@*`.
        events: Option<Vec<EventExpr>>,
        /// Body statement.
        body: Stmt,
        /// Location.
        span: Span,
    },
    /// `initial ...`
    Initial {
        /// Body statement.
        body: Stmt,
        /// Location.
        span: Span,
    },
    /// `function [range] name; input decls...; body endfunction`
    Function(FunctionDecl),
    /// Module instantiation.
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name.
        name: String,
        /// `#(.P(expr))` parameter overrides.
        param_overrides: Vec<(String, Expr)>,
        /// Port connections.
        connections: Connections,
        /// Location.
        span: Span,
    },
}

/// One declared memory: `(name, (bound_a, bound_b), span)`.
pub type MemName = (String, (Expr, Expr), Span);

/// One function input argument: `(name, range, span)`.
pub type FunctionInput = (String, Option<(Expr, Expr)>, Span);

/// A module-level function declaration.
#[derive(Debug, Clone)]
pub struct FunctionDecl {
    /// Function name (doubles as the return variable inside the body).
    pub name: String,
    /// Optional return `[msb:lsb]` range (1 bit when absent).
    pub range: Option<(Expr, Expr)>,
    /// Input arguments in declaration order.
    pub inputs: Vec<FunctionInput>,
    /// Body statement.
    pub body: Stmt,
    /// Location.
    pub span: Span,
}

/// Port connection style at an instantiation.
#[derive(Debug, Clone)]
pub enum Connections {
    /// `.port(expr)` pairs; `expr` of `None` means explicitly open.
    Named(Vec<(String, Option<Expr>, Span)>),
    /// Positional expressions.
    Positional(Vec<Expr>),
}

/// One entry of an `@(...)` event list.
#[derive(Debug, Clone)]
pub enum EventExpr {
    /// `posedge sig`
    Posedge(Expr),
    /// `negedge sig`
    Negedge(Expr),
    /// plain `sig`
    Any(Expr),
}

/// A behavioural statement.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `target = expr;`
    Blocking {
        /// Assignment target.
        target: Expr,
        /// Value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `target <= expr;`
    Nonblocking {
        /// Assignment target.
        target: Expr,
        /// Value.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `case`/`casez`/`casex`
    Case {
        /// Scrutinee.
        subject: Expr,
        /// `(labels, body)` arms in source order.
        arms: Vec<(Vec<Expr>, Stmt)>,
        /// `default:` body.
        default: Option<Box<Stmt>>,
        /// `true` for `casez`/`casex` (don't-care matching).
        wildcard: bool,
        /// Location.
        span: Span,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init assignment `(target, value)`.
        init: (Expr, Expr),
        /// Loop condition.
        cond: Expr,
        /// Step assignment `(target, value)`.
        step: (Expr, Expr),
        /// Body.
        body: Box<Stmt>,
    },
    /// `while (cond) body`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `repeat (count) body`
    Repeat {
        /// Iteration count.
        count: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `forever body`
    Forever {
        /// Body.
        body: Box<Stmt>,
    },
    /// `#amount [stmt]`
    Delay {
        /// Delay amount.
        amount: Expr,
        /// Optional controlled statement.
        then: Option<Box<Stmt>>,
    },
    /// `@(events) [stmt]`
    EventControl {
        /// Events.
        events: Vec<EventExpr>,
        /// Optional controlled statement.
        then: Option<Box<Stmt>>,
    },
    /// `wait (cond) [stmt]` — level-sensitive wait.
    WaitCond {
        /// Condition to wait for.
        cond: Expr,
        /// Optional controlled statement.
        then: Option<Box<Stmt>>,
    },
    /// `$task(args);`
    SysCall {
        /// Task name including `$`.
        name: String,
        /// Arguments (strings or expressions).
        args: Vec<SysArg>,
        /// Location.
        span: Span,
    },
    /// `;`
    Null,
}

/// A system-task argument.
#[derive(Debug, Clone)]
pub enum SysArg {
    /// String literal (typically the format).
    Str(String),
    /// Expression argument.
    Expr(Expr),
}

/// An expression with location info on the leaves that need it.
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal text (e.g. `8'hFF`), value-parsed at elaboration.
    Number {
        /// Literal text as written.
        text: String,
        /// Location.
        span: Span,
    },
    /// Identifier reference.
    Ident {
        /// Name.
        name: String,
        /// Location.
        span: Span,
    },
    /// `base[index]`
    Index {
        /// Indexed identifier.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `base[msb:lsb]` (constant bounds).
    RangeSel {
        /// Selected identifier.
        base: Box<Expr>,
        /// MSB bound.
        msb: Box<Expr>,
        /// LSB bound.
        lsb: Box<Expr>,
    },
    /// Unary operator application.
    Unary {
        /// Operator text (`~`, `!`, `-`, `&`, `|`, `^`, `~&`, `~|`, `~^`).
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// True arm.
        then: Box<Expr>,
        /// False arm.
        els: Box<Expr>,
    },
    /// `{a, b, ...}`
    Concat(Vec<Expr>),
    /// `{n{v}}`
    Repeat {
        /// Replication count (constant).
        count: Box<Expr>,
        /// Replicated value.
        value: Box<Expr>,
    },
    /// `$time`
    Time {
        /// Location.
        span: Span,
    },
    /// `f(arg, ...)` — a function call, inlined at elaboration.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
}

impl Expr {
    /// The span of this expression's leftmost leaf (best-effort anchor
    /// for diagnostics).
    #[must_use]
    pub fn span(&self) -> Option<Span> {
        match self {
            Expr::Number { span, .. } | Expr::Ident { span, .. } | Expr::Time { span } => {
                Some(*span)
            }
            Expr::Index { base, .. } | Expr::RangeSel { base, .. } => base.span(),
            Expr::Unary { operand, .. } => operand.span(),
            Expr::Binary { lhs, .. } => lhs.span(),
            Expr::Ternary { cond, .. } => cond.span(),
            Expr::Concat(parts) => parts.first().and_then(Expr::span),
            Expr::Repeat { count, .. } => count.span(),
            Expr::Call { span, .. } => Some(*span),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    Not,
    LogicalNot,
    Negate,
    Plus,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    ReduceNand,
    ReduceNor,
    ReduceXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Xor,
    Xnor,
    LogicalAnd,
    LogicalOr,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Pow,
    Shl,
    Shr,
    Eq,
    Ne,
    CaseEq,
    CaseNe,
    Lt,
    Le,
    Gt,
    Ge,
}
