//! Integration suite for the job service: determinism across
//! submission orderings and worker counts (the ISSUE's acceptance
//! property), bounded-queue overload behaviour, per-tenant breaker
//! isolation, and the TCP protocol end to end.

use aivril_bench::Flow;
use aivril_llm::FaultConfig;
use aivril_serve::{Admission, FrameSink, ServeConfig, Server, SubmitRequest};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

fn small_config() -> ServeConfig {
    let (mut config, warnings) = ServeConfig::from_vars_checked(|_| None);
    assert!(warnings.is_empty(), "{warnings:?}");
    config.harness.task_limit = 4;
    config
}

fn collect_sink() -> (FrameSink, Arc<Mutex<Vec<String>>>) {
    let frames = Arc::new(Mutex::new(Vec::new()));
    let sink_frames = Arc::clone(&frames);
    let sink: FrameSink = Arc::new(move |f: &str| {
        sink_frames
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(f.to_string());
    });
    (sink, frames)
}

fn spec(tenant: &str, job: &str, task: &str) -> SubmitRequest {
    SubmitRequest {
        tenant: tenant.to_string(),
        job: job.to_string(),
        task: task.to_string(),
        verilog: true,
        flow: Flow::Aivril2,
    }
}

/// The fixed job mix the determinism property permutes: two tenants,
/// three jobs each, over the first four suite problems.
fn job_mix() -> Vec<SubmitRequest> {
    vec![
        spec("acme", "a1", "prob000_and2"),
        spec("acme", "a2", "prob001_or2"),
        spec("acme", "a3", "prob002_xor2"),
        spec("globex", "g1", "prob000_and2"),
        spec("globex", "g2", "prob003_nand2"),
        spec("globex", "g3", "prob001_or2"),
    ]
}

/// Submits `order`-permuted jobs to a fresh server, executes them on
/// `workers` threads (0 = drain serially on this thread), and returns
/// each job's frame stream keyed by `tenant/job`.
fn run_mix(order: &[usize], workers: usize) -> BTreeMap<String, Vec<String>> {
    let mix = job_mix();
    let server = Arc::new(Server::new(small_config()));
    let mut collectors = Vec::new();
    for &i in order {
        let (sink, frames) = collect_sink();
        let s = mix[i].clone();
        let key = format!("{}/{}", s.tenant, s.job);
        let verdict = server.submit(s, sink).expect("known task");
        assert!(
            matches!(verdict, Admission::Accepted { .. }),
            "mix fits default capacity: {verdict:?}"
        );
        collectors.push((key, frames));
    }
    if workers == 0 {
        server.drain();
    } else {
        let handles = server.spawn_workers(workers);
        server.finish();
        for h in handles {
            h.join().expect("worker thread");
        }
    }
    collectors
        .into_iter()
        .map(|(key, frames)| {
            let g = frames.lock().unwrap_or_else(PoisonError::into_inner);
            (key, g.clone())
        })
        .collect()
}

/// Serial single-threaded reference streams, computed once.
fn baseline() -> &'static BTreeMap<String, Vec<String>> {
    static BASELINE: OnceLock<BTreeMap<String, Vec<String>>> = OnceLock::new();
    BASELINE.get_or_init(|| run_mix(&[0, 1, 2, 3, 4, 5], 0))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]
    #[test]
    fn frames_are_byte_identical_across_interleavings(
        priorities in proptest::collection::vec(0u64..1_000_000, 6),
        workers in 1usize..=3,
    ) {
        // Order the six jobs by random priority: a submission-order
        // permutation, executed on 1..=3 workers.
        let mut order: Vec<usize> = (0..6).collect();
        order.sort_by_key(|&i| priorities[i]);
        let got = run_mix(&order, workers);
        let want = baseline();
        prop_assert_eq!(got.len(), want.len());
        for (key, frames) in &got {
            let reference = &want[key];
            prop_assert!(
                frames == reference,
                "job {} diverged under order {:?} x {} workers:\n got: {:#?}\nwant: {:#?}",
                key, order, workers, frames, reference
            );
        }
    }
}

#[test]
fn overload_rejects_structurally_and_never_queues_unbounded() {
    let mut config = small_config();
    config.max_inflight = 1;
    config.max_queue = 1;
    let server = Server::new(config);
    let mut accepted = 0;
    let mut reject_frames = Vec::new();
    for i in 0..4 {
        let (sink, frames) = collect_sink();
        let verdict = server
            .submit(spec("storm", &format!("s{i}"), "prob000_and2"), sink)
            .expect("known task");
        match verdict {
            Admission::Accepted { .. } => accepted += 1,
            Admission::Attached { .. } => panic!("distinct job ids never attach"),
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "queue_full");
                assert!(retry_after_s > 0.0, "retry hint must be positive");
                let g = frames.lock().unwrap();
                assert_eq!(g.len(), 1, "a rejected job gets exactly its reject frame");
                assert!(g[0].contains("\"type\":\"reject\""), "{}", g[0]);
                assert!(g[0].contains("\"retry_after_s\":"), "{}", g[0]);
                reject_frames.push(g[0].clone());
            }
        }
    }
    assert_eq!(accepted, 2, "capacity = max_inflight + max_queue = 2");
    assert_eq!(reject_frames.len(), 2);
    let stats = server.queue().stats();
    assert_eq!(stats.queued, 2, "queue is bounded at capacity");
    assert_eq!(stats.rejected, 2);
    // The admitted jobs still complete normally after the storm.
    server.drain();
    assert_eq!(server.queue().stats().completed, 2);
}

#[test]
fn fault_storms_open_only_the_noisy_tenants_breaker() {
    let mut config = small_config();
    config.harness.faults = FaultConfig::parse("timeout=1.0").expect("valid plan");
    config.harness.pipeline.resilience.breaker_threshold = 2;
    let server = Server::new(config);
    // Two noisy jobs fail (every LLM call faults -> degraded runs) and
    // feed the tenant's admission breaker past its threshold.
    for id in ["n1", "n2"] {
        let (sink, _frames) = collect_sink();
        let verdict = server
            .submit(spec("noisy", id, "prob000_and2"), sink)
            .expect("known task");
        assert!(matches!(verdict, Admission::Accepted { .. }));
        server.drain();
    }
    assert!(
        server.queue().breaker_opens("noisy") >= 1,
        "two degraded completions open the tenant breaker"
    );
    let (sink, frames) = collect_sink();
    match server
        .submit(spec("noisy", "n3", "prob000_and2"), sink)
        .expect("known task")
    {
        Admission::Rejected {
            reason,
            retry_after_s,
        } => {
            assert_eq!(reason, "breaker_open");
            assert!(retry_after_s > 0.0);
            let g = frames.lock().unwrap();
            assert!(g[0].contains("breaker_open"), "{:?}", *g);
        }
        other => panic!("noisy tenant should be refused, got {other:?}"),
    }
    // The quiet tenant is admitted as if nothing happened.
    let (sink, _frames) = collect_sink();
    let verdict = server
        .submit(spec("quiet", "q1", "prob000_and2"), sink)
        .expect("known task");
    assert!(
        matches!(verdict, Admission::Accepted { .. }),
        "one tenant's storm must not trip another's breaker: {verdict:?}"
    );
    assert_eq!(server.queue().breaker_opens("quiet"), 0);
}

/// Drives one connection: submits `job` and returns the transcript
/// (ack/progress/result lines) once the terminal frame arrives.
fn submit_over_tcp(addr: std::net::SocketAddr, tenant: &str, job: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello");
    assert!(line.contains("\"type\":\"hello\""), "{line}");
    writeln!(
        stream,
        "{{\"type\":\"submit\",\"tenant\":\"{tenant}\",\"job\":\"{job}\",\
         \"task\":\"prob001_or2\"}}"
    )
    .expect("submit");
    let mut transcript = Vec::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("frame"), 0, "early EOF");
        let line = line.trim_end().to_string();
        assert!(
            !line.contains("\"type\":\"error\""),
            "unexpected error frame: {line}"
        );
        let terminal = line.contains("\"type\":\"result\"");
        transcript.push(line);
        if terminal {
            return transcript;
        }
    }
}

#[test]
fn tcp_end_to_end_with_byte_identical_replay() {
    let mut config = small_config();
    config.addr = "127.0.0.1:0".to_string();
    let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
    let addr = listener.local_addr().expect("bound");
    let server = Arc::new(Server::new(config));
    let workers = server.spawn_workers(2);
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(&listener))
    };

    // Liveness.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("hello");
        writeln!(stream, "{{\"type\":\"ping\"}}").expect("ping");
        line.clear();
        reader.read_line(&mut line).expect("pong");
        assert!(line.contains("\"type\":\"pong\""), "{line}");
        writeln!(stream, "not json").expect("garbage");
        line.clear();
        reader.read_line(&mut line).expect("error");
        assert!(line.contains("\"type\":\"error\""), "{line}");
    }

    // A job over TCP, then the same job replayed on a new connection:
    // the transcripts must match byte for byte.
    let first = submit_over_tcp(addr, "acme", "replay-1");
    assert!(first[0].contains("\"type\":\"ack\""), "{}", first[0]);
    assert!(first.len() > 2, "expected progress frames: {first:?}");
    let second = submit_over_tcp(addr, "acme", "replay-1");
    assert_eq!(first, second, "replay over TCP must be byte-identical");

    // Stats then protocol-level shutdown.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("hello");
        writeln!(stream, "{{\"type\":\"stats\"}}").expect("stats");
        line.clear();
        reader.read_line(&mut line).expect("stats frame");
        assert!(line.contains("\"type\":\"stats\""), "{line}");
        assert!(line.contains("\"completed\":2"), "{line}");
        writeln!(stream, "{{\"type\":\"shutdown\"}}").expect("shutdown");
        line.clear();
        reader.read_line(&mut line).expect("bye");
        assert!(line.contains("\"type\":\"bye\""), "{line}");
    }

    accept.join().expect("accept loop exits after shutdown");
    for h in workers {
        h.join().expect("workers exit after drain");
    }
    assert!(server.queue().is_shutdown());
}

/// Reads server frames from `reader` until the predicate matches,
/// returning every line read (trimmed).
fn read_until(reader: &mut BufReader<TcpStream>, stop: impl Fn(&str) -> bool) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert_ne!(reader.read_line(&mut line).expect("frame"), 0, "early EOF");
        let line = line.trim_end().to_string();
        let done = stop(&line);
        lines.push(line);
        if done {
            return lines;
        }
    }
}

/// A client that submits, loses its connection, reconnects and
/// resubmits the same job id must end up with one execution and the
/// same bytes an uninterrupted client would have seen.
#[test]
fn reconnected_client_resubmits_into_one_execution() {
    // Uninterrupted reference transcript for the same identity.
    let reference = {
        let mut config = small_config();
        config.addr = "127.0.0.1:0".to_string();
        let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
        let addr = listener.local_addr().expect("bound");
        let server = Arc::new(Server::new(config));
        let workers = server.spawn_workers(1);
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(&listener))
        };
        let transcript = submit_over_tcp(addr, "acme", "rc-1");
        server.finish();
        server.request_stop();
        accept.join().expect("accept loop");
        for h in workers {
            h.join().expect("worker");
        }
        transcript
    };

    // The interrupted scenario: no workers yet, so the job is still
    // admitted-but-unfinished when the first connection dies.
    let mut config = small_config();
    config.addr = "127.0.0.1:0".to_string();
    let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
    let addr = listener.local_addr().expect("bound");
    let server = Arc::new(Server::new(config));
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(&listener))
    };
    let submit_line = "{\"type\":\"submit\",\"tenant\":\"acme\",\"job\":\"rc-1\",\
         \"task\":\"prob001_or2\"}";
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        read_until(&mut reader, |l| l.contains("\"type\":\"hello\""));
        writeln!(stream, "{submit_line}").expect("submit");
        let ack = read_until(&mut reader, |l| l.contains("\"type\":\"ack\""));
        assert_eq!(ack.last().unwrap(), &reference[0], "same ack bytes");
        // Connection drops here with the job still queued.
    }
    assert_eq!(server.queue().active_jobs(), 1, "job survives the drop");

    // Reconnect and resubmit the same id: the submission attaches to
    // the queued job instead of admitting a second execution.
    let mut stream = TcpStream::connect(addr).expect("reconnect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    read_until(&mut reader, |l| l.contains("\"type\":\"hello\""));
    writeln!(stream, "{submit_line}").expect("resubmit");
    let ack = read_until(&mut reader, |l| l.contains("\"type\":\"ack\""));
    // Now let the job run; its frames land on the new connection.
    server.drain();
    let frames = read_until(&mut reader, |l| l.contains("\"type\":\"result\""));
    let mut transcript = vec![ack.last().unwrap().clone()];
    transcript.extend(frames);
    assert_eq!(transcript, reference, "reconnected transcript matches");
    assert_eq!(server.executions(), 1, "exactly one execution");

    server.finish();
    server.request_stop();
    accept.join().expect("accept loop");
}

/// Killing a journaled server with admitted-but-unfinished jobs and
/// restarting over the same journal directory completes those jobs
/// with frames byte-identical to an uninterrupted run.
#[test]
fn killed_journaled_server_recovers_jobs_byte_identically() {
    let dir = std::env::temp_dir().join(format!("aivril-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Uninterrupted reference (journal-free server, same identity).
    let reference = {
        let mut config = small_config();
        config.addr = "127.0.0.1:0".to_string();
        let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
        let addr = listener.local_addr().expect("bound");
        let server = Arc::new(Server::new(config));
        let workers = server.spawn_workers(1);
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(&listener))
        };
        let transcript = submit_over_tcp(addr, "acme", "crashy-1");
        server.finish();
        server.request_stop();
        accept.join().expect("accept loop");
        for h in workers {
            h.join().expect("worker");
        }
        transcript
    };

    let journal_config = |dir: &std::path::Path| {
        let mut config = small_config();
        config.addr = "127.0.0.1:0".to_string();
        config.journal_dir = Some(dir.display().to_string());
        config
    };

    // Phase 1: admit over a real socket, then die without executing —
    // no workers ever run, so the admitted job is unfinished when the
    // process state is dropped. Only the journal survives.
    {
        let config = journal_config(&dir);
        let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
        let addr = listener.local_addr().expect("bound");
        let server = Arc::new(Server::new(config));
        let accept = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.serve(&listener))
        };
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        read_until(&mut reader, |l| l.contains("\"type\":\"hello\""));
        writeln!(
            stream,
            "{{\"type\":\"submit\",\"tenant\":\"acme\",\"job\":\"crashy-1\",\
             \"task\":\"prob001_or2\"}}"
        )
        .expect("submit");
        read_until(&mut reader, |l| l.contains("\"type\":\"ack\""));
        assert_eq!(server.executions(), 0, "no worker ran the job");
        server.request_stop();
        accept.join().expect("accept loop");
    }

    // Phase 2: a fresh server over the same journal recovers the job,
    // completes it, and serves the reconnecting client the full
    // transcript from the replay memo.
    let config = journal_config(&dir);
    let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
    let addr = listener.local_addr().expect("bound");
    let server = Arc::new(Server::new(config));
    assert_eq!(server.recover(), 1, "one journaled job re-admitted");
    let workers = server.spawn_workers(1);
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(&listener))
    };
    // Wait for the recovered job to finish before the client returns.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while server.queue().stats().completed < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "recovered job never completed: {:?}",
            server.queue().stats()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let replayed = submit_over_tcp(addr, "acme", "crashy-1");
    assert_eq!(replayed, reference, "recovered run is byte-identical");
    assert_eq!(server.executions(), 1, "recovery executed the job once");

    server.finish();
    server.request_stop();
    accept.join().expect("accept loop");
    for h in workers {
        h.join().expect("worker");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stalled_client_does_not_block_other_tenants() {
    let mut config = small_config();
    config.addr = "127.0.0.1:0".to_string();
    // Short write timeout so a genuinely wedged socket is condemned
    // quickly; the outbox cap stays at its default — it must exceed a
    // single job's frame burst, since a whole transcript is pushed at
    // completion faster than the writer can drain it.
    config.send_timeout_s = 0.5;
    let listener = TcpListener::bind(&config.addr).expect("bind ephemeral");
    let addr = listener.local_addr().expect("bound");
    let server = Arc::new(Server::new(config));
    let workers = server.spawn_workers(2);
    let accept = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(&listener))
    };

    // Client A submits a job and then never reads a byte — not even
    // the hello. Its frames pile into the outbox and kernel buffers;
    // no admission or worker thread may block on its socket.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    writeln!(
        stalled,
        "{{\"type\":\"submit\",\"tenant\":\"stall\",\"job\":\"s1\",\
         \"task\":\"prob000_and2\"}}"
    )
    .expect("submit");

    // Client B is served a complete transcript while A stalls.
    let transcript = submit_over_tcp(addr, "brisk", "b1");
    assert!(
        transcript[0].contains("\"type\":\"ack\""),
        "{}",
        transcript[0]
    );

    // A's job runs to completion even though nobody reads its frames.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    while server.queue().stats().completed < 2 {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled client's job never completed: {:?}",
            server.queue().stats()
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The stalled socket must not wedge shutdown either.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("hello");
        writeln!(stream, "{{\"type\":\"shutdown\"}}").expect("shutdown");
        line.clear();
        reader.read_line(&mut line).expect("bye");
        assert!(line.contains("\"type\":\"bye\""), "{line}");
    }
    drop(stalled);
    accept.join().expect("accept loop exits after shutdown");
    for h in workers {
        h.join().expect("workers exit after drain");
    }
}
