//! The deterministic fault-injecting model simulator.

use crate::chat::{estimate_tokens, ChatRequest, ChatResponse, Role, TokenUsage};
use crate::faults::{BackendFault, FaultConfig, LlmError};
use crate::mutate::{
    apply_all, count_occurrences, functional_templates, syntax_templates, AppliedFault, Dialect,
    FaultKind,
};
use crate::profiles::{LangProfile, ModelProfile};
use crate::task::TaskLibrary;
use crate::LanguageModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Prompt-protocol markers shared between the agents (which write
/// prompts) and the simulated models (which read them). Real models
/// would not need these to be exact, but determinism does.
pub mod protocol {
    /// Prefix of the line naming the benchmark task.
    pub const TASK_PREFIX: &str = "Design task:";
    /// Prefix of the line naming the target language.
    pub const LANG_PREFIX: &str = "Target language:";
    /// Generation request for the testbench (testbench-first flow).
    pub const REQ_TB: &str = "Write a comprehensive, self-checking testbench";
    /// Generation request for the RTL implementation.
    pub const REQ_RTL: &str = "Write the RTL module";
    /// Substring present in every Review Agent corrective prompt.
    pub const SYNTAX_MARKER: &str = "syntax error";
    /// Substring present in every Verification Agent corrective prompt.
    pub const FUNC_MARKER: &str = "failing test case";
    /// Substring marking a *detailed* corrective prompt (locations and
    /// snippets included). Terse correctives repair half as fast.
    pub const DETAIL_MARKER: &str = "offending line";
    /// Substring marking a detailed functional corrective (per-case
    /// failure list included).
    pub const FUNC_DETAIL_MARKER: &str = "- Test Case";
}

/// Which artefact a generation/corrective exchange concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Artifact {
    Testbench,
    Rtl,
}

/// A deterministic simulated LLM.
///
/// See the crate docs for why this is a sound substitute for hosted
/// models in this reproduction. Construct per model via
/// [`crate::profiles`]; determinism is per `(model, task, seed)`.
#[derive(Debug, Clone)]
pub struct SimLlm {
    profile: ModelProfile,
    library: Arc<TaskLibrary>,
    recorder: aivril_obs::Recorder,
    faults: FaultConfig,
}

impl SimLlm {
    /// Creates a simulated model with `profile` behaviour and `library`
    /// knowledge. The library is held behind an [`Arc`] so model
    /// instances sharing one knowledge base (e.g. the parallel
    /// evaluation workers) clone a pointer, not the golden sources;
    /// passing a plain [`TaskLibrary`] still works.
    #[must_use]
    pub fn new(profile: ModelProfile, library: impl Into<Arc<TaskLibrary>>) -> SimLlm {
        SimLlm {
            profile,
            library: library.into(),
            recorder: aivril_obs::Recorder::disabled(),
            faults: FaultConfig::off(),
        }
    }

    /// Enables deterministic backend-fault injection (see
    /// [`FaultConfig`]). With the default all-zero config every code
    /// path is byte-identical to a fault-free model.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> SimLlm {
        self.faults = faults;
        self
    }

    /// Attaches an observability recorder: every [`SimLlm::chat`] call
    /// emits an `llm.chat` span (tokens, latency, request kind) and
    /// advances the modeled clock by its latency. Disabled by default.
    #[must_use]
    pub fn with_recorder(mut self, recorder: aivril_obs::Recorder) -> SimLlm {
        self.recorder = recorder;
        self
    }

    /// The behaviour profile.
    #[must_use]
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    fn rng(&self, task: &str, seed: u64, tag: &str) -> StdRng {
        let mut h = DefaultHasher::new();
        self.profile.name.hash(&mut h);
        task.hash(&mut h);
        seed.hash(&mut h);
        tag.hash(&mut h);
        StdRng::seed_from_u64(h.finish())
    }

    /// Samples `1 + Geometric(p)`: the corrective round at which a fault
    /// gets fixed. Capped so a zero/low `p` cannot loop unboundedly.
    fn repair_round(rng: &mut StdRng, p: f64) -> u32 {
        let mut round = 1;
        while round < 64 {
            if rng.gen_bool(p.clamp(0.001, 0.999)) {
                return round;
            }
            round += 1;
        }
        round
    }

    /// Chooses `count` faults of `kind` applicable to `golden`.
    fn pick_faults(
        rng: &mut StdRng,
        golden: &str,
        dialect: Dialect,
        kind: FaultKind,
        count: u32,
    ) -> Vec<AppliedFault> {
        let templates = match kind {
            FaultKind::Syntax => syntax_templates(dialect),
            FaultKind::Functional => functional_templates(dialect),
        };
        let applicable: Vec<_> = templates
            .iter()
            .filter(|t| count_occurrences(golden, t.pattern) > 0)
            .collect();
        if applicable.is_empty() {
            return Vec::new();
        }
        let mut out: Vec<AppliedFault> = Vec::new();
        for _ in 0..count {
            let t = applicable[rng.gen_range(0..applicable.len())];
            let occ = rng.gen_range(0..count_occurrences(golden, t.pattern));
            let fault = AppliedFault {
                template: t.clone(),
                occurrence: occ,
                kind,
            };
            // Applying the identical corruption twice would cancel out
            // (e.g. a double selector inversion); keep each site once.
            if !out.contains(&fault) {
                out.push(fault);
            }
        }
        out
    }

    /// The RTL fault plan for one `(task, seed)` sample: each fault is
    /// paired with the corrective round at which it disappears.
    fn rtl_plan(
        &self,
        task: &str,
        seed: u64,
        golden: &str,
        dialect: Dialect,
        lang: &LangProfile,
        vague_spec: bool,
    ) -> FaultPlan {
        let mut rng = self.rng(task, seed, "rtl");
        let syntax_broken = rng.gen_bool(1.0 - lang.syntax_ok);
        let mut syntax = Vec::new();
        if syntax_broken {
            let k = rng.gen_range(lang.syntax_faults.0..=lang.syntax_faults.1);
            for f in Self::pick_faults(&mut rng, golden, dialect, FaultKind::Syntax, k) {
                let fixed_at = Self::repair_round(&mut rng, lang.syntax_repair);
                syntax.push((f, fixed_at));
            }
        }
        let func_ok = if syntax_broken {
            lang.func_ok_given_syntax_bad
        } else {
            lang.func_ok_given_syntax_ok
        };
        let mut functional = Vec::new();
        if rng.gen_bool(1.0 - func_ok) {
            let k = rng.gen_range(lang.func_faults.0..=lang.func_faults.1);
            for f in Self::pick_faults(&mut rng, golden, dialect, FaultKind::Functional, k) {
                let fixed_at = Self::repair_round(&mut rng, lang.func_repair);
                functional.push((f, fixed_at));
            }
        }
        // An underspecified prompt forces the model to guess behaviour:
        // extra functional faults that corrective iterations cannot fix
        // (the testbench feedback cannot restore information the prompt
        // never contained).
        if vague_spec {
            let mut vrng = self.rng(task, seed, "vague");
            for f in Self::pick_faults(&mut vrng, golden, dialect, FaultKind::Functional, 2) {
                functional.push((f, u32::MAX));
            }
        }
        // Reintroduction schedule for the syntax loop: at round j a fresh
        // syntax fault may appear, fixed some rounds later.
        let mut reintroduced = Vec::new();
        let mut reintro_rng = self.rng(task, seed, "reintro");
        for round in 1..=8u32 {
            if reintro_rng.gen_bool(lang.reintroduce.clamp(0.0, 0.5)) {
                if let Some(f) =
                    Self::pick_faults(&mut reintro_rng, golden, dialect, FaultKind::Syntax, 1).pop()
                {
                    let fixed_at = round + Self::repair_round(&mut reintro_rng, lang.syntax_repair);
                    reintroduced.push((f, round, fixed_at));
                }
            }
        }
        FaultPlan {
            syntax,
            functional,
            reintroduced,
        }
    }

    /// The testbench fault plan (syntax only — the reference stimulus is
    /// assumed behaviourally exhaustive per the testbench-first design).
    fn tb_plan(
        &self,
        task: &str,
        seed: u64,
        golden: &str,
        dialect: Dialect,
        lang: &LangProfile,
    ) -> FaultPlan {
        let mut rng = self.rng(task, seed, "tb");
        let mut syntax = Vec::new();
        if rng.gen_bool(1.0 - lang.tb_syntax_ok) {
            for f in Self::pick_faults(&mut rng, golden, dialect, FaultKind::Syntax, 1) {
                let fixed_at = Self::repair_round(&mut rng, lang.syntax_repair);
                syntax.push((f, fixed_at));
            }
        }
        FaultPlan {
            syntax,
            functional: Vec::new(),
            reintroduced: Vec::new(),
        }
    }
}

/// A sample's faults with their repair schedule.
#[derive(Debug, Clone, Default)]
struct FaultPlan {
    /// (fault, corrective round at which it is fixed)
    syntax: Vec<(AppliedFault, u32)>,
    functional: Vec<(AppliedFault, u32)>,
    /// (fault, round injected, round fixed)
    reintroduced: Vec<(AppliedFault, u32, u32)>,
}

impl FaultPlan {
    /// Faults present after `syntax_rounds` syntax-repair credits and
    /// `func_rounds` functional-repair credits (fractional: terse
    /// correctives earn half a round).
    fn surviving(&self, syntax_rounds: f64, func_rounds: f64) -> Vec<AppliedFault> {
        let mut out = Vec::new();
        for (f, fixed_at) in &self.syntax {
            if f64::from(*fixed_at) > syntax_rounds {
                out.push(f.clone());
            }
        }
        for (f, injected, fixed_at) in &self.reintroduced {
            if f64::from(*injected) <= syntax_rounds && f64::from(*fixed_at) > syntax_rounds {
                out.push(f.clone());
            }
        }
        for (f, fixed_at) in &self.functional {
            if f64::from(*fixed_at) > func_rounds {
                out.push(f.clone());
            }
        }
        out
    }
}

/// What the conversation asks for, recovered from the message history.
///
/// Corrective rounds are *fractional*: a detailed corrective prompt
/// (line numbers + snippets, marked by [`protocol::DETAIL_MARKER`])
/// earns a full round of repair progress, while a terse one earns half —
/// the mechanism behind the paper's claim that prompt detail minimises
/// iterations (Sec. 3.2).
#[derive(Debug)]
struct View {
    task: Option<String>,
    verilog: bool,
    artifact: Artifact,
    syntax_rounds: f64,
    func_rounds: f64,
    /// `true` when the generation request carries too little
    /// specification text: the model has to guess the behaviour, which
    /// manifests as extra, essentially unrepairable functional faults.
    vague_spec: bool,
}

fn parse_view(request: &ChatRequest) -> View {
    let mut task = None;
    let mut verilog = true;
    for m in &request.messages {
        for line in m.content.lines() {
            if let Some(rest) = line.strip_prefix(protocol::TASK_PREFIX) {
                // Keep the FIRST task line: specifications embedded later
                // in a prompt may carry their own heading.
                if task.is_none() {
                    task = Some(rest.trim().trim_end_matches('.').to_string());
                }
            }
            if let Some(rest) = line.strip_prefix(protocol::LANG_PREFIX) {
                verilog = !rest.to_ascii_lowercase().contains("vhdl");
            }
        }
    }
    // Find the most recent generation request; correctives after it
    // apply to that artefact.
    let mut artifact = Artifact::Rtl;
    let mut gen_index = 0usize;
    let mut vague_spec = false;
    for (i, m) in request.messages.iter().enumerate() {
        if m.role != Role::User {
            continue;
        }
        if m.content.contains(protocol::REQ_TB) || m.content.contains(protocol::REQ_RTL) {
            artifact = if m.content.contains(protocol::REQ_TB) {
                Artifact::Testbench
            } else {
                Artifact::Rtl
            };
            gen_index = i;
            // Crude but effective: a workable requirement needs a couple
            // of sentences of actual specification text (measured between
            // the `Specification:` heading and any attached material).
            let spec_text = m
                .content
                .split_once("Specification:")
                .map(|(_, rest)| rest)
                .unwrap_or(&m.content);
            let spec_text = spec_text
                .split("Reference testbench:")
                .next()
                .unwrap_or(spec_text);
            vague_spec = spec_text.trim().len() < 120;
        }
    }
    let mut syntax_rounds = 0.0;
    let mut func_rounds = 0.0;
    for m in request.messages.iter().skip(gen_index + 1) {
        if m.role != Role::User {
            continue;
        }
        if m.content.contains(protocol::FUNC_MARKER) {
            func_rounds += if m.content.contains(protocol::FUNC_DETAIL_MARKER) {
                1.0
            } else {
                0.5
            };
        } else if m.content.contains(protocol::SYNTAX_MARKER) {
            syntax_rounds += if m.content.contains(protocol::DETAIL_MARKER) {
                1.0
            } else {
                0.5
            };
        }
    }
    View {
        task,
        verilog,
        artifact,
        syntax_rounds,
        func_rounds,
        vague_spec,
    }
}

impl LanguageModel for SimLlm {
    fn name(&self) -> &str {
        &self.profile.name
    }

    fn chat(&mut self, request: &ChatRequest) -> Result<ChatResponse, LlmError> {
        // Backend-fault roll happens before anything else, like a real
        // transport failing before the model ever sees the prompt. With
        // injection off this is a no-op returning `None`.
        let fault = self.faults.roll(&self.profile.name, request);
        if matches!(
            fault,
            Some(BackendFault::Timeout | BackendFault::RateLimited)
        ) {
            let mut frng = self.faults.rng(&self.profile.name, request);
            // First draw reproduces the class decision; the rest
            // parameterise the fault from the same stream.
            let _class: f64 = frng.gen_range(0.0..1.0);
            let err = match fault {
                Some(BackendFault::Timeout) => LlmError::Timeout {
                    elapsed_s: 30.0 + frng.gen_range(0.0..30.0),
                },
                _ => LlmError::RateLimited {
                    retry_after_s: frng.gen_range(1.0..8.0),
                },
            };
            if self.recorder.is_enabled() {
                let span = self.recorder.span("llm.chat");
                self.recorder.advance(err.elapsed_s());
                span.attr_str("model", &self.profile.name);
                span.attr_str("kind", "fault");
                span.attr_str("fault", err.class());
                drop(span);
                self.recorder.counter_add(
                    "resilience_llm_faults_total",
                    &[("class", err.class())],
                    1,
                );
            }
            return Err(err);
        }

        let view = parse_view(request);
        let seed = request.params.seed;
        let dialect = if view.verilog {
            Dialect::Verilog
        } else {
            Dialect::Vhdl
        };
        let lang = self.profile.lang(view.verilog);

        let content = match view.task.as_deref().and_then(|t| self.library.get(t)) {
            None => {
                "I could not identify the design task in the prompt; please restate it.".to_string()
            }
            Some(knowledge) => {
                let task = view.task.as_deref().expect("task present");
                let (golden, label) = match view.artifact {
                    Artifact::Testbench => (knowledge.tb(view.verilog), "testbench"),
                    Artifact::Rtl => (knowledge.dut(view.verilog), "RTL module"),
                };
                let plan = match view.artifact {
                    Artifact::Testbench => self.tb_plan(task, seed, golden, dialect, lang),
                    Artifact::Rtl => {
                        self.rtl_plan(task, seed, golden, dialect, lang, view.vague_spec)
                    }
                };
                let faults = plan.surviving(view.syntax_rounds, view.func_rounds);
                let code = apply_all(golden, &faults);
                let fence = if view.verilog { "verilog" } else { "vhdl" };
                let intro = if view.syntax_rounds + view.func_rounds > 0.0 {
                    format!("I have revised the {label} to address the reported issues.")
                } else {
                    format!("Here is the {label} for the task.")
                };
                match fault {
                    // An empty code block: the fence is there, the code
                    // is not. The corrective loop sees "no top module".
                    Some(BackendFault::Empty) => format!("{intro}\n```{fence}\n```\n"),
                    // The right task in the wrong HDL — a real failure
                    // mode of multilingual models under pressure.
                    Some(BackendFault::WrongLanguage) => {
                        let other = match view.artifact {
                            Artifact::Testbench => knowledge.tb(!view.verilog),
                            Artifact::Rtl => knowledge.dut(!view.verilog),
                        };
                        let other_fence = if view.verilog { "vhdl" } else { "verilog" };
                        format!("{intro}\n```{other_fence}\n{other}```\n")
                    }
                    // The completion stops mid-module: unterminated
                    // fence, code cut at a seeded fraction.
                    Some(BackendFault::Truncate) => {
                        let mut frng = self.faults.rng(&self.profile.name, request);
                        let _class: f64 = frng.gen_range(0.0..1.0);
                        let frac: f64 = frng.gen_range(0.25..0.75);
                        let mut cut = (code.len() as f64 * frac) as usize;
                        while cut > 0 && !code.is_char_boundary(cut) {
                            cut -= 1;
                        }
                        format!("{intro}\n```{fence}\n{}", &code[..cut])
                    }
                    _ => format!("{intro}\n```{fence}\n{code}```\n"),
                }
            }
        };

        let completion_tokens = estimate_tokens(&content);
        let prompt_tokens: u64 = request
            .messages
            .iter()
            .map(|m| estimate_tokens(&m.content))
            .sum();
        let noise = self
            .rng(
                view.task.as_deref().unwrap_or(""),
                seed,
                &format!(
                    "lat{}",
                    (2.0 * (view.syntax_rounds + view.func_rounds)) as u64
                ),
            )
            .gen_range(0.0..1.0);
        let latency_s = self.profile.latency.seconds(completion_tokens, noise);
        if self.recorder.is_enabled() {
            let corrective = view.syntax_rounds + view.func_rounds > 0.0;
            let kind = if corrective { "corrective" } else { "generate" };
            let span = self.recorder.span("llm.chat");
            self.recorder.advance(latency_s);
            span.attr_str("model", &self.profile.name);
            span.attr_str("kind", kind);
            span.attr_int("prompt_tokens", prompt_tokens as i64);
            span.attr_int("completion_tokens", completion_tokens as i64);
            span.attr_f64("latency_s", latency_s);
            drop(span);
            self.recorder
                .counter_add("llm_requests_total", &[("kind", kind)], 1);
            self.recorder
                .counter_add("llm_tokens_total", &[("kind", "prompt")], prompt_tokens);
            self.recorder.counter_add(
                "llm_tokens_total",
                &[("kind", "completion")],
                completion_tokens,
            );
            self.recorder.observe(
                "llm_latency_seconds",
                &[],
                &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
                latency_s,
            );
        }
        Ok(ChatResponse {
            content,
            usage: TokenUsage {
                prompt_tokens,
                completion_tokens,
            },
            latency_s,
        })
    }
}

/// Builds a chat message carrying the task/language header the protocol
/// requires; a convenience for agents and tests.
#[must_use]
pub fn task_header(task: &str, verilog: bool) -> String {
    format!(
        "{} {}.\n{} {}.\n",
        protocol::TASK_PREFIX,
        task,
        protocol::LANG_PREFIX,
        if verilog { "Verilog" } else { "VHDL" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chat::{GenParams, Message};
    use crate::extract_code;
    use crate::profiles;

    const GOLDEN_V: &str =
        "module and2(\n  input wire a,\n  input wire b,\n  output wire y\n);\n  assign y = a & b;\nendmodule\n";
    const GOLDEN_TB: &str = "module tb;\n  reg a, b;\n  wire y;\nendmodule\n";

    fn library() -> TaskLibrary {
        let mut lib = TaskLibrary::new();
        lib.add_task(
            "prob000_and2",
            GOLDEN_V,
            GOLDEN_TB,
            "entity and2 is\nend entity;\n",
            "entity tb is\nend entity;\n",
        );
        lib
    }

    /// A generation request with enough specification text to not count
    /// as vague (vagueness is exercised by its own test below).
    fn rtl_request(seed: u64) -> ChatRequest {
        ChatRequest {
            messages: vec![Message::user(format!(
                "{}{}\nSpecification:\nThe module and2 exposes two 1-bit inputs \
                 a and b and one 1-bit output y. The output y is the logical AND \
                 of the two inputs at all times; the module is combinational.",
                task_header("prob000_and2", true),
                protocol::REQ_RTL
            ))],
            params: GenParams {
                seed,
                ..GenParams::default()
            },
        }
    }

    #[test]
    fn vague_specs_degrade_generations() {
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library());
        let mut vague_broken = 0;
        for seed in 0..40 {
            let req = ChatRequest {
                messages: vec![Message::user(format!(
                    "{}{}",
                    task_header("prob000_and2", true),
                    protocol::REQ_RTL
                ))],
                params: GenParams {
                    seed,
                    ..GenParams::default()
                },
            };
            let code = extract_code(&model.chat(&req).expect("no faults configured").content);
            vague_broken += u32::from(code != GOLDEN_V);
        }
        // With no specification text the model always has to guess.
        assert_eq!(vague_broken, 40, "vague prompts must corrupt every sample");
    }

    #[test]
    fn responses_are_deterministic_per_seed() {
        let mut m1 = SimLlm::new(profiles::claude35_sonnet(), library());
        let mut m2 = SimLlm::new(profiles::claude35_sonnet(), library());
        let r1 = m1.chat(&rtl_request(7)).expect("no faults configured");
        let r2 = m2.chat(&rtl_request(7)).expect("no faults configured");
        assert_eq!(r1.content, r2.content);
        assert_eq!(r1.latency_s, r2.latency_s);
        let r3 = m1.chat(&rtl_request(8)).expect("no faults configured");
        // Different seeds usually differ in latency even when the code is
        // identical.
        assert!(r3.latency_s != r1.latency_s || r3.content != r1.content);
    }

    #[test]
    fn fault_rates_track_profile() {
        // Llama3 on VHDL is broken ~99% of the time; Claude on Verilog
        // ~9%. Count corrupted generations over many seeds.
        let count_broken = |profile: ModelProfile, verilog: bool| {
            let mut model = SimLlm::new(profile, library());
            let mut broken = 0;
            for seed in 0..200 {
                let req = ChatRequest {
                    messages: vec![Message::user(format!(
                        "{}{}\nSpecification:\nThe module and2 exposes two 1-bit \
                         inputs a and b and one 1-bit output y, the logical AND of \
                         the inputs; it is purely combinational at all times.",
                        task_header("prob000_and2", verilog),
                        protocol::REQ_RTL
                    ))],
                    params: GenParams {
                        seed,
                        ..GenParams::default()
                    },
                };
                let code = extract_code(&model.chat(&req).expect("no faults configured").content);
                let golden = if verilog {
                    GOLDEN_V
                } else {
                    "entity and2 is\nend entity;\n"
                };
                if code != golden {
                    broken += 1;
                }
            }
            broken
        };
        let claude_v = count_broken(profiles::claude35_sonnet(), true);
        let llama_h = count_broken(profiles::llama3_70b(), false);
        // Claude Verilog: ~(1-.9103) syntax + ~.33 functional ≈ 40%.
        assert!(claude_v > 30 && claude_v < 140, "claude_v={claude_v}");
        // Llama VHDL: ~99% corrupted.
        assert!(llama_h > 180, "llama_h={llama_h}");
    }

    #[test]
    fn corrective_rounds_converge_to_golden() {
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library());
        // Find a seed with a corrupted initial generation.
        let mut messages = None;
        for seed in 0..300 {
            let req = rtl_request(seed);
            let resp = model.chat(&req).expect("no faults configured");
            if extract_code(&resp.content) != GOLDEN_V {
                let mut ms = req.messages.clone();
                ms.push(Message::assistant(resp.content));
                messages = Some((ms, seed));
                break;
            }
        }
        let (mut ms, seed) = messages.expect("some corrupted sample exists");
        // Apply many corrective rounds of both kinds; the code must
        // eventually return to golden (every fault has a finite repair
        // round).
        for _ in 0..80 {
            ms.push(Message::user(
                "The compiler reported a syntax error; offending line: `x`. \
                 Also the simulation reported a failing test case.\n\
                 - Test Case 1 Failed"
                    .to_string(),
            ));
            let req = ChatRequest {
                messages: ms.clone(),
                params: GenParams {
                    seed,
                    ..GenParams::default()
                },
            };
            let resp = model.chat(&req).expect("no faults configured");
            let code = extract_code(&resp.content);
            ms.push(Message::assistant(resp.content));
            if code == GOLDEN_V {
                return;
            }
        }
        panic!("corrective loop did not converge in 80 rounds");
    }

    #[test]
    fn testbench_requests_return_testbench() {
        let mut model = SimLlm::new(profiles::gpt4o(), library());
        let req = ChatRequest {
            messages: vec![Message::user(format!(
                "{}{}",
                task_header("prob000_and2", true),
                protocol::REQ_TB
            ))],
            params: GenParams {
                seed: 3,
                ..GenParams::default()
            },
        };
        let resp = model.chat(&req).expect("no faults configured");
        assert!(resp.content.contains("testbench"));
        let code = extract_code(&resp.content);
        assert!(code.contains("module tb"), "{code}");
    }

    #[test]
    fn unknown_task_yields_no_code() {
        let mut model = SimLlm::new(profiles::gpt4o(), library());
        let req = ChatRequest {
            messages: vec![Message::user("Design task: mystery.\nWrite the RTL module")],
            params: GenParams::default(),
        };
        let resp = model.chat(&req).expect("no faults configured");
        assert!(resp.content.contains("could not identify"));
    }

    #[test]
    fn latency_scales_with_model_speed() {
        let mut slow = SimLlm::new(profiles::claude35_sonnet(), library());
        let mut fast = SimLlm::new(profiles::gpt4o(), library());
        let mut slow_total = 0.0;
        let mut fast_total = 0.0;
        for seed in 0..20 {
            slow_total += slow.chat(&rtl_request(seed)).expect("no faults").latency_s;
            fast_total += fast.chat(&rtl_request(seed)).expect("no faults").latency_s;
        }
        assert!(slow_total > fast_total);
    }

    #[test]
    fn view_parsing_counts_rounds() {
        let messages = vec![
            Message::user(format!("{}{}", task_header("t", false), protocol::REQ_RTL)),
            Message::assistant("```vhdl\nx\n```"),
            Message::user("There is a syntax error on line 3."),
            Message::assistant("```vhdl\ny\n```"),
            Message::user("The simulation reported a failing test case.\n- Test Case 2 Failed"),
        ];
        let req = ChatRequest {
            messages,
            params: GenParams::default(),
        };
        let v = parse_view(&req);
        assert_eq!(v.task.as_deref(), Some("t"));
        assert!(!v.verilog);
        assert_eq!(v.artifact, Artifact::Rtl);
        assert!(
            (v.syntax_rounds - 0.5).abs() < 1e-9,
            "terse syntax corrective = half credit"
        );
        assert!(
            (v.func_rounds - 1.0).abs() < 1e-9,
            "detailed functional corrective = full credit"
        );
    }

    #[test]
    fn transport_faults_surface_as_errors() {
        use crate::faults::FaultConfig;
        let cfg = FaultConfig {
            timeout: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(cfg);
        let err = model
            .chat(&rtl_request(1))
            .expect_err("rate 1.0 always faults");
        assert_eq!(err.class(), "timeout");
        assert!(err.elapsed_s() >= 30.0, "timeout consumes the deadline");
        let cfg = FaultConfig {
            rate_limit: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(cfg);
        match model.chat(&rtl_request(1)) {
            Err(crate::LlmError::RateLimited { retry_after_s }) => {
                assert!((1.0..8.0).contains(&retry_after_s));
            }
            other => panic!("expected rate limit, got {other:?}"),
        }
    }

    #[test]
    fn content_faults_degrade_the_completion() {
        use crate::faults::FaultConfig;
        let empty = FaultConfig {
            empty: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(empty);
        let resp = model.chat(&rtl_request(2)).expect("content faults are Ok");
        assert_eq!(extract_code(&resp.content), "", "empty code block");

        let wrong = FaultConfig {
            wrong_language: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(wrong);
        let resp = model.chat(&rtl_request(2)).expect("content faults are Ok");
        assert!(
            resp.content.contains("```vhdl"),
            "verilog request answered in vhdl"
        );
        assert!(extract_code(&resp.content).contains("entity"));

        let trunc = FaultConfig {
            truncate: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(trunc);
        let resp = model.chat(&rtl_request(2)).expect("content faults are Ok");
        let code = extract_code(&resp.content);
        assert!(
            !resp.content.trim_end().ends_with("```"),
            "fence unterminated"
        );
        assert!(code.len() < GOLDEN_V.len(), "code cut short: {code:?}");
    }

    #[test]
    fn fault_free_config_is_byte_identical_to_plain_model() {
        use crate::faults::FaultConfig;
        let mut plain = SimLlm::new(profiles::claude35_sonnet(), library());
        let mut off =
            SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(FaultConfig::off());
        for seed in 0..40 {
            let a = plain.chat(&rtl_request(seed)).expect("no faults");
            let b = off.chat(&rtl_request(seed)).expect("no faults");
            assert_eq!(a.content, b.content);
            assert_eq!(a.latency_s.to_bits(), b.latency_s.to_bits());
        }
    }

    #[test]
    fn retries_can_outlive_transport_faults() {
        use crate::faults::FaultConfig;
        // At a 30% timeout rate, some attempt within a small retry
        // budget must succeed for every seed (deterministically so).
        let cfg = FaultConfig {
            timeout: 0.3,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(cfg);
        for seed in 0..30 {
            let mut ok = false;
            for attempt in 0..8 {
                let mut req = rtl_request(seed);
                req.params.attempt = attempt;
                if model.chat(&req).is_ok() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "seed {seed} failed all 8 attempts");
        }
    }
}
