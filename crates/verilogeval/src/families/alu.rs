//! Small arithmetic-logic units (10 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn mask(w: u32) -> u64 {
    (1u64 << w) - 1
}

/// 4-operation ALU: 00 add, 01 sub, 10 and, 11 or.
fn alu4op(width: u32) -> CombSpec {
    let m = mask(width);
    let vlog_body = "  always @* begin\n    case (op)\n      2'b00: y = a + b;\n      2'b01: y = a - b;\n      2'b10: y = a & b;\n      default: y = a | b;\n    endcase\n  end\n".to_string();
    let vhdl_body = "  process (a, b, op)\n  begin\n    case op is\n      when \"00\" => y <= std_logic_vector(unsigned(a) + unsigned(b));\n      when \"01\" => y <= std_logic_vector(unsigned(a) - unsigned(b));\n      when \"10\" => y <= a and b;\n      when others => y <= a or b;\n    end case;\n  end process;\n".to_string();
    CombSpec {
        name: format!("alu4op_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Hard,
        description: format!(
            "A {width}-bit ALU selected by the 2-bit opcode op: 00 → a + b (wraparound), 01 → a - b (wraparound), 10 → a AND b, 11 → a OR b."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width), Port::new("op", 2)],
        outputs: vec![Port::new("y", width)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let (a, b) = (v[0], v[1]);
            vec![match v[2] {
                0 => (a + b) & m,
                1 => a.wrapping_sub(b) & m,
                2 => a & b,
                _ => a | b,
            }]
        }),
    }
}

/// 8-operation ALU with a 3-bit opcode.
fn alu8op(width: u32) -> CombSpec {
    let m = mask(width);
    let vlog_body = "  always @* begin\n    case (op)\n      3'b000: y = a + b;\n      3'b001: y = a - b;\n      3'b010: y = a & b;\n      3'b011: y = a | b;\n      3'b100: y = a ^ b;\n      3'b101: y = ~a;\n      3'b110: y = a << 1;\n      default: y = a >> 1;\n    endcase\n  end\n".to_string();
    let hi = width - 1;
    let vhdl_body = format!(
        "  process (a, b, op)\n  begin\n    case op is\n      when \"000\" => y <= std_logic_vector(unsigned(a) + unsigned(b));\n      when \"001\" => y <= std_logic_vector(unsigned(a) - unsigned(b));\n      when \"010\" => y <= a and b;\n      when \"011\" => y <= a or b;\n      when \"100\" => y <= a xor b;\n      when \"101\" => y <= not a;\n      when \"110\" => y <= a({} downto 0) & '0';\n      when others => y <= '0' & a({hi} downto 1);\n    end case;\n  end process;\n",
        hi - 1
    );
    CombSpec {
        name: format!("alu8op_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Hard,
        description: format!(
            "A {width}-bit ALU with a 3-bit opcode: 000 add, 001 sub, 010 and, 011 or, 100 xor, 101 not-a, 110 shift a left by 1, 111 shift a right by 1."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width), Port::new("op", 3)],
        outputs: vec![Port::new("y", width)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let (a, b) = (v[0], v[1]);
            vec![match v[2] {
                0 => (a + b) & m,
                1 => a.wrapping_sub(b) & m,
                2 => a & b,
                3 => a | b,
                4 => a ^ b,
                5 => !a & m,
                6 => a << 1 & m,
                _ => a >> 1,
            }]
        }),
    }
}

/// Logic-only unit: 00 and, 01 or, 10 xor, 11 nor.
fn logic_unit(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("logic_unit_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-bit logic unit: op 00 → a AND b, 01 → a OR b, 10 → a XOR b, 11 → a NOR b."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width), Port::new("op", 2)],
        outputs: vec![Port::new("y", width)],
        vlog_body: "  always @* begin\n    case (op)\n      2'b00: y = a & b;\n      2'b01: y = a | b;\n      2'b10: y = a ^ b;\n      default: y = ~(a | b);\n    endcase\n  end\n".into(),
        vlog_out_reg: true,
        vhdl_body: "  process (a, b, op)\n  begin\n    case op is\n      when \"00\" => y <= a and b;\n      when \"01\" => y <= a or b;\n      when \"10\" => y <= a xor b;\n      when others => y <= a nor b;\n    end case;\n  end process;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let (a, b) = (v[0], v[1]);
            vec![match v[2] {
                0 => a & b,
                1 => a | b,
                2 => a ^ b,
                _ => !(a | b) & m,
            }]
        }),
    }
}

/// Add/sub with carry-out and zero flag.
fn arith_flags(width: u32) -> CombSpec {
    let m = mask(width);
    CombSpec {
        name: format!("arith_flags_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Hard,
        description: format!(
            "A {width}-bit adder/subtractor with flags: when sub is 0, {{cout, y}} = a + b; when sub is 1, {{cout, y}} = a + ~b + 1 (so cout is the no-borrow flag). zero is 1 when y is all zeros."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width), Port::new("sub", 1)],
        outputs: vec![Port::new("y", width), Port::new("cout", 1), Port::new("zero", 1)],
        vlog_body: "  assign {cout, y} = sub ? ({1'b0, a} + {1'b0, ~b} + 1'b1) : ({1'b0, a} + {1'b0, b});\n  assign zero = ~|y;\n".into(),
        vlog_out_reg: false,
        vhdl_body: format!(
            "  t <= (('0' & a) + ('0' & (not b)) + 1) when sub = '1' else (('0' & a) + ('0' & b));\n  y <= t({} downto 0);\n  cout <= t({width});\n  zero <= '1' when t({} downto 0) = \"{}\" else '0';\n",
            width - 1,
            width - 1,
            "0".repeat(width as usize)
        ),
        vhdl_decls: format!("  signal t : std_logic_vector({width} downto 0);\n"),
        eval: Box::new(move |v| {
            let (a, b, sub) = (v[0], v[1], v[2]);
            let t = if sub == 1 { a + (!b & m) + 1 } else { a + b };
            let y = t & m;
            vec![y, t >> width & 1, u64::from(y == 0)]
        }),
    }
}

/// Absolute difference.
fn absdiff(width: u32) -> CombSpec {
    CombSpec {
        name: format!("absdiff_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is the absolute difference |a - b| of the two unsigned {width}-bit inputs."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: "  assign y = (a > b) ? (a - b) : (b - a);\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= std_logic_vector(unsigned(a) - unsigned(b)) when unsigned(a) > unsigned(b) else std_logic_vector(unsigned(b) - unsigned(a));\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(|v| vec![v[0].abs_diff(v[1])]),
    }
}

/// Saturating unsigned addition.
fn sat_add(width: u32) -> CombSpec {
    let m = mask(width);
    let ones_v = format!("{width}'b{}", "1".repeat(width as usize));
    let ones_h = format!("\"{}\"", "1".repeat(width as usize));
    CombSpec {
        name: format!("sat_add_w{width}"),
        family: Family::Alu,
        difficulty: Difficulty::Hard,
        description: format!(
            "A {width}-bit saturating unsigned adder: y = a + b, clamped to the maximum value 2^{width}-1 on overflow."
        ),
        inputs: vec![Port::new("a", width), Port::new("b", width)],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!(
            "  wire [{width}:0] t;\n  assign t = a + b;\n  assign y = t[{width}] ? {ones_v} : t[{}:0];\n",
            width - 1
        ),
        vlog_out_reg: false,
        vhdl_body: format!(
            "  t <= ('0' & a) + ('0' & b);\n  y <= {ones_h} when t({width}) = '1' else t({} downto 0);\n",
            width - 1
        ),
        vhdl_decls: format!("  signal t : std_logic_vector({width} downto 0);\n"),
        eval: Box::new(move |v| vec![(v[0] + v[1]).min(m)]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(alu4op(4)));
    problems.push(comb_problem(alu4op(8)));
    problems.push(comb_problem(alu8op(4)));
    problems.push(comb_problem(logic_unit(4)));
    problems.push(comb_problem(logic_unit(8)));
    problems.push(comb_problem(arith_flags(4)));
    problems.push(comb_problem(arith_flags(8)));
    problems.push(comb_problem(absdiff(4)));
    problems.push(comb_problem(absdiff(8)));
    problems.push(comb_problem(sat_add(4)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn alu_ops() {
        let s = alu4op(4);
        assert_eq!((s.eval)(&[9, 8, 0]), vec![1], "add wraps");
        assert_eq!((s.eval)(&[3, 5, 1]), vec![0xE], "sub wraps");
        assert_eq!((s.eval)(&[0b1100, 0b1010, 2]), vec![0b1000]);
        assert_eq!((s.eval)(&[0b1100, 0b1010, 3]), vec![0b1110]);
    }

    #[test]
    fn arith_flags_borrow_semantics() {
        let s = arith_flags(4);
        // 5 - 3: no borrow → cout 1.
        assert_eq!((s.eval)(&[5, 3, 1]), vec![2, 1, 0]);
        // 3 - 5: borrow → cout 0, wraparound value.
        assert_eq!((s.eval)(&[3, 5, 1]), vec![0xE, 0, 0]);
        // 3 - 3: zero flag.
        assert_eq!((s.eval)(&[3, 3, 1]), vec![0, 1, 1]);
    }

    #[test]
    fn saturation() {
        let s = sat_add(4);
        assert_eq!((s.eval)(&[12, 9]), vec![15]);
        assert_eq!((s.eval)(&[3, 4]), vec![7]);
    }
}
