//! VHDL elaboration: AST → shared simulatable IR.
//!
//! VHDL signal assignments have delta-delayed semantics, so every
//! sequential `<=` lowers to a *nonblocking* assignment; a process with a
//! sensitivity list runs once at time zero and then re-arms on its list,
//! exactly per the LRM's implicit `wait on` rule. `rising_edge`/
//! `falling_edge` lower to the IR's [`Expr::EdgeFlag`], which the
//! simulator evaluates from the wake cause of the executing process.

use crate::ast::{
    self, Architecture, BinOp, ConcurrentStmt, Decl, DesignFile, Entity, PortDir, SeqStmt,
    SeverityLevel, TypeMark, UnOp, VarDecl,
};
use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::ir::{
    BinaryOp, Design, Expr, Instr, LValue, Net, NetId, NetKind, Process, ProcessKind, SysTaskKind,
    Trigger, UnaryOp,
};
use aivril_hdl::logic::Logic;
use aivril_hdl::source::Span;
use aivril_hdl::vec::LogicVec;
use std::collections::HashMap;

const MAX_DEPTH: u32 = 64;

/// Elaborates entity `top` (using its last declared architecture).
pub fn elaborate(file: &DesignFile, top: &str, diags: &mut Diagnostics) -> Option<Design> {
    let mut entities: HashMap<&str, &Entity> = HashMap::new();
    for e in &file.entities {
        entities.insert(e.name.as_str(), &**e);
    }
    let mut archs: HashMap<&str, &Architecture> = HashMap::new();
    for a in &file.architectures {
        archs.insert(a.entity.as_str(), &**a);
    }
    let top = top.to_ascii_lowercase();
    let Some(&entity) = entities.get(top.as_str()) else {
        diags.push(Diagnostic::global_error(
            codes::ELAB_UNKNOWN_MODULE,
            format!("top entity '{top}' not found in the compiled sources"),
        ));
        return None;
    };
    let Some(&arch) = archs.get(top.as_str()) else {
        diags.push(Diagnostic::global_error(
            codes::ELAB_UNKNOWN_MODULE,
            format!("entity '{top}' has no architecture"),
        ));
        return None;
    };
    let mut el = Elaborator {
        entities,
        archs,
        design: Design::new(&top),
        diags,
    };
    el.instantiate(entity, arch, String::new(), HashMap::new(), None, 0);
    if el.diags.has_errors() {
        None
    } else {
        Some(el.design)
    }
}

#[derive(Debug, Default)]
struct Scope {
    prefix: String,
    consts: HashMap<String, i64>,
    nets: HashMap<String, NetId>,
}

struct Elaborator<'a, 'd> {
    entities: HashMap<&'a str, &'a Entity>,
    archs: HashMap<&'a str, &'a Architecture>,
    design: Design,
    diags: &'d mut Diagnostics,
}

struct InstanceConn<'a, 's> {
    port_map: &'a [(String, Option<ast::Expr>, Span)],
    parent_scope: &'s Scope,
}

impl<'a> Elaborator<'a, '_> {
    fn error(&mut self, code: &str, message: String, span: Span) {
        self.diags.push(Diagnostic::error(code, message, span));
    }

    fn net_width(&self, id: NetId) -> u32 {
        self.design.net(id).width
    }

    fn instantiate(
        &mut self,
        entity: &'a Entity,
        arch: &'a Architecture,
        prefix: String,
        generics: HashMap<String, i64>,
        conns: Option<InstanceConn<'a, '_>>,
        depth: u32,
    ) {
        if depth > MAX_DEPTH {
            self.error(
                codes::ELAB_UNKNOWN_MODULE,
                format!("hierarchy deeper than {MAX_DEPTH} levels (recursive instantiation?)"),
                entity.span,
            );
            return;
        }
        let mut scope = Scope {
            prefix,
            ..Scope::default()
        };

        // Generics.
        for g in &entity.generics {
            let value = match generics.get(&g.name) {
                Some(&v) => v,
                None => match &g.default {
                    Some(d) => self.eval_const(d, &scope).unwrap_or(0),
                    None => {
                        self.error(
                            codes::VHDL_TYPE,
                            format!("generic '{}' has no value", g.name),
                            g.span,
                        );
                        0
                    }
                },
            };
            scope.consts.insert(g.name.clone(), value);
        }

        // Ports.
        for p in &entity.ports {
            if p.dir == PortDir::Inout {
                self.error(
                    codes::ELAB_PORT_MISMATCH,
                    format!("inout port '{}' is not supported", p.name),
                    p.span,
                );
            }
            let width = self.type_width(&p.ty, &scope);
            self.declare_signal(&mut scope, &p.name, width, None, p.span);
        }

        // Architecture declarations.
        for d in &arch.decls {
            match d {
                Decl::Signal { names, ty, init } => {
                    let width = self.type_width(ty, &scope);
                    let init_value = init
                        .as_ref()
                        .and_then(|e| self.eval_const_vec(e, width, &scope));
                    for (n, s) in names {
                        self.declare_signal(&mut scope, n, width, init_value.clone(), *s);
                    }
                }
                Decl::Constant { name, value, span } => {
                    let v = self.eval_const(value, &scope).unwrap_or(0);
                    if scope.consts.insert(name.clone(), v).is_some() {
                        self.error(
                            codes::VLOG_REDECLARED,
                            format!("'{name}' is already declared"),
                            *span,
                        );
                    }
                }
            }
        }

        // Parent-side port connections.
        if let Some(conn) = conns {
            self.connect_ports(entity, &scope, conn);
        }

        // Concurrent statements.
        for stmt in &arch.stmts {
            match stmt {
                ConcurrentStmt::Assign {
                    target,
                    value,
                    span,
                } => {
                    if let Some(lv) = self.lower_target(target, &scope) {
                        let rhs = self.lower_rvalue(value, &scope, self.lvalue_width(&lv));
                        let rhs = self.fit(rhs, self.lvalue_width(&lv), *span);
                        self.design.add_continuous_assign(lv, rhs);
                    }
                }
                ConcurrentStmt::Process {
                    label,
                    sensitivity,
                    variables,
                    body,
                    span,
                } => {
                    self.compile_process(
                        label.as_deref(),
                        sensitivity,
                        variables,
                        body,
                        &mut scope,
                        *span,
                    );
                }
                ConcurrentStmt::Instance {
                    label,
                    entity: child_name,
                    generic_map,
                    port_map,
                    span,
                } => {
                    let child_name = child_name.to_ascii_lowercase();
                    let (Some(&child_entity), child_arch) = (
                        self.entities.get(child_name.as_str()),
                        self.archs.get(child_name.as_str()).copied(),
                    ) else {
                        self.error(
                            codes::ELAB_UNKNOWN_MODULE,
                            format!("unknown entity '{child_name}' instantiated as '{label}'"),
                            *span,
                        );
                        continue;
                    };
                    let Some(child_arch) = child_arch else {
                        self.error(
                            codes::ELAB_UNKNOWN_MODULE,
                            format!("entity '{child_name}' has no architecture"),
                            *span,
                        );
                        continue;
                    };
                    let mut bound = HashMap::new();
                    for (gname, gexpr) in generic_map {
                        if !child_entity.generics.iter().any(|g| &g.name == gname) {
                            self.error(
                                codes::ELAB_PORT_MISMATCH,
                                format!("entity '{child_name}' has no generic '{gname}'"),
                                *span,
                            );
                            continue;
                        }
                        let v = self.eval_const(gexpr, &scope).unwrap_or(0);
                        bound.insert(gname.clone(), v);
                    }
                    let child_prefix = format!("{}{}.", scope.prefix, label);
                    self.instantiate(
                        child_entity,
                        child_arch,
                        child_prefix,
                        bound,
                        Some(InstanceConn {
                            port_map,
                            parent_scope: &scope,
                        }),
                        depth + 1,
                    );
                }
            }
        }
    }

    fn declare_signal(
        &mut self,
        scope: &mut Scope,
        name: &str,
        width: u32,
        init: Option<LogicVec>,
        span: Span,
    ) {
        if scope.nets.contains_key(name) || scope.consts.contains_key(name) {
            self.error(
                codes::VLOG_REDECLARED,
                format!("'{name}' is already declared in this scope"),
                span,
            );
            return;
        }
        let id = self.design.add_net(Net {
            name: format!("{}{}", scope.prefix, name),
            width,
            kind: NetKind::Reg,
            init,
        });
        scope.nets.insert(name.to_string(), id);
    }

    fn type_width(&mut self, ty: &TypeMark, scope: &Scope) -> u32 {
        match ty {
            TypeMark::StdLogic | TypeMark::Boolean => 1,
            TypeMark::Integer => 32,
            TypeMark::Vector { high, low, .. } => {
                let h = self.eval_const(high, scope).unwrap_or(0);
                let l = self.eval_const(low, scope).unwrap_or(0);
                (h - l).unsigned_abs() as u32 + 1
            }
        }
    }

    fn connect_ports(
        &mut self,
        entity: &'a Entity,
        child_scope: &Scope,
        conn: InstanceConn<'a, '_>,
    ) {
        for (pname, pexpr, pspan) in conn.port_map {
            let Some(port) = entity.ports.iter().find(|p| &p.name == pname) else {
                self.error(
                    codes::ELAB_PORT_MISMATCH,
                    format!("entity '{}' has no port named '{}'", entity.name, pname),
                    *pspan,
                );
                continue;
            };
            let Some(&child_net) = child_scope.nets.get(pname) else {
                continue;
            };
            match (port.dir, pexpr) {
                (PortDir::In, Some(e)) => {
                    let lv = LValue::Net(child_net);
                    let w = self.lvalue_width(&lv);
                    let rhs = self.lower_rvalue(e, conn.parent_scope, w);
                    let rhs = self.fit(rhs, w, *pspan);
                    self.design.add_continuous_assign(lv, rhs);
                }
                (PortDir::Out, Some(e)) => {
                    if let Some(lv) = self.lower_target(e, conn.parent_scope) {
                        let rhs = self.fit(Expr::Net(child_net), self.lvalue_width(&lv), *pspan);
                        self.design.add_continuous_assign(lv, rhs);
                    }
                }
                (_, None) | (PortDir::Inout, _) => {}
            }
        }
    }

    fn lvalue_width(&self, lv: &LValue) -> u32 {
        match lv {
            LValue::Net(id) => self.net_width(*id),
            LValue::Range(_, msb, lsb) => msb - lsb + 1,
            LValue::Index(_, _) => 1,
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(p)).sum(),
        }
    }

    fn fit(&mut self, e: Expr, w: u32, span: Span) -> Expr {
        let nw = |id: NetId| self.net_width(id);
        let cur = e.width_with(&nw);
        if cur > w {
            self.diags.push(Diagnostic::warning(
                codes::WIDTH_MISMATCH,
                format!("assignment truncates a {cur}-bit expression to {w} bits"),
                span,
            ));
            e
        } else {
            e.widened_to(w, &nw)
        }
    }

    // ---------------------------------------------------- const folding

    fn eval_const(&mut self, e: &ast::Expr, scope: &Scope) -> Option<i64> {
        match self.try_eval_const(e, scope) {
            Some(v) => Some(v),
            None => {
                let span = e
                    .span()
                    .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                self.error(
                    codes::VHDL_SYNTAX,
                    "expected a constant integer expression".to_string(),
                    span,
                );
                None
            }
        }
    }

    fn try_eval_const(&self, e: &ast::Expr, scope: &Scope) -> Option<i64> {
        match e {
            ast::Expr::Int { value, .. } => Some(*value),
            ast::Expr::Ident { name, .. } => scope.consts.get(name).copied(),
            ast::Expr::Unary { op, operand } => {
                let v = self.try_eval_const(operand, scope)?;
                Some(match op {
                    UnOp::Negate => -v,
                    UnOp::Plus => v,
                    UnOp::Not => i64::from(v == 0),
                })
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                let a = self.try_eval_const(lhs, scope)?;
                let b = self.try_eval_const(rhs, scope)?;
                Some(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Mod => a.checked_rem_euclid(b)?,
                    BinOp::Rem => a.checked_rem(b)?,
                    _ => return None,
                })
            }
            _ => None,
        }
    }

    /// Constant vector value for signal initialisers.
    fn eval_const_vec(&mut self, e: &ast::Expr, width: u32, scope: &Scope) -> Option<LogicVec> {
        match e {
            ast::Expr::CharLit { ch, .. } => Some(LogicVec::filled(width, char_logic(*ch))),
            ast::Expr::BitString { bits, .. } => {
                LogicVec::parse_binary(&bits.to_ascii_lowercase()).map(|v| v.resize(width))
            }
            ast::Expr::HexString { digits, .. } => u64::from_str_radix(digits, 16)
                .ok()
                .map(|v| LogicVec::from_u64(width, v)),
            ast::Expr::Aggregate { fill, .. } => {
                let f = self.eval_const_vec(fill, 1, scope)?;
                Some(LogicVec::filled(width, f.get(0)))
            }
            other => self
                .try_eval_const(other, scope)
                .map(|v| LogicVec::from_u64(width, v as u64)),
        }
    }

    // -------------------------------------------------------- lowering

    /// Lowers an r-value; `target_width` lets integer literals and
    /// aggregates adopt their context width, per VHDL typing.
    fn lower_rvalue(&mut self, e: &ast::Expr, scope: &Scope, target_width: u32) -> Expr {
        match e {
            ast::Expr::Aggregate { fill, .. } => {
                let f = self.lower_rvalue(fill, scope, 1);
                match f {
                    Expr::Const(v) => Expr::Const(LogicVec::filled(target_width, v.get(0))),
                    _ => {
                        let span = e
                            .span()
                            .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                        self.error(
                            codes::VHDL_TYPE,
                            "aggregate fill must be a constant".to_string(),
                            span,
                        );
                        Expr::Const(LogicVec::xes(target_width))
                    }
                }
            }
            ast::Expr::When { value, cond, els } => Expr::Ternary {
                cond: Box::new(self.lower_bool(cond, scope)),
                then: Box::new(self.lower_rvalue(value, scope, target_width)),
                els: Box::new(self.lower_rvalue(els, scope, target_width)),
            },
            other => self.lower_expr(other, scope),
        }
    }

    /// Lowers a boolean-context expression (if/while/assert conditions).
    fn lower_bool(&mut self, e: &ast::Expr, scope: &Scope) -> Expr {
        self.lower_expr(e, scope)
    }

    fn lower_expr(&mut self, e: &ast::Expr, scope: &Scope) -> Expr {
        let fallback_span = || Span::file_start(aivril_hdl::source::FileId(0));
        match e {
            ast::Expr::Int { value, .. } => Expr::Const(LogicVec::from_u64(32, *value as u64)),
            ast::Expr::Bool { value, .. } => Expr::constant(1, u64::from(*value)),
            ast::Expr::CharLit { ch, .. } => Expr::Const(LogicVec::from_logic(char_logic(*ch))),
            ast::Expr::BitString { bits, span } => {
                match LogicVec::parse_binary(&bits.to_ascii_lowercase()) {
                    Some(v) => Expr::Const(v),
                    None => {
                        self.error(
                            codes::VHDL_SYNTAX,
                            format!("malformed bit-string \"{bits}\""),
                            *span,
                        );
                        Expr::Const(LogicVec::xes(1))
                    }
                }
            }
            ast::Expr::HexString { digits, span } => match u64::from_str_radix(digits, 16) {
                Ok(v) => Expr::Const(LogicVec::from_u64(4 * digits.len() as u32, v)),
                Err(_) => {
                    self.error(
                        codes::VHDL_SYNTAX,
                        format!("malformed hex bit-string x\"{digits}\""),
                        *span,
                    );
                    Expr::Const(LogicVec::xes(1))
                }
            },
            ast::Expr::StrLit { text, span } => {
                self.error(
                    codes::VHDL_TYPE,
                    format!("string \"{text}\" is not valid in this context"),
                    *span,
                );
                Expr::Const(LogicVec::xes(1))
            }
            ast::Expr::Ident { name, span } => {
                if let Some(&v) = scope.consts.get(name) {
                    return Expr::Const(LogicVec::from_u64(32, v as u64));
                }
                match scope.nets.get(name) {
                    Some(&id) => Expr::Net(id),
                    None => {
                        self.error(
                            codes::VHDL_UNDECLARED,
                            format!("'{name}' is not declared"),
                            *span,
                        );
                        Expr::Const(LogicVec::xes(1))
                    }
                }
            }
            ast::Expr::Call { name, args, span } => self.lower_call(name, args, *span, scope),
            ast::Expr::Slice {
                name,
                left,
                right,
                span,
                ..
            } => {
                let Some(&net) = scope.nets.get(name) else {
                    self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    return Expr::Const(LogicVec::xes(1));
                };
                let l = self.eval_const(left, scope).unwrap_or(0).max(0) as u32;
                let r = self.eval_const(right, scope).unwrap_or(0).max(0) as u32;
                let (msb, lsb) = if l >= r { (l, r) } else { (r, l) };
                Expr::Range { net, msb, lsb }
            }
            ast::Expr::Attr { name, attr, span } => {
                let Some(&net) = scope.nets.get(name) else {
                    self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    return Expr::Const(LogicVec::xes(1));
                };
                match attr.as_str() {
                    "event" => Expr::Binary {
                        op: BinaryOp::LogicalOr,
                        lhs: Box::new(Expr::EdgeFlag { net, rising: true }),
                        rhs: Box::new(Expr::EdgeFlag { net, rising: false }),
                    },
                    other => {
                        self.error(
                            codes::VHDL_SYNTAX,
                            format!("attribute '{other}' is not supported"),
                            *span,
                        );
                        Expr::Const(LogicVec::xes(1))
                    }
                }
            }
            ast::Expr::Unary { op, operand } => {
                let inner = self.lower_expr(operand, scope);
                match op {
                    UnOp::Not => Expr::Unary {
                        op: UnaryOp::Not,
                        operand: Box::new(inner),
                    },
                    UnOp::Negate => Expr::Unary {
                        op: UnaryOp::Negate,
                        operand: Box::new(inner),
                    },
                    UnOp::Plus => inner,
                }
            }
            ast::Expr::Binary { op, lhs, rhs } => {
                let mut l = self.lower_expr(lhs, scope);
                let mut r = self.lower_expr(rhs, scope);
                // VHDL numeric_std: an integer operand adopts the vector
                // operand's width.
                let nw = |id: NetId| self.net_width(id);
                if matches!(**lhs, ast::Expr::Int { .. }) && !matches!(**rhs, ast::Expr::Int { .. })
                {
                    let w = r.width_with(&nw);
                    if let Expr::Const(v) = &l {
                        l = Expr::Const(v.resize(w.max(1)));
                    }
                } else if matches!(**rhs, ast::Expr::Int { .. })
                    && !matches!(**lhs, ast::Expr::Int { .. })
                {
                    let w = l.width_with(&nw);
                    if let Expr::Const(v) = &r {
                        r = Expr::Const(v.resize(w.max(1)));
                    }
                }
                let op = match op {
                    BinOp::And => BinaryOp::And,
                    BinOp::Or => BinaryOp::Or,
                    BinOp::Xor => BinaryOp::Xor,
                    BinOp::Xnor => BinaryOp::Xnor,
                    BinOp::Nand => {
                        return Expr::Unary {
                            op: UnaryOp::Not,
                            operand: Box::new(Expr::Binary {
                                op: BinaryOp::And,
                                lhs: Box::new(l),
                                rhs: Box::new(r),
                            }),
                        }
                    }
                    BinOp::Nor => {
                        return Expr::Unary {
                            op: UnaryOp::Not,
                            operand: Box::new(Expr::Binary {
                                op: BinaryOp::Or,
                                lhs: Box::new(l),
                                rhs: Box::new(r),
                            }),
                        }
                    }
                    BinOp::Eq => BinaryOp::Eq,
                    BinOp::Ne => BinaryOp::Ne,
                    BinOp::Lt => BinaryOp::Lt,
                    BinOp::Le => BinaryOp::Le,
                    BinOp::Gt => BinaryOp::Gt,
                    BinOp::Ge => BinaryOp::Ge,
                    BinOp::Add => BinaryOp::Add,
                    BinOp::Sub => BinaryOp::Sub,
                    BinOp::Mul => BinaryOp::Mul,
                    BinOp::Div => BinaryOp::Div,
                    BinOp::Mod => BinaryOp::Rem,
                    BinOp::Rem => BinaryOp::Rem,
                    BinOp::Sll => BinaryOp::Shl,
                    BinOp::Srl => BinaryOp::Shr,
                    BinOp::Concat => {
                        return Expr::Concat(vec![l, r]);
                    }
                };
                Expr::Binary {
                    op,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                }
            }
            ast::Expr::Aggregate { span, .. } => {
                self.error(
                    codes::VHDL_TYPE,
                    "aggregates are only supported on assignment right-hand sides".to_string(),
                    *span,
                );
                Expr::Const(LogicVec::xes(1))
            }
            ast::Expr::When { .. } => {
                self.error(
                    codes::VHDL_SYNTAX,
                    "conditional expressions are only supported in concurrent assignments"
                        .to_string(),
                    fallback_span(),
                );
                Expr::Const(LogicVec::xes(1))
            }
        }
    }

    fn lower_call(&mut self, name: &str, args: &[ast::Expr], span: Span, scope: &Scope) -> Expr {
        // A signal name means index/slice rather than a function call.
        if let Some(&net) = scope.nets.get(name) {
            if args.len() == 1 {
                let idx = self.lower_expr(&args[0], scope);
                return Expr::Index {
                    net,
                    index: Box::new(idx),
                };
            }
            self.error(
                codes::VHDL_SYNTAX,
                format!("'{name}' is a signal; expected one index"),
                span,
            );
            return Expr::Const(LogicVec::xes(1));
        }
        match name {
            "rising_edge" | "falling_edge" => {
                let rising = name == "rising_edge";
                match args.first() {
                    Some(ast::Expr::Ident {
                        name: sig,
                        span: sspan,
                    }) => match scope.nets.get(sig) {
                        Some(&net) => Expr::EdgeFlag { net, rising },
                        None => {
                            self.error(
                                codes::VHDL_UNDECLARED,
                                format!("'{sig}' is not declared"),
                                *sspan,
                            );
                            Expr::Const(LogicVec::xes(1))
                        }
                    },
                    _ => {
                        self.error(
                            codes::VHDL_SYNTAX,
                            format!("{name}() requires a signal name argument"),
                            span,
                        );
                        Expr::Const(LogicVec::xes(1))
                    }
                }
            }
            // Width-preserving conversions are identities in this IR.
            "std_logic_vector" | "unsigned" | "signed" | "to_integer" | "to_stdlogicvector"
            | "to_bitvector" => match args.first() {
                Some(a) => self.lower_expr(a, scope),
                None => {
                    self.error(
                        codes::VHDL_SYNTAX,
                        format!("{name}() requires an argument"),
                        span,
                    );
                    Expr::Const(LogicVec::xes(1))
                }
            },
            "to_unsigned" | "to_signed" | "conv_std_logic_vector" => {
                if args.len() != 2 {
                    self.error(
                        codes::VHDL_SYNTAX,
                        format!("{name}() requires (value, width) arguments"),
                        span,
                    );
                    return Expr::Const(LogicVec::xes(1));
                }
                let Some(width) = self.eval_const(&args[1], scope) else {
                    return Expr::Const(LogicVec::xes(1));
                };
                let width = width.max(1) as u32;
                let inner = self.lower_expr(&args[0], scope);
                let nw = |id: NetId| self.net_width(id);
                match inner {
                    Expr::Const(v) => Expr::Const(v.resize(width)),
                    e if e.width_with(&nw) <= width => e.widened_to(width, &nw),
                    _ => {
                        self.error(
                            codes::VHDL_TYPE,
                            format!("{name}() cannot narrow a non-constant expression"),
                            span,
                        );
                        Expr::Const(LogicVec::xes(width))
                    }
                }
            }
            "resize" => {
                if args.len() != 2 {
                    self.error(
                        codes::VHDL_SYNTAX,
                        "resize() requires (value, width) arguments".to_string(),
                        span,
                    );
                    return Expr::Const(LogicVec::xes(1));
                }
                let width = self.eval_const(&args[1], scope).unwrap_or(1).max(1) as u32;
                let inner = self.lower_expr(&args[0], scope);
                let nw = |id: NetId| self.net_width(id);
                match inner {
                    Expr::Const(v) => Expr::Const(v.resize(width)),
                    Expr::Net(id) if self.net_width(id) > width => Expr::Range {
                        net: id,
                        msb: width - 1,
                        lsb: 0,
                    },
                    e => e.widened_to(width, &nw),
                }
            }
            other => {
                self.error(
                    codes::VHDL_UNDECLARED,
                    format!("unknown function or undeclared signal '{other}'"),
                    span,
                );
                Expr::Const(LogicVec::xes(1))
            }
        }
    }

    fn lower_target(&mut self, e: &ast::Expr, scope: &Scope) -> Option<LValue> {
        match e {
            ast::Expr::Ident { name, span } => match scope.nets.get(name) {
                Some(&id) => Some(LValue::Net(id)),
                None => {
                    self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    None
                }
            },
            ast::Expr::Call { name, args, span } => {
                let Some(&id) = scope.nets.get(name) else {
                    self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    return None;
                };
                if args.len() != 1 {
                    self.error(codes::VHDL_SYNTAX, "expected one index".to_string(), *span);
                    return None;
                }
                let idx = self.lower_expr(&args[0], scope);
                Some(LValue::Index(id, idx))
            }
            ast::Expr::Slice {
                name,
                left,
                right,
                span,
                ..
            } => {
                let Some(&id) = scope.nets.get(name) else {
                    self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *span,
                    );
                    return None;
                };
                let l = self.eval_const(left, scope)?.max(0) as u32;
                let r = self.eval_const(right, scope)?.max(0) as u32;
                let (msb, lsb) = if l >= r { (l, r) } else { (r, l) };
                Some(LValue::Range(id, msb, lsb))
            }
            other => {
                let span = other
                    .span()
                    .unwrap_or_else(|| Span::file_start(aivril_hdl::source::FileId(0)));
                self.error(
                    codes::VHDL_SYNTAX,
                    "illegal assignment target".to_string(),
                    span,
                );
                None
            }
        }
    }

    // ------------------------------------------------------- processes

    fn compile_process(
        &mut self,
        label: Option<&str>,
        sensitivity: &[(String, Span)],
        variables: &[VarDecl],
        body: &[SeqStmt],
        scope: &mut Scope,
        span: Span,
    ) {
        // Process variables become process-private nets, visible only
        // while this body compiles; `:=` lowers to immediate (blocking)
        // assignment, matching VHDL variable semantics. Their values
        // persist across activations, exactly as in the LRM.
        let mut shadowed: Vec<(String, Option<NetId>)> = Vec::new();
        for v in variables {
            let width = self.type_width(&v.ty, scope);
            let init = v
                .init
                .as_ref()
                .and_then(|e| self.eval_const_vec(e, width, scope));
            for (name, _) in &v.names {
                let id = self.design.add_net(Net {
                    name: format!("{}{}${}", scope.prefix, label.unwrap_or("process"), name),
                    width,
                    kind: NetKind::Reg,
                    init: init.clone(),
                });
                shadowed.push((name.clone(), scope.nets.insert(name.clone(), id)));
            }
        }
        let mut b = Builder::default();
        for stmt in body {
            self.compile_seq(stmt, scope, &mut b);
        }
        for (name, prev) in shadowed.into_iter().rev() {
            match prev {
                Some(id) => {
                    scope.nets.insert(name, id);
                }
                None => {
                    scope.nets.remove(&name);
                }
            }
        }
        if sensitivity.is_empty() {
            // Self-pacing process; guard against missing timing control.
            let has_timing = b.instrs.iter().any(|i| {
                matches!(
                    i,
                    Instr::Delay { .. } | Instr::WaitEvent { .. } | Instr::Halt
                )
            });
            if !has_timing {
                self.error(
                    codes::VHDL_SYNTAX,
                    "process without sensitivity list contains no wait statement".to_string(),
                    span,
                );
            }
            b.emit(Instr::Jump(0));
        } else {
            let mut triggers = Vec::new();
            for (name, sspan) in sensitivity {
                match scope.nets.get(name) {
                    Some(&id) => triggers.push(Trigger::AnyChange(id)),
                    None => self.error(
                        codes::VHDL_UNDECLARED,
                        format!("'{name}' is not declared"),
                        *sspan,
                    ),
                }
            }
            b.emit(Instr::WaitEvent { triggers });
            b.emit(Instr::Jump(0));
        }
        let name = match label {
            Some(l) => format!("{}{}", scope.prefix, l),
            None => format!("{}process@{}", scope.prefix, span.start),
        };
        self.design.add_process(Process {
            name,
            kind: ProcessKind::Always,
            body: b.instrs,
        });
    }

    fn compile_seq(&mut self, stmt: &SeqStmt, scope: &mut Scope, b: &mut Builder) {
        match stmt {
            SeqStmt::VariableAssign {
                target,
                value,
                span,
            } => {
                if let Some(lv) = self.lower_target(target, scope) {
                    let w = self.lvalue_width(&lv);
                    let rhs = self.lower_rvalue(value, scope, w);
                    let rhs = self.fit(rhs, w, *span);
                    b.emit(Instr::BlockingAssign {
                        lvalue: lv,
                        expr: rhs,
                    });
                }
            }
            SeqStmt::SignalAssign {
                target,
                value,
                span,
            } => {
                if let Some(lv) = self.lower_target(target, scope) {
                    let w = self.lvalue_width(&lv);
                    let rhs = self.lower_rvalue(value, scope, w);
                    let rhs = self.fit(rhs, w, *span);
                    b.emit(Instr::NonblockingAssign {
                        lvalue: lv,
                        expr: rhs,
                    });
                }
            }
            SeqStmt::If { arms, els } => {
                let mut end_jumps = Vec::new();
                for (cond, body) in arms {
                    let c = self.lower_bool(cond, scope);
                    let skip = b.emit_branch(c);
                    for s in body {
                        self.compile_seq(s, scope, b);
                    }
                    end_jumps.push(b.emit(Instr::Jump(usize::MAX)));
                    b.patch(skip, b.here());
                }
                if let Some(body) = els {
                    for s in body {
                        self.compile_seq(s, scope, b);
                    }
                }
                for j in end_jumps {
                    b.patch(j, b.here());
                }
            }
            SeqStmt::Case {
                subject,
                arms,
                span: _,
            } => {
                let subj = self.lower_expr(subject, scope);
                let mut end_jumps = Vec::new();
                for (choices, body) in arms {
                    if choices.is_empty() {
                        // `when others` — unconditional.
                        for s in body {
                            self.compile_seq(s, scope, b);
                        }
                        end_jumps.push(b.emit(Instr::Jump(usize::MAX)));
                        continue;
                    }
                    let mut cond: Option<Expr> = None;
                    for choice in choices {
                        let cexpr = self.lower_expr(choice, scope);
                        let c = Expr::Binary {
                            op: BinaryOp::CaseEq,
                            lhs: Box::new(subj.clone()),
                            rhs: Box::new(cexpr),
                        };
                        cond = Some(match cond {
                            None => c,
                            Some(prev) => Expr::Binary {
                                op: BinaryOp::LogicalOr,
                                lhs: Box::new(prev),
                                rhs: Box::new(c),
                            },
                        });
                    }
                    let skip = b.emit_branch(cond.expect("non-empty choices"));
                    for s in body {
                        self.compile_seq(s, scope, b);
                    }
                    end_jumps.push(b.emit(Instr::Jump(usize::MAX)));
                    b.patch(skip, b.here());
                }
                for j in end_jumps {
                    b.patch(j, b.here());
                }
            }
            SeqStmt::For {
                var,
                from,
                to,
                downto,
                body,
                span,
            } => {
                // Hidden 32-bit loop counter, visible as `var` in the body.
                let counter = self.design.add_net(Net {
                    name: format!("{}{}@{}", scope.prefix, var, span.start),
                    width: 32,
                    kind: NetKind::Reg,
                    init: Some(LogicVec::zeros(32)),
                });
                let shadowed = scope.nets.insert(var.clone(), counter);
                let from_e = self.lower_expr(from, scope);
                let to_e = self.lower_expr(to, scope);
                b.emit(Instr::BlockingAssign {
                    lvalue: LValue::Net(counter),
                    expr: from_e,
                });
                let head = b.here();
                let cmp = if *downto { BinaryOp::Ge } else { BinaryOp::Le };
                let cond = Expr::Binary {
                    op: cmp,
                    lhs: Box::new(Expr::Net(counter)),
                    rhs: Box::new(to_e),
                };
                let exit = b.emit_branch(cond);
                for s in body {
                    self.compile_seq(s, scope, b);
                }
                let step_op = if *downto {
                    BinaryOp::Sub
                } else {
                    BinaryOp::Add
                };
                b.emit(Instr::BlockingAssign {
                    lvalue: LValue::Net(counter),
                    expr: Expr::Binary {
                        op: step_op,
                        lhs: Box::new(Expr::Net(counter)),
                        rhs: Box::new(Expr::constant(32, 1)),
                    },
                });
                b.emit(Instr::Jump(head));
                b.patch(exit, b.here());
                match shadowed {
                    Some(prev) => {
                        scope.nets.insert(var.clone(), prev);
                    }
                    None => {
                        scope.nets.remove(var);
                    }
                }
            }
            SeqStmt::While { cond, body } => {
                let head = b.here();
                let c = self.lower_bool(cond, scope);
                let exit = b.emit_branch(c);
                for s in body {
                    self.compile_seq(s, scope, b);
                }
                b.emit(Instr::Jump(head));
                b.patch(exit, b.here());
            }
            SeqStmt::WaitFor { amount, span: _ } => {
                let amt = self.lower_expr(amount, scope);
                b.emit(Instr::Delay { amount: amt });
            }
            SeqStmt::WaitUntil { cond, span } => {
                // `wait until rising_edge(clk)` gets a precise edge wait;
                // the general form loops on any change of the read nets.
                if let ast::Expr::Call { name, args, .. } = cond {
                    if name == "rising_edge" || name == "falling_edge" {
                        if let Some(ast::Expr::Ident { name: sig, .. }) = args.first() {
                            if let Some(&net) = scope.nets.get(sig) {
                                let trig = if name == "rising_edge" {
                                    Trigger::Posedge(net)
                                } else {
                                    Trigger::Negedge(net)
                                };
                                b.emit(Instr::WaitEvent {
                                    triggers: vec![trig],
                                });
                                return;
                            }
                        }
                    }
                }
                let c = self.lower_bool(cond, scope);
                let mut reads = Vec::new();
                c.collect_reads(&mut reads);
                reads.sort_unstable();
                reads.dedup();
                if reads.is_empty() {
                    self.error(
                        codes::VHDL_SYNTAX,
                        "wait until condition reads no signals".to_string(),
                        *span,
                    );
                    return;
                }
                // head: wait(any change); if cond is false go back to the
                // wait, otherwise fall through.
                let head = b.here();
                b.emit(Instr::WaitEvent {
                    triggers: reads.into_iter().map(Trigger::AnyChange).collect(),
                });
                let back = b.emit_branch(c);
                b.patch(back, head);
            }
            SeqStmt::WaitForever { .. } => {
                b.emit(Instr::Halt);
            }
            SeqStmt::Assert {
                cond,
                report,
                severity,
                span: _,
            } => {
                let c = self.lower_bool(cond, scope);
                let fail = b.emit_branch(c);
                let ok = b.emit(Instr::Jump(usize::MAX));
                b.patch(fail, b.here());
                b.emit(syscall_for(
                    *severity,
                    report
                        .clone()
                        .unwrap_or_else(|| "Assertion violation.".to_string()),
                ));
                b.patch(ok, b.here());
            }
            SeqStmt::Report {
                message,
                severity,
                span: _,
            } => {
                b.emit(syscall_for(*severity, message.clone()));
            }
            SeqStmt::Null => {}
        }
    }
}

/// Maps a VHDL severity to the corresponding system task instruction.
fn syscall_for(severity: SeverityLevel, message: String) -> Instr {
    let kind = match severity {
        SeverityLevel::Note | SeverityLevel::Warning => SysTaskKind::Display,
        SeverityLevel::Error => SysTaskKind::Error,
        SeverityLevel::Failure => SysTaskKind::Fatal,
    };
    Instr::SysCall {
        kind,
        format: Some(message),
        args: Vec::new(),
    }
}

fn char_logic(ch: char) -> Logic {
    match ch {
        '0' | 'L' | 'l' => Logic::Zero,
        '1' | 'H' | 'h' => Logic::One,
        'z' | 'Z' => Logic::Z,
        _ => Logic::X,
    }
}

#[derive(Default)]
struct Builder {
    instrs: Vec<Instr>,
}

impl Builder {
    fn emit(&mut self, i: Instr) -> usize {
        self.instrs.push(i);
        self.instrs.len() - 1
    }

    fn emit_branch(&mut self, cond: Expr) -> usize {
        self.emit(Instr::BranchIfFalse {
            cond,
            target: usize::MAX,
        })
    }

    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn patch(&mut self, at: usize, target: usize) {
        match &mut self.instrs[at] {
            Instr::Jump(t) => *t = target,
            Instr::BranchIfFalse { target: t, .. } => *t = target,
            other => unreachable!("patched a non-branch instruction: {other:?}"),
        }
    }
}
