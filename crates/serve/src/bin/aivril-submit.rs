//! `aivril-submit` — command-line client for `aivril-serve`.
//!
//! ```text
//! aivril-submit --addr 127.0.0.1:4117 --tenant acme \
//!     --task prob000_and2 --jobs j1,j2 [--lang verilog] [--flow aivril2] \
//!     [--out DIR] [--expect-reject]
//! aivril-submit --addr 127.0.0.1:4117 --ping
//! aivril-submit --addr 127.0.0.1:4117 --shutdown
//! ```
//!
//! Submits every job in one burst, then reads response frames until
//! each job reached a terminal frame (`result` or `reject`). With
//! `--out DIR`, writes one transcript per job —
//! `DIR/TENANT-JOB.ndjson`, the job's `ack`/`progress`/`result` (or
//! `reject`) lines verbatim — so two transcripts of the same job can be
//! compared with `diff` alone.
//!
//! Exit codes: `0` all jobs produced results (with `--expect-reject`:
//! at least one rejection seen, the overload-probe mode); `1` expected
//! a rejection and saw none; `2` protocol/transport error; `3` a job
//! was rejected.

use aivril_bench::{arg_value, Flow};
use aivril_obs::json;
use aivril_serve::protocol::{render_request, Request, SubmitRequest};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn fatal(msg: &str) -> ! {
    eprintln!("[submit] {msg}");
    std::process::exit(2);
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr)
        .unwrap_or_else(|e| fatal(&format!("cannot connect to {addr}: {e}")));
    // A stuck server must yield a visible error, never a hang.
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("socket supports read timeouts");
    let reader = BufReader::new(stream.try_clone().unwrap_or_else(|e| fatal(&e.to_string())));
    (reader, stream)
}

fn send(stream: &mut TcpStream, req: &Request) {
    let line = render_request(req);
    writeln!(stream, "{line}").unwrap_or_else(|e| fatal(&format!("write failed: {e}")));
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => fatal("server closed the connection"),
        Ok(_) => line.trim_end().to_string(),
        Err(e) => fatal(&format!("read failed (timeout?): {e}")),
    }
}

/// Reads frames until one of `types` arrives, skipping others.
fn await_frame(reader: &mut BufReader<TcpStream>, types: &[&str]) -> String {
    loop {
        let line = read_line(reader);
        let typ = json::parse(&line)
            .and_then(|v| v.get("type").and_then(json::Value::str).map(String::from))
            .unwrap_or_else(|| fatal(&format!("unparseable frame: {line}")));
        if typ == "error" {
            fatal(&line);
        }
        if types.contains(&typ.as_str()) {
            return line;
        }
    }
}

fn main() {
    let addr = arg_value("--addr").unwrap_or_else(|| "127.0.0.1:4117".to_string());
    let (mut reader, mut stream) = connect(&addr);

    if has_flag("--ping") {
        send(&mut stream, &Request::Ping);
        println!("{}", await_frame(&mut reader, &["pong"]));
        return;
    }
    if has_flag("--shutdown") {
        send(&mut stream, &Request::Shutdown);
        println!("{}", await_frame(&mut reader, &["bye"]));
        return;
    }

    let tenant = arg_value("--tenant").unwrap_or_else(|| fatal("--tenant is required"));
    let task = arg_value("--task").unwrap_or_else(|| fatal("--task is required"));
    let jobs: Vec<String> = arg_value("--jobs")
        .unwrap_or_else(|| fatal("--jobs is required (comma-separated ids)"))
        .split(',')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if jobs.is_empty() {
        fatal("--jobs named no job ids");
    }
    let verilog = match arg_value("--lang").as_deref() {
        None | Some("verilog") => true,
        Some("vhdl") => false,
        Some(other) => fatal(&format!("--lang must be verilog|vhdl, got {other}")),
    };
    let flow = match arg_value("--flow").as_deref() {
        None | Some("aivril2") => Flow::Aivril2,
        Some("baseline") => Flow::Baseline,
        Some(other) => fatal(&format!("--flow must be aivril2|baseline, got {other}")),
    };
    let out_dir = arg_value("--out");
    let expect_reject = has_flag("--expect-reject");

    // Burst-submit everything, then collect.
    for job in &jobs {
        send(
            &mut stream,
            &Request::Submit(SubmitRequest {
                tenant: tenant.clone(),
                job: job.clone(),
                task: task.clone(),
                verilog,
                flow,
            }),
        );
    }

    let mut transcripts: HashMap<String, Vec<String>> =
        jobs.iter().map(|j| (j.clone(), Vec::new())).collect();
    let mut pending: Vec<String> = jobs.clone();
    let mut rejected = 0usize;
    let mut results = 0usize;
    while !pending.is_empty() {
        let line = read_line(&mut reader);
        let Some(v) = json::parse(&line) else {
            fatal(&format!("unparseable frame: {line}"));
        };
        let typ = v.get("type").and_then(json::Value::str).unwrap_or("");
        match typ {
            "hello" | "pong" => continue,
            "error" => fatal(&line),
            "ack" | "progress" | "result" | "reject" => {
                let job = v.get("job").and_then(json::Value::str).unwrap_or("");
                let Some(t) = transcripts.get_mut(job) else {
                    continue; // not ours (shared-connection hygiene)
                };
                t.push(line.clone());
                if typ == "result" || typ == "reject" {
                    pending.retain(|j| j != job);
                    if typ == "reject" {
                        rejected += 1;
                        eprintln!("[submit] {line}");
                    } else {
                        results += 1;
                    }
                }
            }
            _ => continue,
        }
    }

    if let Some(dir) = out_dir {
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| fatal(&format!("cannot create {dir}: {e}")));
        for (job, lines) in &transcripts {
            let path = format!("{dir}/{tenant}-{job}.ndjson");
            let body = lines.iter().map(|l| format!("{l}\n")).collect::<String>();
            std::fs::write(&path, body)
                .unwrap_or_else(|e| fatal(&format!("cannot write {path}: {e}")));
        }
    }

    println!("[submit] {tenant}: {results} results, {rejected} rejected");
    let code = if expect_reject {
        i32::from(rejected == 0) // 0 iff the overload probe saw a reject
    } else if rejected > 0 {
        3
    } else {
        0
    };
    std::process::exit(code);
}
