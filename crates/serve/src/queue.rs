//! Per-tenant admission control and the bounded job queue.
//!
//! Invariant: a tenant's admitted-but-unfinished jobs (queued +
//! in-flight) never exceed `max_inflight + max_queue`. Submissions past
//! that bound are rejected *at admission* with a structured reason and
//! a `retry_after_s` hint — the queue cannot grow without bound, so
//! overload degrades into fast rejections instead of latency collapse.
//!
//! Tenant identity is **untrusted** — it is whatever string the client
//! asserted over an unauthenticated socket — so per-tenant bounds alone
//! would not bound the service: a client forging N distinct tenant
//! names would get N budgets and N state entries. Two global caps close
//! that hole. `max_total` bounds admitted-but-unfinished jobs across
//! *all* tenants (`server_full` rejects past it), and `max_tenants`
//! bounds distinct tenant states (and therefore [`BreakerBank`] slots).
//! A submission under a new name when the table is full first tries to
//! evict an idle tenant — no queued or in-flight jobs, breaker not open
//! — and is rejected with `tenant_limit` when none is evictable.
//! Eviction forgets the evicted tenant's counters and breaker history;
//! per-tenant statistics are best-effort under tenant churn, the hard
//! bounds are not.
//!
//! The second admission gate is a per-tenant circuit breaker
//! ([`BreakerBank`]): job completions feed each tenant's breaker
//! (failure = crashed or degraded), and a tenant whose runs keep
//! failing is refused at the door (`breaker_open`) until its cooldown
//! lapses — without ever touching any other tenant's breaker. The
//! breaker is consulted *after* every capacity check, so a submission
//! that would be rejected anyway can never consume the breaker's
//! open→half-open transition and leave the probe slot dangling.
//!
//! Clock discipline: admission runs on *wall* seconds since server
//! start, supplied by the caller. This is deliberately outside the
//! deterministic replay surface — see `DESIGN.md` §13: a modeled
//! per-tenant clock would freeze the moment a breaker opens (no
//! completions means no clock advance means no recovery). Job
//! *execution* stays entirely on the modeled clock.

use crate::protocol::SubmitRequest;
use aivril_core::{BreakerBank, ResiliencePolicy};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Where a job's response frames go (one frame per call, no trailing
/// newline). Shared with the connection that submitted the job.
pub type FrameSink = Arc<dyn Fn(&str) + Send + Sync>;

/// A swappable frame destination. Jobs hold a slot rather than a bare
/// sink so an idempotent resubmission of a still-admitted job (for
/// example after the submitting connection dropped) can re-point the
/// job's output at the new connection without touching the job itself.
pub type SinkSlot = Arc<Mutex<FrameSink>>;

/// One admitted job, waiting for or undergoing execution.
pub struct Job {
    /// The validated submission.
    pub spec: SubmitRequest,
    /// Index of [`Job::spec`]'s task in the harness problem set.
    pub problem_index: usize,
    /// Deterministic run seed, [`crate::job_seed`] of the identity.
    pub seed: u64,
    /// Wall seconds since server start when the job was admitted — the
    /// basis for per-job deadlines (checked at claim time).
    pub admitted_at: f64,
    /// Destination for this job's `progress`/`result` frames; shared
    /// with the queue's active-job index so resubmission can swap it.
    pub sink: SinkSlot,
}

impl Job {
    /// Sends one frame to the job's *current* sink (resubmission may
    /// have swapped it since admission).
    pub fn send(&self, frame: &str) {
        let sink = Arc::clone(&*self.sink.lock().unwrap_or_else(PoisonError::into_inner));
        sink(frame);
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("spec", &self.spec)
            .field("problem_index", &self.problem_index)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

/// The admission verdict for one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The job was queued; `seed` echoes its deterministic run seed.
    Accepted {
        /// The job's [`crate::job_seed`].
        seed: u64,
    },
    /// The `(tenant, job)` identity was already admitted and unfinished:
    /// the resubmission attached to it (its sink now receives the
    /// frames) instead of queueing a second execution. The client sees
    /// the same `ack` an [`Admission::Accepted`] would carry.
    Attached {
        /// The job's [`crate::job_seed`].
        seed: u64,
    },
    /// The job was refused and will not run.
    Rejected {
        /// `"queue_full"`, `"server_full"`, `"tenant_limit"`,
        /// `"breaker_open"` or `"shutting_down"`.
        reason: &'static str,
        /// Suggested wall-seconds to wait before resubmitting.
        retry_after_s: f64,
    },
}

/// Aggregate service counters, for the `stats` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Jobs completed since startup.
    pub completed: u64,
    /// Submissions rejected at admission since startup.
    pub rejected: u64,
    /// Jobs currently waiting.
    pub queued: usize,
    /// Jobs currently executing.
    pub inflight: usize,
    /// Distinct tenants seen.
    pub tenants: usize,
}

#[derive(Debug, Clone, Default)]
struct TenantState {
    queued: usize,
    inflight: usize,
    completed: u64,
    rejected: u64,
    /// Total modeled seconds of this tenant's completed jobs — the
    /// basis for the `queue_full` retry hint.
    modeled_s: f64,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    /// Sink slot of every admitted-but-unfinished job, keyed by
    /// identity — the basis for idempotent resubmission.
    active: HashMap<(String, String), SinkSlot>,
    tenants: HashMap<String, TenantState>,
    shutdown: bool,
    completed: u64,
    rejected: u64,
    inflight: usize,
    /// Total modeled seconds across all completed jobs — the basis for
    /// the `server_full` retry hint.
    modeled_s: f64,
}

/// The bounded multi-tenant job queue. All methods are safe to call
/// from any thread.
pub struct JobQueue {
    max_inflight: usize,
    max_queue: usize,
    max_tenants: usize,
    max_total: usize,
    breakers: BreakerBank,
    state: Mutex<QueueState>,
    cvar: Condvar,
}

/// Floor for `retry_after_s` hints, so a hint is never zero.
const MIN_RETRY_S: f64 = 0.5;

/// Ceiling for `retry_after_s` hints — a day. Hints are advice, not
/// contracts; an unbounded cooldown must not serialize as `inf`.
const MAX_RETRY_S: f64 = 86_400.0;

/// Clamps a retry hint into `[MIN_RETRY_S, MAX_RETRY_S]` before it is
/// serialized. `NaN` (an unknowable hint) degrades to the floor, not to
/// a `NaN` on the wire; `f64::clamp` alone would pass `NaN` through.
fn clamp_retry_hint(v: f64) -> f64 {
    if v.is_nan() {
        return MIN_RETRY_S;
    }
    v.clamp(MIN_RETRY_S, MAX_RETRY_S)
}

/// Default global cap on distinct tenant states (see the module docs:
/// tenant identity is untrusted, so the table must be bounded).
pub const DEFAULT_MAX_TENANTS: usize = 64;

/// Default global cap on admitted-but-unfinished jobs across all
/// tenants.
pub const DEFAULT_MAX_TOTAL_JOBS: usize = 256;

impl JobQueue {
    /// Creates a queue with the given per-tenant bounds and the
    /// breaker policy each tenant's admission breaker will follow. The
    /// global caps start at [`DEFAULT_MAX_TENANTS`] /
    /// [`DEFAULT_MAX_TOTAL_JOBS`]; see
    /// [`JobQueue::with_global_limits`].
    #[must_use]
    pub fn new(max_inflight: usize, max_queue: usize, policy: ResiliencePolicy) -> JobQueue {
        JobQueue {
            max_inflight: max_inflight.max(1),
            max_queue,
            max_tenants: DEFAULT_MAX_TENANTS,
            max_total: DEFAULT_MAX_TOTAL_JOBS,
            breakers: BreakerBank::new(policy),
            state: Mutex::new(QueueState::default()),
            cvar: Condvar::new(),
        }
    }

    /// Overrides the global caps: at most `max_tenants` distinct tenant
    /// states and at most `max_total` admitted-but-unfinished jobs
    /// service-wide. Both are clamped to at least 1.
    #[must_use]
    pub fn with_global_limits(mut self, max_tenants: usize, max_total: usize) -> JobQueue {
        self.max_tenants = max_tenants.max(1);
        self.max_total = max_total.max(1);
        self
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits or rejects `job`. `now` is wall seconds since server
    /// start (the admission clock). On acceptance the job is queued and
    /// a worker is woken; on rejection the job is dropped.
    pub fn submit(&self, job: Job, now: f64) -> Admission {
        self.submit_with(job, now, |_| {})
    }

    /// [`JobQueue::submit`] with a verdict hook invoked *before* an
    /// accepted job becomes claimable (still under the queue lock).
    /// The server *enqueues* the `ack`/`reject` frame here — otherwise
    /// a fast worker could stream a cache-warm job's progress before
    /// the submitting thread queued the ack, reordering the transcript.
    /// The hook runs under the queue lock and therefore must never
    /// block (no socket I/O — hand the frame to a per-connection
    /// outbox).
    pub fn submit_with(
        &self,
        job: Job,
        now: f64,
        on_verdict: impl FnOnce(&Admission),
    ) -> Admission {
        let tenant = job.spec.tenant.clone();
        let identity = (job.spec.tenant.clone(), job.spec.job.clone());
        let mut g = self.lock();
        // Idempotent resubmission: an identity that is already admitted
        // and unfinished attaches to the existing job — its sink slot is
        // re-pointed at the resubmitter — instead of queueing a second
        // execution. Checked before every gate: attaching consumes no
        // capacity and must work even while the service is shutting
        // down (pending jobs still drain).
        if let Some(slot) = g.active.get(&identity) {
            *slot.lock().unwrap_or_else(PoisonError::into_inner) =
                Arc::clone(&*job.sink.lock().unwrap_or_else(PoisonError::into_inner));
            let verdict = Admission::Attached { seed: job.seed };
            on_verdict(&verdict);
            return verdict;
        }
        let verdict = match self.admission_reason(&mut g, &tenant, now) {
            Some((reason, retry_after_s)) => {
                // The per-tenant counter bumps only for tenants that
                // already have state: creating state for rejected
                // unknown names would let forged tenants grow the
                // table.
                g.rejected += 1;
                if let Some(t) = g.tenants.get_mut(&tenant) {
                    t.rejected += 1;
                }
                Admission::Rejected {
                    reason,
                    retry_after_s: clamp_retry_hint(retry_after_s),
                }
            }
            None => {
                g.tenants
                    .get_mut(&tenant)
                    .expect("admitted tenant has state")
                    .queued += 1;
                g.active.insert(identity, Arc::clone(&job.sink));
                Admission::Accepted { seed: job.seed }
            }
        };
        on_verdict(&verdict);
        if matches!(verdict, Admission::Accepted { .. }) {
            g.pending.push_back(job);
            drop(g);
            self.cvar.notify_one();
        }
        verdict
    }

    /// Walks the admission gates in order; `Some((reason, hint))` for a
    /// rejection, `None` to admit. The breaker is deliberately the
    /// *last* gate: a job that consumes the open→half-open probe
    /// transition is guaranteed to be admitted, so its completion
    /// always reports the probe's outcome.
    fn admission_reason(
        &self,
        g: &mut QueueState,
        tenant: &str,
        now: f64,
    ) -> Option<(&'static str, f64)> {
        if g.shutdown {
            return Some(("shutting_down", MIN_RETRY_S));
        }
        // Global service-wide average modeled seconds per job — the
        // retry hint for the global rejections.
        let global_avg = if g.completed > 0 {
            (g.modeled_s / g.completed as f64).max(1.0)
        } else {
            1.0
        };
        // A new tenant name needs a state slot; the table is bounded.
        // Evict an idle tenant (nothing admitted, breaker not open) to
        // make room, or refuse the newcomer.
        if !g.tenants.contains_key(tenant) && g.tenants.len() >= self.max_tenants {
            let idle = g
                .tenants
                .iter()
                .find(|(key, t)| {
                    t.queued == 0 && t.inflight == 0 && !self.breakers.is_open(key, now)
                })
                .map(|(key, _)| key.clone());
            match idle {
                Some(key) => {
                    g.tenants.remove(&key);
                    self.breakers.remove(&key);
                }
                None => return Some(("tenant_limit", global_avg)),
            }
        }
        let st = g.tenants.entry(tenant.to_string()).or_default();
        let capacity = self.max_inflight + self.max_queue;
        if st.queued + st.inflight >= capacity {
            // Hint: this tenant's average modeled seconds per job.
            let avg = if st.completed > 0 {
                st.modeled_s / st.completed as f64
            } else {
                0.0
            };
            return Some(("queue_full", avg.max(1.0)));
        }
        if g.pending.len() + g.inflight >= self.max_total {
            return Some(("server_full", global_avg));
        }
        if !self.breakers.try_acquire(tenant, now) {
            let retry_after_s = self
                .breakers
                .retry_after_s(tenant, now)
                .unwrap_or(MIN_RETRY_S);
            return Some(("breaker_open", retry_after_s));
        }
        None
    }

    fn take_runnable(st: &mut QueueState, max_inflight: usize) -> Option<Job> {
        let pos = st.pending.iter().position(|j| {
            st.tenants
                .get(&j.spec.tenant)
                .is_some_and(|t| t.inflight < max_inflight)
        })?;
        let job = st.pending.remove(pos)?;
        let t = st
            .tenants
            .get_mut(&job.spec.tenant)
            .expect("queued job has tenant state");
        t.queued -= 1;
        t.inflight += 1;
        st.inflight += 1;
        Some(job)
    }

    /// Blocks until a runnable job is available (first queued job whose
    /// tenant is under its in-flight cap) and claims it. Returns `None`
    /// once the queue is shut down and drained.
    pub fn next(&self) -> Option<Job> {
        let mut g = self.lock();
        loop {
            if let Some(job) = Self::take_runnable(&mut g, self.max_inflight) {
                return Some(job);
            }
            if g.shutdown && g.pending.is_empty() {
                return None;
            }
            g = self.cvar.wait(g).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking [`JobQueue::next`]: claims a runnable job if one
    /// exists right now. For deterministic single-threaded draining in
    /// tests.
    pub fn try_next(&self) -> Option<Job> {
        Self::take_runnable(&mut self.lock(), self.max_inflight)
    }

    /// Records completion of a claimed job: releases the tenant's
    /// in-flight slot and the job's active-identity entry, accounts
    /// `modeled_s`, feeds the tenant's admission breaker (`failed` =
    /// crashed or degraded), and wakes waiters.
    pub fn complete(&self, tenant: &str, job: &str, modeled_s: f64, failed: bool, now: f64) {
        {
            let mut g = self.lock();
            g.active.remove(&(tenant.to_string(), job.to_string()));
            let t = g.tenants.entry(tenant.to_string()).or_default();
            t.inflight = t.inflight.saturating_sub(1);
            t.completed += 1;
            t.modeled_s += modeled_s;
            g.inflight = g.inflight.saturating_sub(1);
            g.completed += 1;
            g.modeled_s += modeled_s;
        }
        if failed {
            self.breakers.on_failure(tenant, now);
        } else {
            self.breakers.on_success(tenant);
        }
        self.cvar.notify_all();
    }

    /// Records a served-from-memo replay of an already-completed job:
    /// the client got its frames without a second execution, which
    /// counts as a completion for the service counters (no modeled time
    /// is accrued — nothing ran).
    pub fn note_replay(&self, tenant: &str) {
        let mut g = self.lock();
        g.completed += 1;
        g.tenants.entry(tenant.to_string()).or_default().completed += 1;
    }

    /// Number of admitted-but-unfinished jobs (queued + executing) —
    /// the active-identity index size, for tests and diagnostics.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.lock().active.len()
    }

    /// Marks the queue as shutting down: pending jobs still drain, new
    /// submissions are rejected, and [`JobQueue::next`] returns `None`
    /// once empty.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.cvar.notify_all();
    }

    /// `true` once [`JobQueue::shutdown`] has been called.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.lock().shutdown
    }

    /// Times a tenant's admission breaker has opened (diagnostics).
    #[must_use]
    pub fn breaker_opens(&self, tenant: &str) -> u32 {
        self.breakers.opens(tenant)
    }

    /// Current aggregate counters.
    #[must_use]
    pub fn stats(&self) -> QueueStats {
        let g = self.lock();
        QueueStats {
            completed: g.completed,
            rejected: g.rejected,
            queued: g.pending.len(),
            inflight: g.inflight,
            tenants: g.tenants.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_bench::Flow;

    fn job(tenant: &str, id: &str) -> Job {
        job_with_sink(tenant, id, Arc::new(|_| {}))
    }

    fn job_with_sink(tenant: &str, id: &str, sink: FrameSink) -> Job {
        Job {
            spec: SubmitRequest {
                tenant: tenant.to_string(),
                job: id.to_string(),
                task: "prob000_and2".to_string(),
                verilog: true,
                flow: Flow::Aivril2,
            },
            problem_index: 0,
            seed: crate::job_seed(tenant, id),
            admitted_at: 0.0,
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    fn accepted(a: &Admission) -> bool {
        matches!(a, Admission::Accepted { .. })
    }

    #[test]
    fn capacity_bounds_each_tenant_independently() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        assert!(accepted(&q.submit(job("acme", "b"), 0.0)));
        match q.submit(job("acme", "c"), 0.0) {
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "queue_full");
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // Another tenant still has its own full budget.
        assert!(accepted(&q.submit(job("globex", "a"), 0.0)));
        assert_eq!(q.stats().rejected, 1);
        assert_eq!(q.stats().queued, 3);
    }

    #[test]
    fn inflight_cap_holds_back_second_job_until_completion() {
        let q = JobQueue::new(1, 2, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        assert!(accepted(&q.submit(job("acme", "b"), 0.0)));
        let first = q.try_next().expect("first job runnable");
        assert_eq!(first.spec.job, "a");
        assert!(
            q.try_next().is_none(),
            "tenant at max_inflight=1; second job must wait"
        );
        q.complete("acme", "a", 10.0, false, 1.0);
        let second = q.try_next().expect("slot freed");
        assert_eq!(second.spec.job, "b");
    }

    #[test]
    fn failures_open_only_the_noisy_tenants_breaker() {
        let policy = ResiliencePolicy {
            breaker_threshold: 2,
            ..ResiliencePolicy::default()
        };
        let q = JobQueue::new(2, 2, policy);
        for id in ["a", "b"] {
            assert!(accepted(&q.submit(job("noisy", id), 0.0)));
            q.try_next().expect("runnable");
            q.complete("noisy", id, 5.0, true, 1.0);
        }
        match q.submit(job("noisy", "c"), 1.5) {
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "breaker_open");
                assert!(retry_after_s > 0.0);
            }
            other => panic!("expected breaker rejection, got {other:?}"),
        }
        assert!(q.breaker_opens("noisy") >= 1);
        // The quiet tenant is untouched.
        assert!(accepted(&q.submit(job("quiet", "a"), 1.5)));
        assert_eq!(q.breaker_opens("quiet"), 0);
    }

    fn reject_reason(a: &Admission) -> &'static str {
        match a {
            Admission::Rejected { reason, .. } => reason,
            Admission::Accepted { .. } | Admission::Attached { .. } => {
                panic!("expected rejection, got {a:?}")
            }
        }
    }

    /// Regression (review): tenant names are client-asserted, so
    /// per-tenant bounds alone let a forger queue N budgets and grow
    /// the tenant table (and breaker bank) without bound. The global
    /// caps must hold against distinct forged names.
    #[test]
    fn forged_tenant_flood_is_bounded() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default()).with_global_limits(3, 100);
        // Three tenants with queued work occupy every state slot.
        for t in ["t0", "t1", "t2"] {
            assert!(accepted(&q.submit(job(t, "a"), 0.0)));
        }
        // A flood of fresh names finds no idle tenant to evict: every
        // submission is refused and *no state is created* for it.
        for i in 0..50 {
            let verdict = q.submit(job(&format!("forged{i}"), "a"), 0.0);
            assert_eq!(reject_reason(&verdict), "tenant_limit");
        }
        let stats = q.stats();
        assert_eq!(stats.tenants, 3, "forged names must not grow the table");
        assert_eq!(stats.rejected, 50);
        assert_eq!(stats.queued, 3);
    }

    #[test]
    fn idle_tenants_are_evicted_for_newcomers() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default()).with_global_limits(2, 100);
        // `old` runs a job to completion and goes idle.
        assert!(accepted(&q.submit(job("old", "a"), 0.0)));
        q.try_next().expect("runnable");
        q.complete("old", "a", 5.0, false, 1.0);
        // `busy` holds the second slot with queued work.
        assert!(accepted(&q.submit(job("busy", "a"), 1.0)));
        // A newcomer takes the idle tenant's slot instead of a reject.
        assert!(accepted(&q.submit(job("new", "a"), 2.0)));
        let stats = q.stats();
        assert_eq!(stats.tenants, 2, "idle `old` was evicted");
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn global_job_cap_rejects_server_full() {
        let q = JobQueue::new(2, 2, ResiliencePolicy::default()).with_global_limits(100, 2);
        assert!(accepted(&q.submit(job("t0", "a"), 0.0)));
        assert!(accepted(&q.submit(job("t1", "a"), 0.0)));
        // Per-tenant budgets have room, but the service-wide cap is hit.
        let verdict = q.submit(job("t2", "a"), 0.0);
        assert_eq!(reject_reason(&verdict), "server_full");
        match verdict {
            Admission::Rejected { retry_after_s, .. } => assert!(retry_after_s > 0.0),
            Admission::Accepted { .. } | Admission::Attached { .. } => unreachable!(),
        }
        // Completions free global capacity again.
        q.try_next().expect("runnable");
        q.complete("t0", "a", 1.0, false, 1.0);
        assert!(accepted(&q.submit(job("t2", "a"), 1.0)));
    }

    /// Regression (review): the breaker used to be consulted *before*
    /// the capacity checks, so a queue-full submission could consume
    /// the open→half-open transition and leave the breaker half-open
    /// with no probe in flight. Capacity now rejects first, and while
    /// the single admitted probe is outstanding further submissions
    /// are refused `breaker_open`.
    #[test]
    fn half_open_probe_is_single_and_never_wasted_on_full_queues() {
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 10.0,
            ..ResiliencePolicy::default()
        };
        let q = JobQueue::new(1, 1, policy);
        // One failed completion opens the tenant's breaker.
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        q.try_next().expect("runnable");
        q.complete("acme", "a", 1.0, true, 1.0);
        assert_eq!(
            reject_reason(&q.submit(job("acme", "b"), 2.0)),
            "breaker_open"
        );
        // Cooldown lapsed: the first submission is admitted as the
        // probe, a second is refused while the probe is outstanding.
        assert!(accepted(&q.submit(job("acme", "probe"), 20.0)));
        assert_eq!(
            reject_reason(&q.submit(job("acme", "burst"), 20.0)),
            "breaker_open"
        );
        // Fill the remaining capacity from another angle: a queue-full
        // rejection reports `queue_full` and must not touch the
        // breaker. (Capacity here is 2; the probe occupies one slot.)
        assert!(accepted(&q.submit(job("quiet", "x"), 20.0)));
        // The probe completes successfully: the breaker closes and the
        // tenant is fully admitted again.
        let probe = q.try_next().expect("probe runnable");
        assert_eq!(probe.spec.job, "probe");
        q.complete("acme", "probe", 1.0, false, 21.0);
        assert!(accepted(&q.submit(job("acme", "after"), 21.0)));
    }

    #[test]
    fn full_queue_rejection_does_not_consume_the_probe() {
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 10.0,
            ..ResiliencePolicy::default()
        };
        let q = JobQueue::new(1, 0, policy);
        // Open the breaker, then fill the tenant's capacity with the
        // half-open probe after the cooldown.
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        q.try_next().expect("runnable");
        q.complete("acme", "a", 1.0, true, 1.0);
        assert!(accepted(&q.submit(job("acme", "probe"), 20.0)));
        // Capacity (1) is exhausted: the rejection is `queue_full`,
        // reported before the breaker is consulted.
        assert_eq!(
            reject_reason(&q.submit(job("acme", "c"), 20.0)),
            "queue_full"
        );
        // The probe's outcome still resolves the breaker normally.
        q.try_next().expect("probe runnable");
        q.complete("acme", "probe", 1.0, false, 21.0);
        assert!(accepted(&q.submit(job("acme", "d"), 21.0)));
    }

    #[test]
    fn resubmitting_an_active_job_attaches_instead_of_requeueing() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        let first_frames = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink_frames = Arc::clone(&first_frames);
        let first_sink: FrameSink = Arc::new(move |f: &str| {
            sink_frames
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(f.to_string());
        });
        assert!(accepted(
            &q.submit(job_with_sink("acme", "a", first_sink), 0.0)
        ));
        // The resubmission attaches: no second queue entry, and the
        // job's frames now land at the new sink.
        let second_frames = Arc::new(Mutex::new(Vec::<String>::new()));
        let sink_frames = Arc::clone(&second_frames);
        let second_sink: FrameSink = Arc::new(move |f: &str| {
            sink_frames
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(f.to_string());
        });
        let verdict = q.submit(job_with_sink("acme", "a", second_sink), 1.0);
        assert!(matches!(verdict, Admission::Attached { .. }), "{verdict:?}");
        assert_eq!(q.stats().queued, 1, "attach queues nothing");
        let claimed = q.try_next().expect("one runnable job");
        claimed.send("frame");
        assert!(first_frames.lock().unwrap().is_empty(), "old sink detached");
        assert_eq!(*second_frames.lock().unwrap(), ["frame"]);
        q.complete("acme", "a", 1.0, false, 2.0);
        assert_eq!(q.active_jobs(), 0, "completion clears the identity");
        // After completion the identity is free again: a fresh submit
        // is a fresh admission, not an attach.
        assert!(accepted(&q.submit(job("acme", "a"), 3.0)));
    }

    #[test]
    fn replays_count_as_completions_without_modeled_time() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        q.note_replay("acme");
        assert_eq!(q.stats().completed, 1);
        assert_eq!(q.stats().inflight, 0);
    }

    /// Regression: a breaker with an unbounded cooldown used to leak a
    /// non-finite `retry_after_s` into the rejection (and from there
    /// onto the wire). Hints are clamped into `[MIN_RETRY_S,
    /// MAX_RETRY_S]` at the serialization boundary.
    #[test]
    fn rejection_hints_are_clamped_finite() {
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: f64::INFINITY,
            ..ResiliencePolicy::default()
        };
        let q = JobQueue::new(1, 1, policy);
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        q.try_next().expect("runnable");
        q.complete("acme", "a", 1.0, true, 1.0);
        match q.submit(job("acme", "b"), 2.0) {
            Admission::Rejected {
                reason,
                retry_after_s,
            } => {
                assert_eq!(reason, "breaker_open");
                assert!(retry_after_s.is_finite(), "{retry_after_s}");
                assert!((MIN_RETRY_S..=MAX_RETRY_S).contains(&retry_after_s));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The pure clamp is total over the pathological inputs.
        for bad in [f64::NAN, f64::NEG_INFINITY, -3.0, 0.0] {
            let v = clamp_retry_hint(bad);
            assert!(v.is_finite() && v >= MIN_RETRY_S, "{bad} -> {v}");
        }
        assert_eq!(clamp_retry_hint(f64::INFINITY), MAX_RETRY_S);
        assert_eq!(clamp_retry_hint(7.0), 7.0);
    }

    #[test]
    fn shutdown_rejects_new_work_and_drains_old() {
        let q = JobQueue::new(1, 1, ResiliencePolicy::default());
        assert!(accepted(&q.submit(job("acme", "a"), 0.0)));
        q.shutdown();
        match q.submit(job("acme", "b"), 0.0) {
            Admission::Rejected { reason, .. } => assert_eq!(reason, "shutting_down"),
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(q.next().expect("drains pending").spec.job, "a");
        q.complete("acme", "a", 1.0, false, 0.5);
        assert!(q.next().is_none(), "drained + shutdown ends the loop");
    }
}
