//! HDL source files as the tool suite sees them.

use std::fmt;

/// Which hardware description language a file is written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Verilog-2001.
    Verilog,
    /// VHDL-93.
    Vhdl,
}

impl Language {
    /// Guesses the language from a file extension (`.v`/`.sv` →
    /// Verilog, `.vhd`/`.vhdl` → VHDL); defaults to Verilog.
    #[must_use]
    pub fn from_file_name(name: &str) -> Language {
        let lower = name.to_ascii_lowercase();
        if lower.ends_with(".vhd") || lower.ends_with(".vhdl") {
            Language::Vhdl
        } else {
            Language::Verilog
        }
    }

    /// Conventional file extension.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            Language::Verilog => "v",
            Language::Vhdl => "vhd",
        }
    }
}

impl fmt::Display for Language {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Language::Verilog => f.write_str("Verilog"),
            Language::Vhdl => f.write_str("VHDL"),
        }
    }
}

/// One named HDL source file handed to the tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlFile {
    /// File name shown in logs (e.g. `shift_register.v`).
    pub name: String,
    /// Source text.
    pub text: String,
    /// Language, normally derived from the extension.
    pub language: Language,
}

impl HdlFile {
    /// Creates a file, deriving the language from the name's extension.
    #[must_use]
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> HdlFile {
        let name = name.into();
        let language = Language::from_file_name(&name);
        HdlFile {
            name,
            text: text.into(),
            language,
        }
    }

    /// Total size in bytes — the workload measure for compile latency.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn language_detection() {
        assert_eq!(Language::from_file_name("a.v"), Language::Verilog);
        assert_eq!(Language::from_file_name("a.sv"), Language::Verilog);
        assert_eq!(Language::from_file_name("a.VHD"), Language::Vhdl);
        assert_eq!(Language::from_file_name("a.vhdl"), Language::Vhdl);
        assert_eq!(Language::from_file_name("noext"), Language::Verilog);
    }

    #[test]
    fn file_construction() {
        let f = HdlFile::new("top.vhd", "entity top is end;");
        assert_eq!(f.language, Language::Vhdl);
        assert_eq!(f.byte_len(), 18);
    }

    #[test]
    fn extensions_roundtrip() {
        for lang in [Language::Verilog, Language::Vhdl] {
            let name = format!("x.{}", lang.extension());
            assert_eq!(Language::from_file_name(&name), lang);
        }
    }
}
