//! Incremental-compile invalidation suite: the per-file parse memo and
//! the closure-keyed elaboration memo must replay exactly when sources
//! are untouched, re-run exactly when they change, fall back to a
//! fresh elaboration whenever the closure key cannot be trusted — and
//! never change a single observable byte in any mode.

use aivril_bench::{results_json, Flow, Harness, HarnessConfig, ResultSection};
use aivril_eda::{CompileReport, EdaCache, HdlFile, XsimToolSuite};
use aivril_llm::profiles;

/// Eight chained Verilog stages, one uninstantiated scratch module,
/// and the top (declared last so `find_top` resolves it).
fn chain_files() -> Vec<HdlFile> {
    let mut files = Vec::new();
    for i in 0..8 {
        files.push(HdlFile::new(
            format!("stage{i}.v"),
            format!(
                "module stage{i}(input [31:0] d, output [31:0] q);\n  \
                 assign q = d + 32'd{};\nendmodule\n",
                i + 1
            ),
        ));
    }
    files.push(HdlFile::new(
        "scratch.v",
        "module scratch(input s, output t);\n  assign t = ~s;\nendmodule\n",
    ));
    let mut top = String::from("module chain_top(input [31:0] din, output [31:0] dout);\n");
    for i in 0..8 {
        top.push_str(&format!("  wire [31:0] w{i};\n"));
    }
    for i in 0..8 {
        let src = if i == 0 {
            "din".to_string()
        } else {
            format!("w{}", i - 1)
        };
        top.push_str(&format!("  stage{i} u{i}(.d({src}), .q(w{i}));\n"));
    }
    top.push_str("  assign dout = w7;\nendmodule\n");
    files.push(HdlFile::new("top.v", top));
    files
}

fn incremental_suite(cache: &EdaCache) -> XsimToolSuite {
    XsimToolSuite::new().with_cache(cache.clone())
}

fn plain_suite() -> XsimToolSuite {
    XsimToolSuite::new()
}

/// The whole observable compile outcome, for byte-comparison between
/// the incremental and the from-scratch path.
fn fingerprint(report: &CompileReport) -> (bool, String, usize, u64) {
    (
        report.success,
        report.log.clone(),
        report.messages.len(),
        report.modeled_latency.to_bits(),
    )
}

#[test]
fn untouched_sources_hit_both_memos() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, d1) = suite.compile_to_design(&files, None);
    assert!(r1.success, "chain must compile: {}", r1.log);
    assert_eq!(d1.as_deref().map(|d| d.top.as_str()), Some("chain_top"));
    let before = cache.stats();
    assert_eq!(
        (before.parse_hits, before.parse_misses),
        (0, 10),
        "cold compile parses every file once"
    );
    assert_eq!(
        (before.elab_hits, before.elab_misses),
        (0, 1),
        "cold compile elaborates once"
    );

    // Same sources with the top now explicit: a different whole-compile
    // key, but every file and the closure replay from the memos.
    let (r2, _) = suite.compile_to_design(&files, Some("chain_top"));
    assert!(r2.success);
    let after = cache.stats().since(&before);
    assert_eq!(
        (after.parse_hits, after.parse_misses),
        (10, 0),
        "identical texts at identical indices must all hit"
    );
    assert_eq!(
        (after.elab_hits, after.elab_misses),
        (1, 0),
        "an unchanged instantiation closure must replay elaboration"
    );
}

#[test]
fn edit_outside_the_closure_replays_elaboration() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, _) = suite.compile_to_design(&files, None);
    assert!(r1.success);
    let before = cache.stats();

    let mut edited = files.clone();
    edited[8].text.push_str("// cosmetic revision\n");
    let (r2, _) = suite.compile_to_design(&edited, None);
    assert!(r2.success);
    let delta = cache.stats().since(&before);
    assert_eq!(
        (delta.parse_hits, delta.parse_misses),
        (9, 1),
        "only the edited file re-parses"
    );
    assert_eq!(
        (delta.elab_hits, delta.elab_misses),
        (1, 0),
        "an edit outside chain_top's instantiation closure must not \
         re-elaborate"
    );
    assert_eq!(
        fingerprint(&r2),
        fingerprint(&plain_suite().compile_to_design(&edited, None).0),
        "replayed elaboration must be byte-identical to a fresh compile"
    );
}

#[test]
fn edited_module_in_the_closure_reelaborates() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, _) = suite.compile_to_design(&files, None);
    assert!(r1.success);
    let before = cache.stats();

    let mut edited = files.clone();
    edited[3].text = edited[3].text.replace("32'd4", "32'd40");
    let (r2, d2) = suite.compile_to_design(&edited, None);
    assert!(r2.success);
    let delta = cache.stats().since(&before);
    assert_eq!((delta.parse_hits, delta.parse_misses), (9, 1));
    assert_eq!(
        (delta.elab_hits, delta.elab_misses),
        (0, 1),
        "an edited module inside the closure must re-elaborate"
    );
    // The re-elaborated design actually reflects the edit.
    let fresh = plain_suite().compile_to_design(&edited, None);
    assert_eq!(fingerprint(&r2), fingerprint(&fresh.0));
    assert_eq!(
        format!("{:?}", d2),
        format!("{:?}", fresh.1),
        "memoized path must produce the same design as a fresh compile"
    );
}

#[test]
fn renamed_top_gets_its_own_closure_key() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, _) = suite.compile_to_design(&files, None);
    assert!(r1.success);
    let before = cache.stats();

    // Rename the top module: find_top now resolves a different name,
    // so the closure key differs and elaboration must re-run — a
    // replay of chain_top's entry would report the wrong top.
    let mut renamed = files.clone();
    renamed[9].text = renamed[9].text.replace("chain_top", "alt_top");
    let (r2, d2) = suite.compile_to_design(&renamed, None);
    assert!(r2.success);
    let delta = cache.stats().since(&before);
    assert_eq!(
        (delta.elab_hits, delta.elab_misses),
        (0, 1),
        "a renamed top must never replay the old top's elaboration"
    );
    assert_eq!(d2.as_deref().map(|d| d.top.as_str()), Some("alt_top"));
}

#[test]
fn removed_module_reports_identically_to_a_fresh_compile() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, _) = suite.compile_to_design(&files, None);
    assert!(r1.success);

    // Drop an instantiated stage: the closure walk sees an unknown
    // instance name, elaboration diagnoses it, and the failure must be
    // byte-identical to the non-incremental path.
    let mut removed = files.clone();
    removed.remove(3);
    let (r2, d2) = suite.compile_to_design(&removed, None);
    assert!(!r2.success, "missing module must fail");
    assert!(d2.is_none());
    let fresh = plain_suite().compile_to_design(&removed, None);
    assert!(!fresh.0.success);
    assert_eq!(fingerprint(&r2), fingerprint(&fresh.0));
}

#[test]
fn duplicate_module_names_bypass_the_elab_memo() {
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let files = chain_files();
    let (r1, _) = suite.compile_to_design(&files, None);
    assert!(r1.success);
    let before = cache.stats();

    // A second definition of stage2: redeclaration is a *global*
    // diagnostic, so the closure key cannot represent the design and
    // the memo must be bypassed entirely (no hit, no miss).
    let mut dup = files.clone();
    dup.push(HdlFile::new(
        "stage2_copy.v",
        "module stage2(input [31:0] d, output [31:0] q);\n  \
         assign q = d;\nendmodule\n",
    ));
    let (r2, _) = suite.compile_to_design(&dup, None);
    let delta = cache.stats().since(&before);
    assert_eq!(
        (delta.elab_hits, delta.elab_misses),
        (0, 0),
        "ambiguous module sets must not touch the elaboration memo"
    );
    assert_eq!(
        fingerprint(&r2),
        fingerprint(&plain_suite().compile_to_design(&dup, None).0)
    );
}

#[test]
fn vhdl_closure_replays_and_falls_back_like_verilog() {
    let inner = HdlFile::new(
        "inner.vhd",
        "entity inner is\n  port (d : in std_logic; q : out std_logic);\nend inner;\n\
         architecture rtl of inner is\nbegin\n  q <= d;\nend rtl;\n",
    );
    let spare = HdlFile::new(
        "spare.vhd",
        "entity spare is\n  port (s : in std_logic; t : out std_logic);\nend spare;\n\
         architecture rtl of spare is\nbegin\n  t <= s;\nend rtl;\n",
    );
    let top = HdlFile::new(
        "wrap.vhd",
        "entity wrap is\n  port (d : in std_logic; q : out std_logic);\nend wrap;\n\
         architecture rtl of wrap is\nbegin\n  u0 : entity inner port map (d => d, q => q);\n\
         end rtl;\n",
    );
    let files = vec![inner, spare, top];
    let cache = EdaCache::new();
    let suite = incremental_suite(&cache);
    let (r1, d1) = suite.compile_to_design(&files, None);
    assert!(r1.success, "{}", r1.log);
    assert_eq!(d1.as_deref().map(|d| d.top.as_str()), Some("wrap"));
    let before = cache.stats();

    // An edit to the uninstantiated entity replays the elaboration.
    let mut edited = files.clone();
    edited[1].text.push_str("-- cosmetic\n");
    let (r2, _) = suite.compile_to_design(&edited, None);
    assert!(r2.success);
    let delta = cache.stats().since(&before);
    assert_eq!((delta.parse_hits, delta.parse_misses), (2, 1));
    assert_eq!((delta.elab_hits, delta.elab_misses), (1, 0));

    // A second architecture for `inner` makes selection order-
    // dependent: the memo must be bypassed.
    let before = cache.stats();
    let mut second_arch = files.clone();
    second_arch.push(HdlFile::new(
        "inner_alt.vhd",
        "architecture alt of inner is\nbegin\n  q <= d;\nend alt;\n",
    ));
    let (r3, _) = suite.compile_to_design(&second_arch, None);
    let delta = cache.stats().since(&before);
    assert_eq!(
        (delta.elab_hits, delta.elab_misses),
        (0, 0),
        "two architectures for one entity must bypass the memo"
    );
    assert_eq!(
        fingerprint(&r3),
        fingerprint(&plain_suite().compile_to_design(&second_arch, None).0)
    );
}

/// The end-to-end guarantee behind every `results/*.txt` artifact: the
/// canonical results JSON (what the table/figure binaries render from)
/// is byte-identical with the incremental memos on vs. off, at any
/// thread count.
#[test]
fn harness_results_are_byte_identical_incremental_on_off() {
    let run = |incremental: bool, threads: usize| -> String {
        let harness = Harness::new(HarnessConfig {
            samples: 2,
            task_limit: 4,
            threads,
            eda_cache: true,
            incremental,
            canonical: true,
            ..HarnessConfig::default()
        });
        let (outcomes, stats) =
            harness.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
        results_json(&[ResultSection {
            label: "aivril2".into(),
            outcomes,
            stats,
        }])
    };
    let reference = run(true, 1);
    for (incremental, threads) in [(true, 4), (false, 1), (false, 4)] {
        assert_eq!(
            reference,
            run(incremental, threads),
            "canonical artifact must not depend on incremental={incremental} \
             threads={threads}"
        );
    }
}
