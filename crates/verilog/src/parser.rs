//! Recursive-descent parser for the Verilog-2001 subset.
//!
//! The parser is resilient: syntax errors are recorded as Vivado-style
//! diagnostics and parsing resynchronises at `;` / `endmodule`
//! boundaries, so a single fault produces a focused log rather than an
//! avalanche — important for the quality of the Review Agent's
//! corrective prompts.

use crate::ast::*;
use crate::token::{Keyword as Kw, Punct, Token, TokenKind};
use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::source::Span;

/// Parses a token stream into modules, appending errors to `diags`.
pub fn parse(tokens: Vec<Token>, diags: &mut Diagnostics) -> SourceUnit {
    let mut p = Parser {
        tokens,
        pos: 0,
        diags,
    };
    let mut unit = SourceUnit::default();
    while !p.at_eof() {
        if p.eat_kw(Kw::Module) {
            if let Some(m) = p.parse_module() {
                unit.modules.push(std::sync::Arc::new(m));
            }
        } else {
            let tok = p.peek().clone();
            p.error(
                format!("expected 'module', found {}", tok.describe()),
                tok.span,
            );
            p.bump();
            // Skip forward to the next 'module'.
            while !p.at_eof() && !p.check_kw(Kw::Module) {
                p.bump();
            }
        }
    }
    unit
}

struct Parser<'d> {
    tokens: Vec<Token>,
    pos: usize,
    diags: &'d mut Diagnostics,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, p: Punct) -> bool {
        self.peek().kind == TokenKind::Punct(p)
    }

    fn check_kw(&self, k: Kw) -> bool {
        self.peek().kind == TokenKind::Keyword(k)
    }

    fn eat(&mut self, p: Punct) -> bool {
        if self.check(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Kw) -> bool {
        if self.check_kw(k) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&mut self, message: String, span: Span) {
        // Cap the error count so corrupted files produce focused logs.
        if self.diags.error_count() < 20 {
            self.diags
                .push(Diagnostic::error(codes::VLOG_SYNTAX, message, span));
        }
    }

    fn expect(&mut self, p: Punct) -> Option<Token> {
        if self.check(p) {
            return Some(self.bump());
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected '{p}', found {}", tok.describe()),
            tok.span,
        );
        None
    }

    fn expect_ident(&mut self) -> Option<(String, Span)> {
        if self.peek().kind == TokenKind::Ident {
            let t = self.bump();
            return Some((t.text, t.span));
        }
        let tok = self.peek().clone();
        self.error(
            format!("expected identifier, found {}", tok.describe()),
            tok.span,
        );
        None
    }

    /// Skips tokens until after the next `;`, or until a module boundary.
    fn sync_to_semi(&mut self) {
        while !self.at_eof() {
            if self.eat(Punct::Semi) {
                return;
            }
            if self.check_kw(Kw::Endmodule) || self.check_kw(Kw::Module) {
                return;
            }
            self.bump();
        }
    }

    // ------------------------------------------------------ module level

    fn parse_module(&mut self) -> Option<Module> {
        let (name, span) = self.expect_ident()?;
        let mut params = Vec::new();
        let mut ports = Vec::new();
        let mut nonansi_ports = Vec::new();
        if self.eat(Punct::Hash) {
            self.expect(Punct::LParen)?;
            self.parse_param_list(&mut params);
            self.expect(Punct::RParen);
        }
        if self.eat(Punct::LParen) {
            // A header whose first entry is a bare identifier is the
            // non-ANSI style: directions come from body declarations.
            if self.peek().kind == TokenKind::Ident {
                while let Some((pname, pspan)) = self.expect_ident() {
                    nonansi_ports.push((pname, pspan));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
            } else {
                self.parse_port_list(&mut ports);
            }
            self.expect(Punct::RParen);
        }
        if self.expect(Punct::Semi).is_none() {
            self.sync_to_semi();
        }
        let mut items = Vec::new();
        loop {
            if self.eat_kw(Kw::Endmodule) {
                break;
            }
            if self.at_eof() {
                let tok = self.peek().clone();
                self.error("expected 'endmodule', found end of file".into(), tok.span);
                break;
            }
            match self.parse_item() {
                Some(mut found) => items.append(&mut found),
                None => self.sync_to_semi(),
            }
        }
        Some(Module {
            name,
            span,
            params,
            ports,
            nonansi_ports,
            items,
        })
    }

    fn parse_param_list(&mut self, params: &mut Vec<ParamDecl>) {
        loop {
            self.eat_kw(Kw::Parameter);
            let Some((name, span)) = self.expect_ident() else {
                return;
            };
            if self.expect(Punct::Assign).is_none() {
                return;
            }
            let default = self.parse_expr();
            params.push(ParamDecl {
                name,
                default,
                span,
                local: false,
            });
            if !self.eat(Punct::Comma) {
                return;
            }
        }
    }

    fn parse_port_list(&mut self, ports: &mut Vec<Port>) {
        if self.check(Punct::RParen) {
            return;
        }
        let mut dir = PortDir::Input;
        let mut net_type = NetType::Wire;
        let mut range: Option<(Expr, Expr)> = None;
        loop {
            let explicit_dir = if self.eat_kw(Kw::Input) {
                Some(PortDir::Input)
            } else if self.eat_kw(Kw::Output) {
                Some(PortDir::Output)
            } else if self.eat_kw(Kw::Inout) {
                Some(PortDir::Inout)
            } else {
                None
            };
            if let Some(d) = explicit_dir {
                dir = d;
                net_type = if self.eat_kw(Kw::Reg) {
                    NetType::Reg
                } else {
                    self.eat_kw(Kw::Wire);
                    NetType::Wire
                };
                self.eat_kw(Kw::Signed);
                range = if self.check(Punct::LBracket) {
                    self.parse_range()
                } else {
                    None
                };
            }
            let Some((name, span)) = self.expect_ident() else {
                return;
            };
            ports.push(Port {
                dir,
                net_type,
                range: range.clone(),
                name,
                span,
            });
            if !self.eat(Punct::Comma) {
                return;
            }
        }
    }

    fn parse_range(&mut self) -> Option<(Expr, Expr)> {
        self.expect(Punct::LBracket)?;
        let msb = self.parse_expr();
        self.expect(Punct::Colon)?;
        let lsb = self.parse_expr();
        self.expect(Punct::RBracket)?;
        Some((msb, lsb))
    }

    fn parse_item(&mut self) -> Option<Vec<Item>> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Keyword(Kw::Input)
            | TokenKind::Keyword(Kw::Output)
            | TokenKind::Keyword(Kw::Inout) => {
                let dir = if self.eat_kw(Kw::Input) {
                    PortDir::Input
                } else if self.eat_kw(Kw::Output) {
                    PortDir::Output
                } else {
                    self.bump();
                    PortDir::Inout
                };
                let net_type = if self.eat_kw(Kw::Reg) {
                    NetType::Reg
                } else {
                    self.eat_kw(Kw::Wire);
                    NetType::Wire
                };
                self.eat_kw(Kw::Signed);
                let range = if self.check(Punct::LBracket) {
                    self.parse_range()
                } else {
                    None
                };
                let mut names = Vec::new();
                loop {
                    let (name, span) = self.expect_ident()?;
                    names.push((name, span));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
                Some(vec![Item::PortDecl {
                    dir,
                    net_type,
                    range,
                    names,
                }])
            }
            TokenKind::Keyword(Kw::Wire) | TokenKind::Keyword(Kw::Reg) => {
                let net_type = if self.eat_kw(Kw::Reg) {
                    NetType::Reg
                } else {
                    self.bump();
                    NetType::Wire
                };
                self.eat_kw(Kw::Signed);
                let range = if self.check(Punct::LBracket) {
                    self.parse_range()
                } else {
                    None
                };
                let mut names = Vec::new();
                let mut mems = Vec::new();
                loop {
                    let (name, span) = self.expect_ident()?;
                    if self.check(Punct::LBracket) {
                        // Array dimension: a memory declaration.
                        let (a, b) = self.parse_range()?;
                        if net_type != NetType::Reg {
                            self.error("memories must be declared as 'reg'".into(), span);
                        }
                        mems.push((name, (a, b), span));
                    } else {
                        let init = if self.eat(Punct::Assign) {
                            Some(self.parse_expr())
                        } else {
                            None
                        };
                        names.push((name, span, init));
                    }
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
                let mut items = Vec::new();
                if !names.is_empty() {
                    items.push(Item::NetDecl {
                        net_type,
                        range: range.clone(),
                        names,
                    });
                }
                if !mems.is_empty() {
                    items.push(Item::MemDecl {
                        width_range: range,
                        names: mems,
                    });
                }
                Some(items)
            }
            TokenKind::Keyword(Kw::Integer) => {
                self.bump();
                let mut names = Vec::new();
                loop {
                    let (name, span) = self.expect_ident()?;
                    names.push((name, span));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
                Some(vec![Item::IntegerDecl { names }])
            }
            TokenKind::Keyword(Kw::Parameter) | TokenKind::Keyword(Kw::Localparam) => {
                let local = tok.kind == TokenKind::Keyword(Kw::Localparam);
                self.bump();
                let mut items = Vec::new();
                loop {
                    let (name, span) = self.expect_ident()?;
                    self.expect(Punct::Assign)?;
                    let default = self.parse_expr();
                    items.push(Item::Param(ParamDecl {
                        name,
                        default,
                        span,
                        local,
                    }));
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
                Some(items)
            }
            TokenKind::Keyword(Kw::Assign) => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    let target = self.parse_lvalue_expr()?;
                    self.expect(Punct::Assign)?;
                    let expr = self.parse_expr();
                    items.push(Item::ContinuousAssign {
                        target,
                        expr,
                        span: tok.span,
                    });
                    if !self.eat(Punct::Comma) {
                        break;
                    }
                }
                self.expect(Punct::Semi)?;
                Some(items)
            }
            TokenKind::Keyword(Kw::Always) => {
                self.bump();
                let events = if self.eat(Punct::At) {
                    Some(self.parse_event_list()?)
                } else {
                    None
                };
                let body = self.parse_stmt()?;
                Some(vec![Item::Always {
                    events,
                    body,
                    span: tok.span,
                }])
            }
            TokenKind::Keyword(Kw::Initial) => {
                self.bump();
                let body = self.parse_stmt()?;
                Some(vec![Item::Initial {
                    body,
                    span: tok.span,
                }])
            }
            TokenKind::Keyword(Kw::Function) => {
                self.bump();
                // Tolerate `automatic`.
                if self.peek().kind == TokenKind::Ident && self.peek().text == "automatic" {
                    self.bump();
                }
                let range = if self.check(Punct::LBracket) {
                    self.parse_range()
                } else {
                    None
                };
                let (name, _) = self.expect_ident()?;
                self.expect(Punct::Semi)?;
                let mut inputs = Vec::new();
                while self.eat_kw(Kw::Input) {
                    self.eat_kw(Kw::Wire);
                    self.eat_kw(Kw::Signed);
                    let arange = if self.check(Punct::LBracket) {
                        self.parse_range()
                    } else {
                        None
                    };
                    loop {
                        let (aname, aspan) = self.expect_ident()?;
                        inputs.push((aname, arange.clone(), aspan));
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect(Punct::Semi)?;
                }
                let body = self.parse_stmt()?;
                if !self.eat_kw(Kw::Endfunction) {
                    let t = self.peek().clone();
                    self.error(
                        format!("expected 'endfunction', found {}", t.describe()),
                        t.span,
                    );
                    return None;
                }
                Some(vec![Item::Function(FunctionDecl {
                    name,
                    range,
                    inputs,
                    body,
                    span: tok.span,
                })])
            }
            TokenKind::Ident => {
                // Module instantiation: modname [#(...)] instname ( ... ) ;
                let module = self.bump().text;
                let mut param_overrides = Vec::new();
                if self.eat(Punct::Hash) {
                    self.expect(Punct::LParen)?;
                    loop {
                        if self.eat(Punct::Dot) {
                            let (pname, _) = self.expect_ident()?;
                            self.expect(Punct::LParen)?;
                            let e = self.parse_expr();
                            self.expect(Punct::RParen)?;
                            param_overrides.push((pname, e));
                        } else {
                            // Positional parameter override — rare; named
                            // slot is synthesised by ordinal later.
                            let e = self.parse_expr();
                            param_overrides.push((String::new(), e));
                        }
                        if !self.eat(Punct::Comma) {
                            break;
                        }
                    }
                    self.expect(Punct::RParen)?;
                }
                let (name, _) = self.expect_ident()?;
                self.expect(Punct::LParen)?;
                let connections = self.parse_connections()?;
                self.expect(Punct::RParen)?;
                self.expect(Punct::Semi)?;
                Some(vec![Item::Instance {
                    module,
                    name,
                    param_overrides,
                    connections,
                    span: tok.span,
                }])
            }
            _ => {
                self.error(format!("syntax error near {}", tok.describe()), tok.span);
                None
            }
        }
    }

    fn parse_connections(&mut self) -> Option<Connections> {
        if self.check(Punct::RParen) {
            return Some(Connections::Positional(Vec::new()));
        }
        if self.check(Punct::Dot) {
            let mut conns = Vec::new();
            loop {
                let dot = self.expect(Punct::Dot)?;
                let (pname, _) = self.expect_ident()?;
                self.expect(Punct::LParen)?;
                let expr = if self.check(Punct::RParen) {
                    None
                } else {
                    Some(self.parse_expr())
                };
                self.expect(Punct::RParen)?;
                conns.push((pname, expr, dot.span));
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            Some(Connections::Named(conns))
        } else {
            let mut exprs = Vec::new();
            loop {
                exprs.push(self.parse_expr());
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            Some(Connections::Positional(exprs))
        }
    }

    fn parse_event_list(&mut self) -> Option<Vec<EventExpr>> {
        // Forms: @* | @(*) | @(ev [or|, ev]*)
        if self.check(Punct::Star) {
            self.bump();
            return Some(Vec::new());
        }
        self.expect(Punct::LParen)?;
        if self.eat(Punct::Star) {
            self.expect(Punct::RParen)?;
            return Some(Vec::new());
        }
        let mut events = Vec::new();
        loop {
            let ev = if self.eat_kw(Kw::Posedge) {
                EventExpr::Posedge(self.parse_expr())
            } else if self.eat_kw(Kw::Negedge) {
                EventExpr::Negedge(self.parse_expr())
            } else {
                EventExpr::Any(self.parse_expr())
            };
            events.push(ev);
            if !(self.eat_kw(Kw::Or) || self.eat(Punct::Comma)) {
                break;
            }
        }
        self.expect(Punct::RParen)?;
        Some(events)
    }

    // ------------------------------------------------------- statements

    fn parse_stmt(&mut self) -> Option<Stmt> {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Keyword(Kw::Begin) => {
                self.bump();
                // Optional block label.
                if self.eat(Punct::Colon) {
                    self.expect_ident();
                }
                let mut stmts = Vec::new();
                loop {
                    if self.eat_kw(Kw::End) {
                        break;
                    }
                    if self.at_eof() {
                        self.error("expected 'end', found end of file".into(), tok.span);
                        break;
                    }
                    match self.parse_stmt() {
                        Some(s) => stmts.push(s),
                        None => {
                            self.sync_to_semi();
                            if self.check_kw(Kw::Endmodule) {
                                break;
                            }
                        }
                    }
                }
                Some(Stmt::Block(stmts))
            }
            TokenKind::Keyword(Kw::If) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let cond = self.parse_expr();
                self.expect(Punct::RParen)?;
                let then = Box::new(self.parse_stmt()?);
                let els = if self.eat_kw(Kw::Else) {
                    Some(Box::new(self.parse_stmt()?))
                } else {
                    None
                };
                Some(Stmt::If { cond, then, els })
            }
            TokenKind::Keyword(Kw::Case)
            | TokenKind::Keyword(Kw::Casez)
            | TokenKind::Keyword(Kw::Casex) => {
                let wildcard = !matches!(tok.kind, TokenKind::Keyword(Kw::Case));
                self.bump();
                self.expect(Punct::LParen)?;
                let subject = self.parse_expr();
                self.expect(Punct::RParen)?;
                let mut arms = Vec::new();
                let mut default = None;
                loop {
                    if self.eat_kw(Kw::Endcase) {
                        break;
                    }
                    if self.at_eof() {
                        self.error("expected 'endcase', found end of file".into(), tok.span);
                        break;
                    }
                    if self.eat_kw(Kw::Default) {
                        self.eat(Punct::Colon);
                        default = Some(Box::new(self.parse_stmt()?));
                        continue;
                    }
                    let mut labels = vec![self.parse_expr()];
                    while self.eat(Punct::Comma) {
                        labels.push(self.parse_expr());
                    }
                    self.expect(Punct::Colon)?;
                    let body = self.parse_stmt()?;
                    arms.push((labels, body));
                }
                Some(Stmt::Case {
                    subject,
                    arms,
                    default,
                    wildcard,
                    span: tok.span,
                })
            }
            TokenKind::Keyword(Kw::For) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let init_t = self.parse_lvalue_expr()?;
                self.expect(Punct::Assign)?;
                let init_v = self.parse_expr();
                self.expect(Punct::Semi)?;
                let cond = self.parse_expr();
                self.expect(Punct::Semi)?;
                let step_t = self.parse_lvalue_expr()?;
                self.expect(Punct::Assign)?;
                let step_v = self.parse_expr();
                self.expect(Punct::RParen)?;
                let body = Box::new(self.parse_stmt()?);
                Some(Stmt::For {
                    init: (init_t, init_v),
                    cond,
                    step: (step_t, step_v),
                    body,
                })
            }
            TokenKind::Keyword(Kw::While) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let cond = self.parse_expr();
                self.expect(Punct::RParen)?;
                Some(Stmt::While {
                    cond,
                    body: Box::new(self.parse_stmt()?),
                })
            }
            TokenKind::Keyword(Kw::Repeat) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let count = self.parse_expr();
                self.expect(Punct::RParen)?;
                Some(Stmt::Repeat {
                    count,
                    body: Box::new(self.parse_stmt()?),
                })
            }
            TokenKind::Keyword(Kw::Forever) => {
                self.bump();
                Some(Stmt::Forever {
                    body: Box::new(self.parse_stmt()?),
                })
            }
            TokenKind::Keyword(Kw::Wait) => {
                self.bump();
                self.expect(Punct::LParen)?;
                let cond = self.parse_expr();
                self.expect(Punct::RParen)?;
                let then = self.parse_controlled_stmt()?;
                Some(Stmt::WaitCond { cond, then })
            }
            TokenKind::Punct(Punct::Hash) => {
                self.bump();
                let amount = self.parse_delay_value();
                let then = self.parse_controlled_stmt()?;
                Some(Stmt::Delay { amount, then })
            }
            TokenKind::Punct(Punct::At) => {
                self.bump();
                let events = self.parse_event_list()?;
                let then = self.parse_controlled_stmt()?;
                Some(Stmt::EventControl { events, then })
            }
            TokenKind::SysIdent => {
                let name = self.bump().text;
                let mut args = Vec::new();
                if self.eat(Punct::LParen) {
                    if !self.check(Punct::RParen) {
                        loop {
                            if self.peek().kind == TokenKind::Str {
                                args.push(SysArg::Str(self.bump().text));
                            } else {
                                args.push(SysArg::Expr(self.parse_expr()));
                            }
                            if !self.eat(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Punct::RParen)?;
                }
                self.expect(Punct::Semi)?;
                Some(Stmt::SysCall {
                    name,
                    args,
                    span: tok.span,
                })
            }
            TokenKind::Punct(Punct::Semi) => {
                self.bump();
                Some(Stmt::Null)
            }
            TokenKind::Ident | TokenKind::Punct(Punct::LBrace) => {
                let target = self.parse_lvalue_expr()?;
                let span = tok.span;
                if self.eat(Punct::Assign) {
                    // Optional intra-assignment delay: `a = #1 b;` — the
                    // delay is honoured as a pre-assignment wait.
                    if self.eat(Punct::Hash) {
                        let amount = self.parse_delay_value();
                        let value = self.parse_expr();
                        self.expect(Punct::Semi)?;
                        return Some(Stmt::Block(vec![
                            Stmt::Delay { amount, then: None },
                            Stmt::Blocking {
                                target,
                                value,
                                span,
                            },
                        ]));
                    }
                    let value = self.parse_expr();
                    self.expect(Punct::Semi)?;
                    Some(Stmt::Blocking {
                        target,
                        value,
                        span,
                    })
                } else if self.eat(Punct::LtEqual) {
                    let value = self.parse_expr();
                    self.expect(Punct::Semi)?;
                    Some(Stmt::Nonblocking {
                        target,
                        value,
                        span,
                    })
                } else {
                    let t = self.peek().clone();
                    self.error(
                        format!(
                            "expected '=' or '<=' after assignment target, found {}",
                            t.describe()
                        ),
                        t.span,
                    );
                    None
                }
            }
            _ => {
                self.error(format!("syntax error near {}", tok.describe()), tok.span);
                None
            }
        }
    }

    /// Statement controlled by `#d` / `@(...)`: either a real statement
    /// or a bare `;`.
    fn parse_controlled_stmt(&mut self) -> Option<Option<Box<Stmt>>> {
        if self.eat(Punct::Semi) {
            return Some(None);
        }
        Some(Some(Box::new(self.parse_stmt()?)))
    }

    fn parse_delay_value(&mut self) -> Expr {
        if self.eat(Punct::LParen) {
            let e = self.parse_expr();
            self.expect(Punct::RParen);
            e
        } else {
            // number or identifier
            let tok = self.peek().clone();
            match tok.kind {
                TokenKind::Number => {
                    self.bump();
                    Expr::Number {
                        text: tok.text,
                        span: tok.span,
                    }
                }
                TokenKind::Ident => {
                    self.bump();
                    Expr::Ident {
                        name: tok.text,
                        span: tok.span,
                    }
                }
                _ => {
                    self.error(
                        format!("expected delay value, found {}", tok.describe()),
                        tok.span,
                    );
                    Expr::Number {
                        text: "0".into(),
                        span: tok.span,
                    }
                }
            }
        }
    }

    /// Restricted expression for assignment targets: identifier with
    /// optional select, or a concatenation of such.
    fn parse_lvalue_expr(&mut self) -> Option<Expr> {
        if self.eat(Punct::LBrace) {
            let mut parts = Vec::new();
            loop {
                parts.push(self.parse_lvalue_expr()?);
                if !self.eat(Punct::Comma) {
                    break;
                }
            }
            self.expect(Punct::RBrace)?;
            return Some(Expr::Concat(parts));
        }
        let (name, span) = self.expect_ident()?;
        let mut expr = Expr::Ident { name, span };
        if self.eat(Punct::LBracket) {
            let first = self.parse_expr();
            if self.eat(Punct::Colon) {
                let lsb = self.parse_expr();
                self.expect(Punct::RBracket)?;
                expr = Expr::RangeSel {
                    base: Box::new(expr),
                    msb: Box::new(first),
                    lsb: Box::new(lsb),
                };
            } else {
                self.expect(Punct::RBracket)?;
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(first),
                };
            }
        }
        Some(expr)
    }

    // ------------------------------------------------------ expressions

    fn parse_expr(&mut self) -> Expr {
        self.parse_ternary()
    }

    fn parse_ternary(&mut self) -> Expr {
        let cond = self.parse_binary(0);
        if self.eat(Punct::Question) {
            let then = self.parse_expr();
            if self.expect(Punct::Colon).is_none() {
                return cond;
            }
            let els = self.parse_expr();
            return Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            };
        }
        cond
    }

    fn binop_at(&self, level: u8) -> Option<BinOp> {
        use Punct::*;
        let p = match self.peek().kind {
            TokenKind::Punct(p) => p,
            _ => return None,
        };
        let (op, l) = match p {
            PipePipe => (BinOp::LogicalOr, 0),
            AmpAmp => (BinOp::LogicalAnd, 1),
            Pipe => (BinOp::Or, 2),
            Caret => (BinOp::Xor, 3),
            TildeCaret => (BinOp::Xnor, 3),
            Amp => (BinOp::And, 4),
            EqEq => (BinOp::Eq, 5),
            NotEq => (BinOp::Ne, 5),
            CaseEq => (BinOp::CaseEq, 5),
            CaseNotEq => (BinOp::CaseNe, 5),
            Lt => (BinOp::Lt, 6),
            LtEqual => (BinOp::Le, 6),
            Gt => (BinOp::Gt, 6),
            GtEq => (BinOp::Ge, 6),
            Shl => (BinOp::Shl, 7),
            Shr => (BinOp::Shr, 7),
            Plus => (BinOp::Add, 8),
            Minus => (BinOp::Sub, 8),
            Star => (BinOp::Mul, 9),
            Slash => (BinOp::Div, 9),
            Percent => (BinOp::Rem, 9),
            Star2 => (BinOp::Pow, 10),
            _ => return None,
        };
        (l == level).then_some(op)
    }

    fn parse_binary(&mut self, level: u8) -> Expr {
        if level > 10 {
            return self.parse_unary();
        }
        let mut lhs = self.parse_binary(level + 1);
        while let Some(op) = self.binop_at(level) {
            self.bump();
            let rhs = self.parse_binary(level + 1);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        lhs
    }

    fn parse_unary(&mut self) -> Expr {
        use Punct::*;
        let op = match self.peek().kind {
            TokenKind::Punct(Tilde) => Some(UnOp::Not),
            TokenKind::Punct(Bang) => Some(UnOp::LogicalNot),
            TokenKind::Punct(Minus) => Some(UnOp::Negate),
            TokenKind::Punct(Plus) => Some(UnOp::Plus),
            TokenKind::Punct(Amp) => Some(UnOp::ReduceAnd),
            TokenKind::Punct(Pipe) => Some(UnOp::ReduceOr),
            TokenKind::Punct(Caret) => Some(UnOp::ReduceXor),
            TokenKind::Punct(TildeAmp) => Some(UnOp::ReduceNand),
            TokenKind::Punct(TildePipe) => Some(UnOp::ReduceNor),
            TokenKind::Punct(TildeCaret) => Some(UnOp::ReduceXnor),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.parse_unary();
            return Expr::Unary {
                op,
                operand: Box::new(operand),
            };
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Expr {
        let mut expr = self.parse_primary();
        while self.check(Punct::LBracket) {
            self.bump();
            let first = self.parse_expr();
            if self.eat(Punct::Colon) {
                let lsb = self.parse_expr();
                self.expect(Punct::RBracket);
                expr = Expr::RangeSel {
                    base: Box::new(expr),
                    msb: Box::new(first),
                    lsb: Box::new(lsb),
                };
            } else {
                self.expect(Punct::RBracket);
                expr = Expr::Index {
                    base: Box::new(expr),
                    index: Box::new(first),
                };
            }
        }
        expr
    }

    fn parse_primary(&mut self) -> Expr {
        let tok = self.peek().clone();
        match &tok.kind {
            TokenKind::Number => {
                self.bump();
                Expr::Number {
                    text: tok.text,
                    span: tok.span,
                }
            }
            TokenKind::Ident => {
                self.bump();
                if self.check(Punct::LParen) {
                    // Function call in expression position.
                    self.bump();
                    let mut call_args = Vec::new();
                    if !self.check(Punct::RParen) {
                        loop {
                            call_args.push(self.parse_expr());
                            if !self.eat(Punct::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Punct::RParen);
                    return Expr::Call {
                        name: tok.text,
                        args: call_args,
                        span: tok.span,
                    };
                }
                Expr::Ident {
                    name: tok.text,
                    span: tok.span,
                }
            }
            TokenKind::SysIdent if tok.text == "$time" => {
                self.bump();
                Expr::Time { span: tok.span }
            }
            TokenKind::Punct(Punct::LParen) => {
                self.bump();
                let e = self.parse_expr();
                self.expect(Punct::RParen);
                e
            }
            TokenKind::Punct(Punct::LBrace) => {
                self.bump();
                let first = self.parse_expr();
                if self.check(Punct::LBrace) {
                    // Replication {n{v}}
                    self.bump();
                    let value = self.parse_expr();
                    // Additional items inside replication braces would be a
                    // nested concat; support {n{a,b}} via Concat.
                    let value = if self.eat(Punct::Comma) {
                        let mut parts = vec![value];
                        loop {
                            parts.push(self.parse_expr());
                            if !self.eat(Punct::Comma) {
                                break;
                            }
                        }
                        Expr::Concat(parts)
                    } else {
                        value
                    };
                    self.expect(Punct::RBrace);
                    self.expect(Punct::RBrace);
                    return Expr::Repeat {
                        count: Box::new(first),
                        value: Box::new(value),
                    };
                }
                let mut parts = vec![first];
                while self.eat(Punct::Comma) {
                    parts.push(self.parse_expr());
                }
                self.expect(Punct::RBrace);
                Expr::Concat(parts)
            }
            _ => {
                self.error(format!("syntax error near {}", tok.describe()), tok.span);
                self.bump();
                Expr::Number {
                    text: "0".into(),
                    span: tok.span,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use aivril_hdl::source::SourceMap;

    fn parse_src(src: &str) -> (SourceUnit, Diagnostics) {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.v", src);
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        let unit = parse(toks, &mut diags);
        (unit, diags)
    }

    fn parse_clean(src: &str) -> SourceUnit {
        let (unit, diags) = parse_src(src);
        assert!(!diags.has_errors(), "unexpected errors: {:?}", diags.all());
        unit
    }

    #[test]
    fn minimal_module() {
        let unit = parse_clean("module m; endmodule");
        assert_eq!(unit.modules.len(), 1);
        assert_eq!(unit.modules[0].name, "m");
    }

    #[test]
    fn ansi_ports_with_inherited_direction() {
        let unit = parse_clean(
            "module m(input wire a, b, output reg [7:0] q, input [3:0] sel); endmodule",
        );
        let ports = &unit.modules[0].ports;
        assert_eq!(ports.len(), 4);
        assert_eq!(ports[0].dir, PortDir::Input);
        assert_eq!(ports[1].dir, PortDir::Input, "b inherits input");
        assert_eq!(ports[1].name, "b");
        assert_eq!(ports[2].dir, PortDir::Output);
        assert_eq!(ports[2].net_type, NetType::Reg);
        assert!(ports[2].range.is_some());
        assert_eq!(ports[3].name, "sel");
    }

    #[test]
    fn parameters_header_and_body() {
        let unit = parse_clean("module m #(parameter W = 8, N = 4); localparam D = W*N; endmodule");
        let m = &unit.modules[0];
        assert_eq!(m.params.len(), 2);
        assert!(matches!(m.items[0], Item::Param(ref p) if p.local && p.name == "D"));
    }

    #[test]
    fn always_posedge_with_nonblocking() {
        let unit = parse_clean(
            "module m(input clk, input d, output reg q);\n\
             always @(posedge clk) q <= d;\nendmodule",
        );
        match &unit.modules[0].items[0] {
            Item::Always {
                events: Some(ev),
                body,
                ..
            } => {
                assert_eq!(ev.len(), 1);
                assert!(matches!(ev[0], EventExpr::Posedge(_)));
                assert!(matches!(body, Stmt::Nonblocking { .. }));
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn always_star_and_case() {
        let unit = parse_clean(
            "module m(input [1:0] s, output reg y);\n\
             always @* begin\n  case (s)\n    2'b00: y = 1;\n    2'b01, 2'b10: y = 0;\n\
             default: y = 1'bx;\n  endcase\nend\nendmodule",
        );
        match &unit.modules[0].items[0] {
            Item::Always {
                events: Some(ev),
                body,
                ..
            } => {
                assert!(ev.is_empty(), "@* parses as empty event list");
                match body {
                    Stmt::Block(stmts) => match &stmts[0] {
                        Stmt::Case {
                            arms,
                            default,
                            wildcard,
                            ..
                        } => {
                            assert_eq!(arms.len(), 2);
                            assert_eq!(arms[1].0.len(), 2, "multi-label arm");
                            assert!(default.is_some());
                            assert!(!wildcard);
                        }
                        other => panic!("expected case, got {other:?}"),
                    },
                    other => panic!("expected block, got {other:?}"),
                }
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn instance_with_named_connections_and_params() {
        let unit = parse_clean(
            "module tb; wire [3:0] y; reg [3:0] a;\n\
             adder #(.W(4)) u_add (.sum(y), .a(a), .b(4'd3));\nendmodule",
        );
        match unit.modules[0].items.last().expect("instance item") {
            Item::Instance {
                module,
                name,
                param_overrides,
                connections,
                ..
            } => {
                assert_eq!(module, "adder");
                assert_eq!(name, "u_add");
                assert_eq!(param_overrides.len(), 1);
                match connections {
                    Connections::Named(c) => assert_eq!(c.len(), 3),
                    Connections::Positional(_) => panic!("expected named"),
                }
            }
            other => panic!("expected instance, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let unit = parse_clean("module m; wire y; assign y = 1 + 2 * 3 == 7 && 1;\nendmodule");
        match &unit.modules[0].items[1] {
            Item::ContinuousAssign { expr, .. } => {
                // Top must be &&.
                assert!(matches!(
                    expr,
                    Expr::Binary {
                        op: BinOp::LogicalAnd,
                        ..
                    }
                ));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn testbench_constructs() {
        let unit = parse_clean(
            "module tb;\nreg clk = 0;\nreg [7:0] i;\ninitial begin\n\
             clk = 0;\n  forever #5 clk = ~clk;\nend\n\
             initial begin\n  for (i = 0; i < 8; i = i + 1) begin\n    #10;\n\
             if (i === 3) $display(\"i=%0d\", i);\n  end\n  $finish;\nend\nendmodule",
        );
        assert_eq!(unit.modules[0].items.len(), 4);
    }

    #[test]
    fn missing_semicolon_is_reported_with_location() {
        let (_, diags) = parse_src("module m;\nwire a\nwire b;\nendmodule");
        assert!(diags.has_errors());
        let msg = &diags.all()[0];
        assert!(msg.message.contains("';'"), "got: {}", msg.message);
    }

    #[test]
    fn unbalanced_end_is_reported() {
        let (_, diags) =
            parse_src("module m(input clk); reg q; always @(posedge clk) begin q <= 1; endmodule");
        assert!(diags.has_errors());
    }

    #[test]
    fn misspelled_keyword_is_reported() {
        let (_, diags) = parse_src("module m; asign y = 1; endmodule");
        assert!(diags.has_errors());
    }

    #[test]
    fn recovery_parses_later_modules() {
        let (unit, diags) =
            parse_src("module bad; wire ; endmodule\nmodule good; wire w; endmodule");
        assert!(diags.has_errors());
        assert!(unit.modules.iter().any(|m| m.name == "good"));
    }

    #[test]
    fn concat_replication_and_selects() {
        let unit = parse_clean(
            "module m(input [7:0] a, output [15:0] y);\n\
             assign y = {{2{a[7:4]}}, a[3:0], 4'b0000};\nendmodule",
        );
        assert_eq!(unit.modules.len(), 1);
    }

    #[test]
    fn intra_assignment_delay() {
        let unit = parse_clean("module m; reg a; initial a = #5 1; endmodule");
        match &unit.modules[0].items[1] {
            Item::Initial {
                body: Stmt::Block(stmts),
                ..
            } => {
                assert!(matches!(stmts[0], Stmt::Delay { .. }));
                assert!(matches!(stmts[1], Stmt::Blocking { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn wait_statement() {
        let unit = parse_clean("module m; reg a; initial wait (a) $finish; endmodule");
        match &unit.modules[0].items[1] {
            Item::Initial {
                body: Stmt::WaitCond { .. },
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
