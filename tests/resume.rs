//! Checkpoint/resume regression suite: a shard killed after K cells
//! must resume to **byte-identical** artifacts — results JSON, run
//! journal and canonical metrics — for K = 0, K = all, any K between,
//! and for torn (mid-write) tails. Also pins the fingerprint guard:
//! checkpoints written under one configuration are never replayed into
//! an evaluation with a different one.

use aivril_bench::{results_json, Flow, Harness, HarnessConfig, ResultSection};
use aivril_llm::profiles;
use aivril_obs::{render_journal, Recorder};
use std::fs;
use std::path::{Path, PathBuf};

fn config(dir: &Path) -> HarnessConfig {
    HarnessConfig {
        samples: 2,
        task_limit: 5,
        threads: 2,
        canonical: true,
        checkpoint_dir: Some(dir.to_str().expect("utf-8 temp path").to_string()),
        ..HarnessConfig::default()
    }
}

/// One full evaluation under `cfg`: (results JSON, journal, canonical
/// metrics).
fn run(cfg: &HarnessConfig) -> (String, String, aivril_obs::MetricsRegistry) {
    let rec = Recorder::new();
    let h = Harness::new(cfg.clone()).with_recorder(rec.clone());
    let profile = profiles::claude35_sonnet();
    let (outcomes, stats) = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
    let json = results_json(&[ResultSection {
        label: "resume".into(),
        outcomes,
        stats,
    }]);
    (json, render_journal(&rec), rec.metrics().canonical())
}

/// Like [`run`] but with diagnostics unmasked, so the kernel block
/// reveals whether this process actually simulated anything.
fn run_diagnostic(cfg: &HarnessConfig) -> (String, u64) {
    let rec = Recorder::new();
    let h = Harness::new(HarnessConfig {
        canonical: false,
        ..cfg.clone()
    })
    .with_recorder(rec.clone());
    let profile = profiles::claude35_sonnet();
    let (_, stats) = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
    (render_journal(&rec), stats.kernel.instructions)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aivril-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The single checkpoint log a full-range run leaves in `dir`.
fn checkpoint_file(dir: &Path) -> PathBuf {
    let mut logs: Vec<PathBuf> = fs::read_dir(dir)
        .expect("checkpoint dir exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(logs.len(), 1, "one shard range, one log: {logs:?}");
    logs.pop().unwrap()
}

/// Truncates the log to its header plus the first `keep` cell lines.
fn truncate_to(path: &Path, keep: usize) {
    let text = fs::read_to_string(path).unwrap();
    let kept: String = text.split_inclusive('\n').take(1 + keep).collect();
    fs::write(path, kept).unwrap();
}

#[test]
fn resume_after_partial_checkpoint_is_byte_identical() {
    let reference_dir = temp_dir("ref");
    let reference = run(&config(&reference_dir));

    // Produce a complete checkpoint, then replay from every prefix
    // K = 0 (cold start), half, and all (pure replay).
    let dir = temp_dir("partial");
    let cfg = config(&dir);
    let first = run(&cfg);
    assert_eq!(first.0, reference.0, "checkpointing must not alter results");
    assert_eq!(
        first.1, reference.1,
        "checkpointing must not alter journals"
    );

    let total_cells = 5 * 2;
    let log = checkpoint_file(&dir);
    let full_log = fs::read_to_string(&log).unwrap();
    assert_eq!(
        full_log.lines().count(),
        1 + total_cells,
        "header plus one line per cell"
    );

    for keep in [total_cells, total_cells / 2, 0] {
        fs::write(
            &log,
            full_log
                .split_inclusive('\n')
                .take(1 + keep)
                .collect::<String>(),
        )
        .unwrap();
        let resumed = run(&cfg);
        assert_eq!(
            resumed.0, reference.0,
            "results diverged resuming at K={keep}"
        );
        assert_eq!(
            resumed.1, reference.1,
            "journal diverged resuming at K={keep}"
        );
        assert_eq!(
            resumed.2, reference.2,
            "metrics diverged resuming at K={keep}"
        );
    }
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&reference_dir);
}

#[test]
fn full_replay_recomputes_nothing() {
    let dir = temp_dir("full");
    let cfg = config(&dir);
    let (journal_a, instructions_a) = run_diagnostic(&cfg);
    assert!(instructions_a > 0, "a live run simulates");
    let (journal_b, instructions_b) = run_diagnostic(&cfg);
    assert_eq!(journal_a, journal_b);
    assert_eq!(
        instructions_b, 0,
        "a fully checkpointed evaluation must replay, not resimulate"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_dropped_and_resume_stays_identical() {
    let dir = temp_dir("torn");
    let cfg = config(&dir);
    let reference = run(&cfg);
    let log = checkpoint_file(&dir);

    // Keep 3 cells, then simulate a kill mid-append: half a cell line,
    // no trailing newline.
    truncate_to(&log, 3);
    let mut text = fs::read_to_string(&log).unwrap();
    text.push_str("cell 3 0123456789abcdef 1 0 44");
    fs::write(&log, text).unwrap();

    let resumed = run(&cfg);
    assert_eq!(resumed.0, reference.0, "results diverged after torn tail");
    assert_eq!(resumed.1, reference.1, "journal diverged after torn tail");

    // The resumed run truncated the torn bytes and appended the
    // recomputed cells, so the log is whole again.
    let healed = fs::read_to_string(&log).unwrap();
    assert_eq!(healed.lines().count(), 1 + 10, "log healed to full length");
    assert!(healed.ends_with('\n'));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_from_other_configs_are_ignored() {
    let dir = temp_dir("fingerprint");
    let cfg = config(&dir);
    let (_, instructions_a) = run_diagnostic(&cfg);
    assert!(instructions_a > 0);

    // Same directory, different grid shape: the fingerprint differs,
    // so nothing replays and the run recomputes (correctly).
    let other = HarnessConfig {
        samples: 3,
        ..cfg.clone()
    };
    let (_, instructions_b) = run_diagnostic(&other);
    assert!(
        instructions_b > 0,
        "a foreign checkpoint must never satisfy this evaluation"
    );

    // And the original config still replays its own checkpoint fully.
    let (_, instructions_c) = run_diagnostic(&cfg);
    assert_eq!(instructions_c, 0);
    let _ = fs::remove_dir_all(&dir);
}
