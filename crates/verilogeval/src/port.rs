//! Port descriptions and HDL literal formatting shared by the
//! testbench/DUT generators.

/// One DUT port (direction is implied by which list it sits in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Bit width.
    pub width: u32,
}

impl Port {
    /// Creates a port.
    #[must_use]
    pub fn new(name: impl Into<String>, width: u32) -> Port {
        Port {
            name: name.into(),
            width,
        }
    }

    /// Verilog range prefix: `[3:0] ` or the empty string for 1 bit.
    #[must_use]
    pub fn vlog_range(&self) -> String {
        if self.width == 1 {
            String::new()
        } else {
            format!("[{}:0] ", self.width - 1)
        }
    }

    /// VHDL subtype: `std_logic` or `std_logic_vector(3 downto 0)`.
    #[must_use]
    pub fn vhdl_type(&self) -> String {
        if self.width == 1 {
            "std_logic".to_string()
        } else {
            format!("std_logic_vector({} downto 0)", self.width - 1)
        }
    }
}

/// Formats a Verilog sized binary literal, e.g. `4'b0101`.
#[must_use]
pub fn vlog_lit(width: u32, value: u64) -> String {
    format!("{}'b{}", width, bin_digits(width, value))
}

/// Formats a VHDL literal: `'0'` for 1 bit, `"0101"` otherwise.
#[must_use]
pub fn vhdl_lit(width: u32, value: u64) -> String {
    if width == 1 {
        format!("'{}'", value & 1)
    } else {
        format!("\"{}\"", bin_digits(width, value))
    }
}

fn bin_digits(width: u32, value: u64) -> String {
    (0..width)
        .rev()
        .map(|i| if value >> i & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// Deterministic pseudo-random stream (splitmix64) used to pick test
/// vectors when exhaustive enumeration would be too large. Lives here —
/// not on `rand` — so the suite is byte-stable regardless of dependency
/// versions.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub(crate) fn new(seed: u64) -> SplitMix {
        SplitMix { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..=mask` for a `width`-bit field.
    pub(crate) fn bits(&mut self, width: u32) -> u64 {
        if width >= 64 {
            self.next_u64()
        } else {
            self.next_u64() & ((1u64 << width) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vlog_range_formatting() {
        assert_eq!(Port::new("a", 1).vlog_range(), "");
        assert_eq!(Port::new("a", 8).vlog_range(), "[7:0] ");
    }

    #[test]
    fn vhdl_types() {
        assert_eq!(Port::new("a", 1).vhdl_type(), "std_logic");
        assert_eq!(
            Port::new("a", 4).vhdl_type(),
            "std_logic_vector(3 downto 0)"
        );
    }

    #[test]
    fn literals() {
        assert_eq!(vlog_lit(4, 0b0101), "4'b0101");
        assert_eq!(vhdl_lit(1, 1), "'1'");
        assert_eq!(vhdl_lit(4, 0b1010), "\"1010\"");
    }

    #[test]
    fn splitmix_is_deterministic_and_masked() {
        let mut a = SplitMix::new(7);
        let mut b = SplitMix::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix::new(3);
        for _ in 0..100 {
            assert!(r.bits(5) < 32);
        }
    }
}
