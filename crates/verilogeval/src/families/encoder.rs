//! Priority encoders and detectors (8 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

/// Priority encoder: index of the highest (or lowest) set bit of `r`,
/// plus a `valid` flag. Output is 0 when no bit is set.
fn priority(width: u32, msb_first: bool) -> CombSpec {
    let out_w = width.next_power_of_two().trailing_zeros().max(1);
    let dir = if msb_first { "msb" } else { "lsb" };
    let name = format!("prio{width}_{dir}");
    // Verilog: casez with don't-cares expresses the priority chain.
    let mut varms = String::new();
    let mut helifs = String::new();
    let order: Vec<u32> = if msb_first {
        (0..width).rev().collect()
    } else {
        (0..width).collect()
    };
    for (k, i) in order.iter().enumerate() {
        let mut pat: Vec<char> = vec!['?'; width as usize];
        pat[(width - 1 - i) as usize] = '1';
        // Bits with higher priority than i must be 0 for lsb-first
        // ordering; casez arms are evaluated in order so earlier arms
        // win — the don't-cares are safe as long as arm order matches
        // the priority.
        let _ = k;
        varms.push_str(&format!(
            "      {width}'b{}: begin idx = {out_w}'d{i}; valid = 1'b1; end\n",
            pat.iter().collect::<String>()
        ));
        let kw = if helifs.is_empty() { "if" } else { "elsif" };
        helifs.push_str(&format!(
            "    {kw} r({i}) = '1' then\n      idx <= {};\n      valid <= '1';\n",
            crate::port::vhdl_lit(out_w, u64::from(*i))
        ));
    }
    let zeros_v = format!("{out_w}'b{}", "0".repeat(out_w as usize));
    let vlog_body = format!(
        "  always @* begin\n    casez (r)\n{varms}      default: begin idx = {zeros_v}; valid = 1'b0; end\n    endcase\n  end\n"
    );
    let zeros_h = crate::port::vhdl_lit(out_w, 0);
    let vhdl_body = format!(
        "  process (r)\n  begin\n{helifs}    else\n      idx <= {zeros_h};\n      valid <= '0';\n    end if;\n  end process;\n"
    );
    CombSpec {
        name,
        family: Family::Encoder,
        difficulty: Difficulty::Medium,
        description: format!(
            "A {width}-bit priority encoder: idx is the index of the {} set bit of r and valid is 1 when any bit of r is set; both are 0 otherwise.",
            if msb_first { "most significant" } else { "least significant" }
        ),
        inputs: vec![Port::new("r", width)],
        outputs: vec![Port::new("idx", out_w), Port::new("valid", 1)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let r = v[0];
            if r == 0 {
                return vec![0, 0];
            }
            let idx = if msb_first {
                63 - u64::from(r.leading_zeros())
            } else {
                u64::from(r.trailing_zeros())
            };
            vec![idx, 1]
        }),
    }
}

fn reduction(
    name: &str,
    width: u32,
    desc: &str,
    vexpr: String,
    hexpr: String,
    f: fn(u64, u32) -> u64,
) -> CombSpec {
    CombSpec {
        name: format!("{name}{width}"),
        family: Family::Encoder,
        difficulty: Difficulty::Easy,
        description: desc.to_string(),
        inputs: vec![Port::new("r", width)],
        outputs: vec![Port::new("y", 1)],
        vlog_body: format!("  assign y = {vexpr};\n"),
        vlog_out_reg: false,
        vhdl_body: format!("  y <= {hexpr};\n"),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![f(v[0], width)]),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(priority(4, true)));
    problems.push(comb_problem(priority(4, false)));
    problems.push(comb_problem(priority(8, true)));
    problems.push(comb_problem(priority(8, false)));
    problems.push(comb_problem(priority(2, true)));
    problems.push(comb_problem(priority(6, false)));

    // any8: reduction OR.
    let all_zero_cmp = |w: u32| format!("'1' when r = \"{}\" else '0'", "0".repeat(w as usize));
    let any_cmp = |w: u32| format!("'0' when r = \"{}\" else '1'", "0".repeat(w as usize));
    problems.push(comb_problem(reduction(
        "any",
        8,
        "y is 1 when any bit of the 8-bit input r is set (reduction OR).",
        "|r".into(),
        any_cmp(8),
        |r, _| u64::from(r != 0),
    )));
    problems.push(comb_problem(reduction(
        "none",
        8,
        "y is 1 when no bit of the 8-bit input r is set (NOR reduction).",
        "~|r".into(),
        all_zero_cmp(8),
        |r, _| u64::from(r == 0),
    )));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_8_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 8);
    }

    #[test]
    fn priority_msb_golden() {
        let s = priority(8, true);
        assert_eq!((s.eval)(&[0b0110_0000]), vec![6, 1]);
        assert_eq!((s.eval)(&[0]), vec![0, 0]);
    }

    #[test]
    fn priority_lsb_golden() {
        let s = priority(8, false);
        assert_eq!((s.eval)(&[0b0110_0000]), vec![5, 1]);
    }
}
