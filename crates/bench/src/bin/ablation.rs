//! Ablation experiments extending the paper's evaluation (the design
//! deltas DESIGN.md calls out):
//!
//! 1. **Testbench-first vs simultaneous** — the paper's stated advance
//!    over AIVRIL \[7\]: pre-validating the testbench before any RTL
//!    exists vs using it as generated.
//! 2. **Iteration-budget sweep** — how pass rates saturate as the
//!    syntax/functional loop budgets grow from 1 to 6.
//! 3. **Corrective-prompt detail** — Sec. 3.2 argues detailed prompts
//!    (locations + snippets + hints) minimise iterations; this compares
//!    them against error-id-only prompts.
//!
//! Scale with `AIVRIL_SAMPLES` / `AIVRIL_TASKS` / `AIVRIL_THREADS`.

use aivril_bench::{Flow, Harness, HarnessConfig};
use aivril_core::{Aivril2Config, PromptDetail};
use aivril_llm::profiles;
use aivril_metrics::suite_metric;

fn run(
    config: HarnessConfig,
    profile: &aivril_llm::ModelProfile,
    verilog: bool,
) -> (f64, f64, f64) {
    let harness = Harness::new(config);
    let (outcomes, stats) = harness.evaluate_with_stats(profile, verilog, Flow::Aivril2);
    eprintln!("   {stats}");
    let s = suite_metric(&outcomes, 1, |x| x.syntax) * 100.0;
    let f = suite_metric(&outcomes, 1, |x| x.functional) * 100.0;
    let iters: f64 = {
        let (mut sum, mut n) = (0.0, 0u32);
        for o in &outcomes {
            for x in &o.samples {
                sum += f64::from(x.syntax_iters + x.functional_iters);
                n += 1;
            }
        }
        sum / f64::from(n.max(1))
    };
    (s, f, iters)
}

fn main() {
    let base = HarnessConfig::from_env();
    println!(
        "Ablation experiments, {} tasks x {} samples on {} thread(s)\n",
        base.task_limit.min(156),
        base.samples,
        base.effective_threads()
    );

    // -- 1. testbench-first vs simultaneous. Llama3-70B has the weakest
    // testbench generation (tb_syntax_ok 0.80 Verilog / 0.55 VHDL), so
    // the pre-validation loop matters most there.
    println!("1. Testbench-first methodology (Llama3-70B; the AIVRIL -> AIVRIL2 delta)");
    println!(
        "{:<34}{:>10}{:>10}",
        "configuration", "pass@1_S", "pass@1_F"
    );
    for verilog in [true, false] {
        let lang = if verilog { "Verilog" } else { "VHDL" };
        for tb_first in [true, false] {
            let mut cfg = base.clone();
            cfg.pipeline = Aivril2Config {
                testbench_first: tb_first,
                ..cfg.pipeline
            };
            let (s, f, _) = run(cfg, &profiles::llama3_70b(), verilog);
            println!(
                "{:<34}{s:>10.2}{f:>10.2}",
                format!(
                    "{lang} / {}",
                    if tb_first {
                        "testbench-first"
                    } else {
                        "simultaneous"
                    }
                )
            );
        }
    }

    // -- 2. iteration-budget sweep (Claude 3.5 Sonnet, Verilog).
    println!(
        "\n2. Iteration-budget sweep (Claude 3.5 Sonnet, Verilog; budget applies to both loops)"
    );
    println!(
        "{:<10}{:>10}{:>10}{:>14}",
        "budget", "pass@1_S", "pass@1_F", "avg cycles"
    );
    for k in 1..=6u32 {
        let mut cfg = base.clone();
        cfg.pipeline = Aivril2Config {
            max_syntax_iters: k,
            max_functional_iters: k,
            ..cfg.pipeline
        };
        let (s, f, it) = run(cfg, &profiles::claude35_sonnet(), true);
        println!("{k:<10}{s:>10.2}{f:>10.2}{it:>14.2}");
    }

    // -- 3. corrective-prompt detail (Llama3-70B, VHDL: the most
    // iteration-hungry configuration, where distillation quality shows).
    println!("\n3. Corrective-prompt detail (Llama3-70B, VHDL)");
    println!(
        "{:<16}{:>10}{:>10}{:>14}",
        "detail", "pass@1_S", "pass@1_F", "avg cycles"
    );
    for (label, detail) in [
        ("detailed", PromptDetail::Detailed),
        ("errors-only", PromptDetail::ErrorsOnly),
    ] {
        let mut cfg = base.clone();
        cfg.pipeline = Aivril2Config {
            prompt_detail: detail,
            ..cfg.pipeline
        };
        let (s, f, it) = run(cfg, &profiles::llama3_70b(), false);
        println!("{label:<16}{s:>10.2}{f:>10.2}{it:>14.2}");
    }
    println!(
        "\nExpected shapes: testbench-first dominates simultaneous; pass rates\n\
         saturate around budget 4-5; detailed prompts converge in fewer cycles\n\
         with higher pass rates."
    );
}
