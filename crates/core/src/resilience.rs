//! Deterministic resilience: retry/backoff policy, circuit breaker and
//! per-run counters.
//!
//! Backend faults ([`aivril_llm::LlmError`]) are handled here, not in
//! the agents: the pipeline retries with capped exponential backoff,
//! opens a circuit breaker after repeated consecutive failures, and
//! degrades to its best-so-far output when the budget is exhausted.
//!
//! Everything runs on the **modeled clock** (the run trace's accumulated
//! latency), never the wall clock, and every backoff jitter is a pure
//! function of `(seed, operation, attempt)` — so a fault schedule and
//! its recovery replay bit-identically for any worker-thread count.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Retry/backoff/breaker knobs, configured per pipeline via
/// [`crate::Aivril2Config`] (the harness maps `AIVRIL_RETRY_MAX`,
/// `AIVRIL_BACKOFF_BASE_MS` and `AIVRIL_BREAKER_THRESHOLD` here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Retries after the first attempt (total attempts = `retry_max + 1`).
    pub retry_max: u32,
    /// Base backoff in modeled seconds; attempt `n` waits up to
    /// `base * 2^n`, capped at [`ResiliencePolicy::backoff_cap_s`].
    pub backoff_base_s: f64,
    /// Ceiling on a single backoff wait, in modeled seconds.
    pub backoff_cap_s: f64,
    /// Consecutive failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Modeled seconds an open breaker rejects calls before allowing a
    /// half-open probe.
    pub breaker_cooldown_s: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            retry_max: 3,
            backoff_base_s: 0.5,
            backoff_cap_s: 30.0,
            breaker_threshold: 4,
            breaker_cooldown_s: 120.0,
        }
    }
}

impl ResiliencePolicy {
    /// The backoff wait before retry `attempt` of `op`, in modeled
    /// seconds: capped exponential with *equal jitter* (half the window
    /// fixed, half seeded), the deterministic analogue of the usual
    /// randomized backoff. Pure function of its arguments.
    #[must_use]
    pub fn backoff_s(&self, seed: u64, op: &str, attempt: u32) -> f64 {
        let exp = 2f64.powi(attempt.min(16) as i32);
        let window = (self.backoff_base_s * exp).min(self.backoff_cap_s);
        let mut h = DefaultHasher::new();
        seed.hash(&mut h);
        op.hash(&mut h);
        attempt.hash(&mut h);
        // Top 53 bits -> uniform in [0, 1): the same trick used for
        // `f64` generation everywhere else in the workspace.
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        window / 2.0 + unit * (window / 2.0)
    }
}

/// Breaker state. `Open` stores the modeled time until which calls are
/// rejected; `HalfOpen` tracks whether the single allowed probe is
/// already in flight.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    Closed,
    Open { until: f64 },
    HalfOpen { probing: bool },
}

/// Ceiling on [`CircuitBreaker::retry_after_s`] hints — one day.
/// Retry hints are serialized to clients, and a breaker configured
/// with an infinite (or absurd) cooldown must hand back a finite,
/// representable number, not `inf`.
pub const MAX_RETRY_AFTER_S: f64 = 86_400.0;

/// A per-run circuit breaker over the modeled clock.
///
/// After [`ResiliencePolicy::breaker_threshold`] consecutive failures
/// the breaker opens: calls are rejected without consuming retry budget
/// until [`ResiliencePolicy::breaker_cooldown_s`] modeled seconds pass,
/// after which a single half-open probe is allowed — while that probe
/// is outstanding (acquired but not yet reported), further
/// [`CircuitBreaker::try_acquire`] calls are rejected. A successful
/// probe closes the breaker; a failed one re-opens it.
///
/// The breaker is scoped to one pipeline run — workers process samples
/// in arbitrary order, so any cross-run state would break determinism.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_s: f64,
    consecutive_failures: u32,
    state: BreakerState,
    opens: u32,
}

impl CircuitBreaker {
    /// A closed breaker with `policy`'s threshold and cooldown.
    #[must_use]
    pub fn new(policy: &ResiliencePolicy) -> CircuitBreaker {
        CircuitBreaker {
            threshold: policy.breaker_threshold.max(1),
            cooldown_s: policy.breaker_cooldown_s,
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opens: 0,
        }
    }

    /// Whether a call may proceed at modeled time `now`. An expired
    /// `Open` transitions to `HalfOpen` and admits exactly one probe;
    /// further calls are rejected until that probe reports back via
    /// [`CircuitBreaker::on_success`] or [`CircuitBreaker::on_failure`].
    pub fn try_acquire(&mut self, now: f64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen { probing: true } => false,
            BreakerState::HalfOpen { probing: false } => {
                self.state = BreakerState::HalfOpen { probing: true };
                true
            }
            BreakerState::Open { until } => {
                if now >= until {
                    self.state = BreakerState::HalfOpen { probing: true };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful call: closes the breaker, clears the streak.
    pub fn on_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed call at modeled time `now`. A failed half-open
    /// probe re-opens immediately; in the closed state the breaker opens
    /// once the consecutive-failure streak reaches the threshold.
    pub fn on_failure(&mut self, now: f64) {
        match self.state {
            BreakerState::HalfOpen { .. } => {
                self.state = BreakerState::Open {
                    until: now + self.cooldown_s,
                };
                self.opens += 1;
            }
            _ => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open {
                        until: now + self.cooldown_s,
                    };
                    self.opens += 1;
                    self.consecutive_failures = 0;
                }
            }
        }
    }

    /// `true` while calls are rejected at modeled time `now`.
    #[must_use]
    pub fn is_open(&self, now: f64) -> bool {
        matches!(self.state, BreakerState::Open { until } if now < until)
    }

    /// Seconds until an open breaker admits its half-open probe;
    /// `None` when calls are not currently rejected. This is the
    /// `retry_after` an admission layer hands back to callers it turns
    /// away, so it is always a non-negative finite number: an infinite
    /// cooldown (a breaker configured to never recover on its own)
    /// clamps to [`MAX_RETRY_AFTER_S`] instead of serializing as `inf`.
    #[must_use]
    pub fn retry_after_s(&self, now: f64) -> Option<f64> {
        match self.state {
            BreakerState::Open { until } if now < until => {
                Some((until - now).clamp(0.0, MAX_RETRY_AFTER_S))
            }
            _ => None,
        }
    }

    /// How many times the breaker has opened (including re-opens after a
    /// failed half-open probe).
    #[must_use]
    pub fn opens(&self) -> u32 {
        self.opens
    }
}

/// Independently keyed circuit breakers sharing one
/// [`ResiliencePolicy`] — the *per-tenant* scope of the resilience
/// layer.
///
/// The breaker inside a pipeline run stays per-run (cross-run state
/// would break replay determinism — see [`CircuitBreaker`]); a job
/// *service* additionally needs fault isolation between tenants at the
/// admission boundary, where one tenant's fault storm must not trip
/// another tenant's breaker. A `BreakerBank` gives every key (tenant)
/// its own [`CircuitBreaker`], created lazily on first touch, behind
/// interior mutability so a shared admission path can consult it with
/// `&self`.
///
/// The bank's clock is whatever the caller feeds it — an admission
/// layer typically uses wall seconds since service start, because
/// admission verdicts are inherently schedule-dependent (they depend
/// on what else is in flight) and are therefore *outside* the
/// deterministic replay surface.
#[derive(Debug)]
pub struct BreakerBank {
    policy: ResiliencePolicy,
    slots: std::sync::Mutex<std::collections::HashMap<String, CircuitBreaker>>,
}

impl BreakerBank {
    /// An empty bank; every key's breaker starts closed with `policy`'s
    /// threshold and cooldown.
    #[must_use]
    pub fn new(policy: ResiliencePolicy) -> BreakerBank {
        BreakerBank {
            policy,
            slots: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// The policy every keyed breaker is built from.
    #[must_use]
    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    fn with<T>(&self, key: &str, f: impl FnOnce(&mut CircuitBreaker) -> T) -> T {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let breaker = slots
            .entry(key.to_string())
            .or_insert_with(|| CircuitBreaker::new(&self.policy));
        f(breaker)
    }

    /// Whether `key` may proceed at time `now`
    /// ([`CircuitBreaker::try_acquire`] on `key`'s breaker).
    pub fn try_acquire(&self, key: &str, now: f64) -> bool {
        self.with(key, |b| b.try_acquire(now))
    }

    /// Records a success for `key` ([`CircuitBreaker::on_success`]).
    pub fn on_success(&self, key: &str) {
        self.with(key, CircuitBreaker::on_success);
    }

    /// Records a failure for `key` at time `now`
    /// ([`CircuitBreaker::on_failure`]).
    pub fn on_failure(&self, key: &str, now: f64) {
        self.with(key, |b| b.on_failure(now));
    }

    /// Seconds until `key`'s open breaker admits a probe; `None` while
    /// it accepts calls ([`CircuitBreaker::retry_after_s`]).
    #[must_use]
    pub fn retry_after_s(&self, key: &str, now: f64) -> Option<f64> {
        self.with(key, |b| b.retry_after_s(now))
    }

    /// How many times `key`'s breaker has opened.
    #[must_use]
    pub fn opens(&self, key: &str) -> u32 {
        self.with(key, |b| b.opens())
    }

    /// `true` while `key`'s breaker rejects calls at time `now`. Unlike
    /// the other accessors this never creates a slot — an unknown key
    /// is trivially closed.
    #[must_use]
    pub fn is_open(&self, key: &str, now: f64) -> bool {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .is_some_and(|b| b.is_open(now))
    }

    /// Drops `key`'s breaker slot (if any), forgetting its state. Used
    /// by admission layers that evict idle scopes to bound memory
    /// against unbounded key churn.
    pub fn remove(&self, key: &str) {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key);
    }

    /// Number of keys that have touched the bank.
    #[must_use]
    pub fn scopes(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

/// Per-run resilience counters, surfaced on
/// [`RunResult`](crate::RunResult) and aggregated by the evaluation
/// harness. All-zero when no fault fired, so fault-free telemetry is
/// unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ResilienceCounters {
    /// Transport faults observed (timeouts, rate limits).
    pub llm_faults: u32,
    /// Retry attempts performed after a transport fault.
    pub retries: u32,
    /// Modeled seconds spent in backoff waits.
    pub backoff_s: f64,
    /// Times the circuit breaker opened (incl. re-opens).
    pub breaker_opens: u32,
    /// Degradation events: exhausted retries, open-breaker rejections,
    /// or unusable generations the pipeline gave up on.
    pub degraded: u32,
    /// Simulations aborted by a kernel watchdog
    /// ([`aivril_eda::SimDiverged`]).
    pub sim_diverged: u32,
}

impl ResilienceCounters {
    /// `true` when any counter is nonzero.
    #[must_use]
    pub fn any(&self) -> bool {
        self.llm_faults > 0
            || self.retries > 0
            || self.backoff_s > 0.0
            || self.breaker_opens > 0
            || self.degraded > 0
            || self.sim_diverged > 0
    }

    /// Accumulates `other` into `self` (harness aggregation).
    pub fn merge(&mut self, other: &ResilienceCounters) {
        self.llm_faults += other.llm_faults;
        self.retries += other.retries;
        self.backoff_s += other.backoff_s;
        self.breaker_opens += other.breaker_opens;
        self.degraded += other.degraded;
        self.sim_diverged += other.sim_diverged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let p = ResiliencePolicy::default();
        for attempt in 0..8 {
            let a = p.backoff_s(7, "generate RTL", attempt);
            let b = p.backoff_s(7, "generate RTL", attempt);
            assert_eq!(a.to_bits(), b.to_bits(), "attempt {attempt}");
            let window = (p.backoff_base_s * 2f64.powi(attempt as i32)).min(p.backoff_cap_s);
            assert!(a >= window / 2.0 && a <= window, "attempt {attempt}: {a}");
            assert!(a <= p.backoff_cap_s);
        }
        // Different seeds and ops jitter differently somewhere.
        let differs =
            (0..32).any(|s| p.backoff_s(s, "a", 1).to_bits() != p.backoff_s(s, "b", 1).to_bits());
        assert!(differs);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_half_open() {
        let policy = ResiliencePolicy {
            breaker_threshold: 3,
            breaker_cooldown_s: 10.0,
            ..ResiliencePolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        for t in 0..3 {
            assert!(b.try_acquire(t as f64));
            b.on_failure(t as f64);
        }
        assert_eq!(b.opens(), 1);
        assert!(b.is_open(2.5));
        assert!(!b.try_acquire(5.0), "cooldown not elapsed");
        // After the cooldown, exactly one half-open probe is admitted.
        assert!(b.try_acquire(13.0));
        assert!(
            !b.try_acquire(13.5),
            "second acquire while the probe is in flight must be rejected"
        );
        b.on_failure(13.0);
        assert_eq!(b.opens(), 2, "failed probe re-opens");
        assert!(!b.try_acquire(20.0));
        assert!(b.try_acquire(24.0));
        b.on_success();
        assert!(b.try_acquire(24.0), "closed after successful probe");
        assert_eq!(b.opens(), 2);
    }

    /// Regression: an infinite (or enormous) cooldown used to leak
    /// `inf` out of `retry_after_s`, which serializers then printed as
    /// a non-JSON `inf` token. The hint must always be a non-negative
    /// finite number.
    #[test]
    fn retry_after_hints_are_finite_and_non_negative() {
        for cooldown in [f64::INFINITY, 1e300, 10.0] {
            let policy = ResiliencePolicy {
                breaker_threshold: 1,
                breaker_cooldown_s: cooldown,
                ..ResiliencePolicy::default()
            };
            let mut b = CircuitBreaker::new(&policy);
            b.on_failure(0.0);
            let hint = b.retry_after_s(1.0).expect("open breaker hints");
            assert!(hint.is_finite(), "cooldown {cooldown}: {hint}");
            assert!((0.0..=MAX_RETRY_AFTER_S).contains(&hint), "{hint}");
        }
        // A closed breaker still hints nothing.
        let b = CircuitBreaker::new(&ResiliencePolicy::default());
        assert_eq!(b.retry_after_s(0.0), None);
    }

    /// Regression (review): `HalfOpen` used to admit *every* call, so a
    /// burst arriving the moment a cooldown lapsed all went through
    /// before the first probe reported. Now the state admits one probe
    /// and rejects the rest until the probe's outcome arrives.
    #[test]
    fn half_open_admits_exactly_one_probe() {
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 10.0,
            ..ResiliencePolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.on_failure(0.0);
        assert!(b.try_acquire(15.0), "cooldown lapsed: probe admitted");
        for t in [15, 16, 17] {
            assert!(!b.try_acquire(t as f64), "burst behind the probe waits");
        }
        b.on_success();
        assert!(b.try_acquire(18.0), "successful probe closes the breaker");
        assert!(b.try_acquire(18.0), "closed state admits everyone again");
        // A failed probe re-opens and restarts the cycle.
        b.on_failure(20.0);
        assert!(b.try_acquire(31.0));
        assert!(!b.try_acquire(31.0));
        b.on_failure(31.0);
        assert!(!b.try_acquire(32.0), "failed probe re-opened the breaker");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let policy = ResiliencePolicy {
            breaker_threshold: 2,
            ..ResiliencePolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        b.on_failure(0.0);
        b.on_success();
        b.on_failure(1.0);
        assert!(b.try_acquire(1.0), "streak was reset; still closed");
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn retry_after_tracks_the_open_window() {
        let policy = ResiliencePolicy {
            breaker_threshold: 1,
            breaker_cooldown_s: 10.0,
            ..ResiliencePolicy::default()
        };
        let mut b = CircuitBreaker::new(&policy);
        assert_eq!(b.retry_after_s(0.0), None, "closed breaker has no wait");
        b.on_failure(5.0);
        assert_eq!(b.retry_after_s(5.0), Some(10.0));
        assert_eq!(b.retry_after_s(12.0), Some(3.0));
        assert_eq!(b.retry_after_s(15.0), None, "cooldown elapsed");
    }

    #[test]
    fn breaker_bank_isolates_keys() {
        let bank = BreakerBank::new(ResiliencePolicy {
            breaker_threshold: 2,
            breaker_cooldown_s: 60.0,
            ..ResiliencePolicy::default()
        });
        // A fault storm on `noisy` opens only `noisy`'s breaker.
        bank.on_failure("noisy", 0.0);
        bank.on_failure("noisy", 1.0);
        assert!(!bank.try_acquire("noisy", 2.0));
        assert_eq!(bank.opens("noisy"), 1);
        assert!(bank.retry_after_s("noisy", 2.0).unwrap() > 0.0);
        assert!(bank.try_acquire("quiet", 2.0), "other tenants unaffected");
        assert_eq!(bank.opens("quiet"), 0);
        assert_eq!(bank.retry_after_s("quiet", 2.0), None);
        assert_eq!(bank.scopes(), 2);
        // `noisy` recovers through its own half-open probe.
        assert!(bank.try_acquire("noisy", 70.0));
        bank.on_success("noisy");
        assert!(bank.try_acquire("noisy", 70.0));
    }

    #[test]
    fn counters_merge_and_report_activity() {
        let mut a = ResilienceCounters::default();
        assert!(!a.any());
        let b = ResilienceCounters {
            retries: 2,
            backoff_s: 1.5,
            ..ResilienceCounters::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert!(a.any());
        assert_eq!(a.retries, 4);
        assert!((a.backoff_s - 3.0).abs() < 1e-12);
    }
}
