//! Distributed-evaluation equivalence suite: any partition of the
//! problem × sample grid, evaluated shard by shard and merged, must be
//! **byte-identical** to a single-process evaluation — outcomes (every
//! f64 compared by bit pattern via the serialised results JSON), run
//! journals and canonical metrics alike. This is the contract that
//! makes `aivril-shard`'s multi-process mode safe: the merge pass
//! renders through the same code path as a plain run, so if these
//! in-process properties hold, the only cross-process ingredient left
//! is checkpoint replay (covered by `tests/resume.rs`).

use aivril_bench::{
    plan_shards, results_json, write_json, Flow, Harness, HarnessConfig, ResultSection, ShardRange,
};
use aivril_llm::profiles;
use aivril_obs::{render_journal, Recorder};
use proptest::prelude::*;

/// A canonical-mode config: volatile stats (wall clock) and diagnostic
/// blocks (cache, kernel) are masked, so the whole results JSON is
/// byte-comparable.
fn config(task_limit: usize, samples: u32, threads: usize) -> HarnessConfig {
    HarnessConfig {
        samples,
        task_limit,
        threads,
        canonical: true,
        ..HarnessConfig::default()
    }
}

/// Renders one evaluation to its full `aivril.results` artifact.
fn artifact(outcomes: Vec<aivril_metrics::EvalOutcome>, stats: aivril_bench::EvalStats) -> String {
    results_json(&[ResultSection {
        label: "differential".into(),
        outcomes,
        stats,
    }])
}

/// Evaluates the full grid in one call, with a journal recorder.
fn single_process(
    cfg: &HarnessConfig,
    flow: Flow,
) -> (String, String, aivril_obs::MetricsRegistry) {
    let rec = Recorder::new();
    let h = Harness::new(cfg.clone()).with_recorder(rec.clone());
    let profile = profiles::claude35_sonnet();
    let (outcomes, stats) = h.evaluate_with_stats(&profile, true, flow);
    (
        artifact(outcomes, stats),
        render_journal(&rec),
        rec.metrics().canonical(),
    )
}

/// Evaluates the same grid as `count` sequential shards merged back.
fn sharded(
    cfg: &HarnessConfig,
    flow: Flow,
    count: usize,
) -> (String, String, aivril_obs::MetricsRegistry) {
    let rec = Recorder::new();
    let h = Harness::new(cfg.clone()).with_recorder(rec.clone());
    let profile = profiles::claude35_sonnet();
    let cells = h.problems().len() * cfg.samples as usize;
    let runs = plan_shards(cells, count)
        .into_iter()
        .map(|range| h.run_shard(&profile, true, flow, range))
        .collect();
    let (outcomes, stats) = h.merge_shards(runs);
    (
        artifact(outcomes, stats),
        render_journal(&rec),
        rec.metrics().canonical(),
    )
}

#[test]
fn three_shards_merge_byte_identically() {
    let cfg = config(6, 3, 2);
    let (json_a, journal_a, metrics_a) = single_process(&cfg, Flow::Aivril2);
    let (json_b, journal_b, metrics_b) = sharded(&cfg, Flow::Aivril2, 3);
    assert_eq!(json_a, json_b, "results JSON must match byte-for-byte");
    assert_eq!(journal_a, journal_b, "journals must match byte-for-byte");
    assert_eq!(metrics_a, metrics_b, "canonical metrics must match");
}

#[test]
fn shard_count_exceeding_grid_still_merges_identically() {
    // 2 tasks x 2 samples = 4 cells over 9 shards: most shards are
    // empty ranges, which must merge as no-ops.
    let cfg = config(2, 2, 1);
    let (json_a, journal_a, _) = single_process(&cfg, Flow::Baseline);
    let (json_b, journal_b, _) = sharded(&cfg, Flow::Baseline, 9);
    assert_eq!(json_a, json_b);
    assert_eq!(journal_a, journal_b);
}

#[test]
fn shard_config_evaluates_exactly_its_slice() {
    // 4 tasks x 3 samples = 12 cells; shard 1/3 is cells 4..8, i.e.
    // task 1 samples 1..3 and task 2 samples 0..2.
    let full = Harness::new(config(4, 3, 2));
    let profile = profiles::claude35_sonnet();
    let (all, _) = full.evaluate_with_stats(&profile, true, Flow::Aivril2);

    let shard = Harness::new(HarnessConfig {
        shard: Some((1, 3)),
        ..config(4, 3, 2)
    });
    let (slice, stats) = shard.evaluate_with_stats(&profile, true, Flow::Aivril2);
    assert_eq!(stats.runs, 4);
    assert_eq!(slice.len(), 2, "cells 4..8 span tasks 1 and 2");
    assert_eq!(slice[0].task, all[1].task);
    assert_eq!(slice[1].task, all[2].task);
    assert_eq!(slice[0].samples.len(), 2);
    assert_eq!(slice[1].samples.len(), 2);
    // The slice's samples are the full run's, to the bit.
    for (got, want) in slice[0].samples.iter().zip(&all[1].samples[1..]) {
        assert_eq!(got.total_latency.to_bits(), want.total_latency.to_bits());
        assert_eq!(got.functional, want.functional);
    }
    for (got, want) in slice[1].samples.iter().zip(&all[2].samples[..2]) {
        assert_eq!(got.total_latency.to_bits(), want.total_latency.to_bits());
        assert_eq!(got.functional, want.functional);
    }
}

#[test]
fn shard_env_parsing() {
    let get = |v: &'static str| move |k: &str| (k == "AIVRIL_SHARD").then(|| v.into());
    assert_eq!(
        HarnessConfig::from_vars(get("1/3")).shard,
        Some((1, 3)),
        "well-formed index/count parses"
    );
    assert_eq!(HarnessConfig::from_vars(get("0/1")).shard, Some((0, 1)));
    for bad in ["3/3", "4/3", "x/2", "2", "0/0", "1/", "/3", ""] {
        assert_eq!(
            HarnessConfig::from_vars(move |k: &str| (k == "AIVRIL_SHARD").then(|| bad.to_string()))
                .shard,
            None,
            "malformed AIVRIL_SHARD {bad:?} must be ignored"
        );
    }
    let c = HarnessConfig::from_vars(|k| match k {
        "AIVRIL_CHECKPOINT_DIR" => Some("ckpts".into()),
        "AIVRIL_EDA_CACHE_DIR" => Some("cache".into()),
        "AIVRIL_CANONICAL" => Some("1".into()),
        _ => None,
    });
    assert_eq!(c.checkpoint_dir.as_deref(), Some("ckpts"));
    assert_eq!(c.eda_cache_dir.as_deref(), Some("cache"));
    assert!(c.eda_cache, "AIVRIL_EDA_CACHE_DIR implies the cache");
    assert!(c.canonical);
}

#[test]
fn write_json_creates_missing_parent_directories() {
    // Regression: `--json runs/out.json` used to panic with "No such
    // file or directory" because fs::write does not mkdir.
    let dir = std::env::temp_dir().join(format!("aivril-writejson-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("a/b/out.json");
    let path = path.to_str().expect("utf-8 temp path");
    write_json(path, "{}\n").expect("creates parents");
    assert_eq!(std::fs::read_to_string(path).unwrap(), "{}\n");
    // Overwrites (and bare filenames with no parent) keep working.
    write_json(path, "[]\n").expect("overwrite");
    assert_eq!(std::fs::read_to_string(path).unwrap(), "[]\n");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// `plan_shards` always tiles `0..cells` contiguously with sizes
    /// differing by at most one.
    #[test]
    fn plan_shards_tiles_the_grid(cells in 0usize..2000, count in 1usize..32) {
        let shards = plan_shards(cells, count);
        prop_assert_eq!(shards.len(), count);
        prop_assert_eq!(shards.first().map(|s| s.start), Some(0));
        prop_assert_eq!(shards.last().map(|s| s.end), Some(cells));
        for pair in shards.windows(2) {
            prop_assert_eq!(pair[0].end, pair[1].start, "contiguous tiling");
        }
        let sizes: Vec<usize> = shards.iter().map(ShardRange::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "balanced: {sizes:?}");
        prop_assert_eq!(sizes.iter().sum::<usize>(), cells);
    }
}

proptest! {
    // Each case runs two real evaluations; keep the count small but
    // the shapes diverse (grid size, shard count, thread count, flow).
    #![proptest_config(ProptestConfig {
        cases: 6, ..ProptestConfig::default()
    })]

    #[test]
    fn any_partition_merges_byte_identically(
        task_limit in 1usize..5,
        samples in 1u32..4,
        count in 1usize..6,
        threads in 1usize..4,
        baseline in 0usize..2,
    ) {
        let flow = if baseline == 0 { Flow::Baseline } else { Flow::Aivril2 };
        let cfg = config(task_limit, samples, threads);
        let (json_a, journal_a, metrics_a) = single_process(&cfg, flow);
        let (json_b, journal_b, metrics_b) = sharded(&cfg, flow, count);
        prop_assert_eq!(json_a, json_b, "results JSON diverged");
        prop_assert_eq!(journal_a, journal_b, "journal diverged");
        prop_assert_eq!(metrics_a, metrics_b, "canonical metrics diverged");
    }
}
