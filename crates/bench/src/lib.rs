//! Benchmark harness: runs the AIVRIL2 pipeline and the zero-shot
//! baseline over the 156-problem suite and scores them exactly as the
//! paper does — pass@1_S from the compiler, pass@1_F from the
//! benchmark's *reference* testbenches (not the self-generated ones).
//!
//! # Parallel, deterministic evaluation
//!
//! The problem × sample grid is embarrassingly parallel: each pipeline
//! run touches only its own model conversation and tool invocations
//! (the framework is LLM-agnostic and the simulated models are pure
//! functions of `(model, task, seed)`). [`Harness::evaluate`] therefore
//! shards the grid across a worker pool (`AIVRIL_THREADS`, default: all
//! cores); each worker owns its own [`SimLlm`] clone, pipeline and
//! [`XsimToolSuite`] instance. Because every run's seed is derived
//! explicitly from its grid coordinates ([`run_seed`]) and results are
//! merged back in problem/sample order, parallel and serial runs
//! produce **bit-identical** [`EvalOutcome`]s — `tests/determinism.rs`
//! enforces this.
//!
//! The binaries in `src/bin` regenerate each table/figure:
//!
//! * `table1` — pass-rate summary (paper Table 1)
//! * `table2` — state-of-the-art comparison (paper Table 2)
//! * `figure3` — latency breakdown (paper Figure 3)
//! * `ablation` — extension experiments DESIGN.md calls out
//! * `quicklook` — tiny smoke run for CI-speed sanity checks

#![warn(missing_docs)]

pub mod checkpoint;

use aivril_core::{
    Aivril2, Aivril2Config, BaselineFlow, ResilienceCounters, RunResult, Stage, TaskInput,
};
use aivril_eda::{
    CacheStats, DiskStats, EdaCache, EdaFaultPlan, HdlFile, ToolSuite, XsimToolSuite,
};
use aivril_llm::{FaultConfig, ModelProfile, SimLlm, TaskLibrary};
use aivril_metrics::{EvalOutcome, SampleOutcome};
use aivril_obs::{codec, json, Recorder};
use aivril_sim::{KernelPerf, SimConfig};
use aivril_verilogeval::{suite, Problem};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Which pipeline to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Zero-shot single generation.
    Baseline,
    /// The full AIVRIL2 loop architecture.
    Aivril2,
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Samples per task (n of the pass@k estimator).
    pub samples: u32,
    /// Cap on the number of tasks (156 = full suite); useful for quick
    /// runs.
    pub task_limit: usize,
    /// Worker threads for [`Harness::evaluate`]; `0` (the default)
    /// auto-detects the machine's parallelism. Results are
    /// bit-identical for every thread count.
    pub threads: usize,
    /// Enables the content-addressed EDA result cache
    /// ([`EdaCache`]), shared across the worker pool. Off by default;
    /// results are bit-identical either way, only wall-clock changes.
    pub eda_cache: bool,
    /// Enables the sub-compile incremental memos (per-file parse +
    /// closure-keyed elaboration) inside the EDA cache
    /// (`AIVRIL_INCREMENTAL`; on by default, `0` disables). Inert
    /// unless [`HarnessConfig::eda_cache`] is on; results are
    /// bit-identical either way, only wall-clock changes.
    pub incremental: bool,
    /// Deterministic LLM fault plan ([`FaultConfig`]) injected into
    /// every worker's model. Off by default; fault decisions are pure
    /// functions of request content, so faulted runs are bit-identical
    /// for every thread count too.
    pub faults: FaultConfig,
    /// Deterministic EDA/storage fault plan ([`EdaFaultPlan`],
    /// `AIVRIL_EDA_FAULTS`): tool crashes/hangs/log corruption, disk
    /// cache chaos and checkpoint torn writes. Off by default; every
    /// decision is a pure hash of the invocation's content key, so
    /// faulted runs stay bit-identical across thread counts and cache
    /// modes.
    pub eda_faults: EdaFaultPlan,
    /// Override for the simulator's delta-cycle watchdog
    /// (`max_deltas_per_step`); `None` keeps [`SimConfig::default`].
    pub sim_max_deltas: Option<u32>,
    /// Pipeline budgets.
    pub pipeline: Aivril2Config,
    /// Evaluate only shard `index` of `count` ([`plan_shards`]
    /// partition) instead of the full grid — the `AIVRIL_SHARD=i/n`
    /// distributed mode. `None` evaluates everything.
    pub shard: Option<(usize, usize)>,
    /// Directory for shard checkpoint logs (`AIVRIL_CHECKPOINT_DIR`).
    /// Completed cells are appended as they finish and replayed on
    /// restart, bit-identically; a full-range run over a directory
    /// other shards filled *is* the merge pass.
    pub checkpoint_dir: Option<String>,
    /// Directory for the persistent on-disk EDA cache tier
    /// (`AIVRIL_EDA_CACHE_DIR`); implies [`HarnessConfig::eda_cache`].
    pub eda_cache_dir: Option<String>,
    /// Canonical-output mode (`AIVRIL_CANONICAL`): zero the volatile
    /// `wall_seconds` and schedule-recording `threads` stats fields
    /// and drop the diagnostic `eda_cache`/`kernel` blocks, so
    /// results JSON from different processes, machines, thread counts
    /// or cache modes can be compared byte-for-byte.
    pub canonical: bool,
}

impl Default for HarnessConfig {
    fn default() -> HarnessConfig {
        HarnessConfig {
            samples: 5,
            task_limit: usize::MAX,
            threads: 0,
            eda_cache: false,
            incremental: true,
            faults: FaultConfig::off(),
            eda_faults: EdaFaultPlan::off(),
            sim_max_deltas: None,
            pipeline: Aivril2Config::default(),
            shard: None,
            checkpoint_dir: None,
            eda_cache_dir: None,
            canonical: false,
        }
    }
}

impl HarnessConfig {
    /// Reads `AIVRIL_SAMPLES` / `AIVRIL_TASKS` / `AIVRIL_THREADS` /
    /// `AIVRIL_EDA_CACHE` / `AIVRIL_INCREMENTAL` from the environment
    /// so the table binaries
    /// can be scaled without recompiling, plus the resilience knobs:
    /// `AIVRIL_FAULTS` (fault plan, see [`FaultConfig::parse`]),
    /// `AIVRIL_RETRY_MAX`, `AIVRIL_BACKOFF_BASE_MS`,
    /// `AIVRIL_BREAKER_THRESHOLD` and `AIVRIL_SIM_MAX_DELTAS`, plus
    /// the distributed-evaluation knobs: `AIVRIL_SHARD=i/n` (evaluate
    /// shard *i* of *n*), `AIVRIL_CHECKPOINT_DIR` (crash-safe resume
    /// and cross-process merge), `AIVRIL_EDA_CACHE_DIR` (persistent
    /// cache tier; implies `AIVRIL_EDA_CACHE=1`) and
    /// `AIVRIL_CANONICAL` (byte-comparable artifacts).
    #[must_use]
    pub fn from_env() -> HarnessConfig {
        Self::from_vars(|key| std::env::var(key).ok())
    }

    /// Like [`HarnessConfig::from_env`], but with an injectable
    /// variable lookup — tests pass a closure over a local map instead
    /// of mutating the process-global environment (which races against
    /// other tests running in the same process). Warnings about
    /// malformed values are printed to stderr; use
    /// [`HarnessConfig::from_vars_checked`] to inspect them instead.
    #[must_use]
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> HarnessConfig {
        let (c, warnings) = Self::from_vars_checked(get);
        for w in warnings {
            eprintln!("[config] {w}");
        }
        c
    }

    /// The parse behind [`HarnessConfig::from_vars`], returning the
    /// warnings instead of printing them. A malformed resilience knob
    /// is *warned about and ignored* (the `AIVRIL_SHARD` discipline),
    /// never silently dropped: `AIVRIL_RETRY_MAX`,
    /// `AIVRIL_BREAKER_THRESHOLD` and `AIVRIL_SIM_MAX_DELTAS` must be
    /// non-negative integers, and `AIVRIL_BACKOFF_BASE_MS` must be a
    /// finite, non-negative number — a NaN or negative base would
    /// corrupt every modeled backoff wait downstream.
    #[must_use]
    pub fn from_vars_checked(get: impl Fn(&str) -> Option<String>) -> (HarnessConfig, Vec<String>) {
        let mut c = HarnessConfig::default();
        let mut warnings = Vec::new();
        if let Some(n) = get("AIVRIL_SAMPLES").and_then(|v| v.parse().ok()) {
            c.samples = n;
        }
        if let Some(n) = get("AIVRIL_TASKS").and_then(|v| v.parse().ok()) {
            c.task_limit = n;
        }
        if let Some(n) = get("AIVRIL_THREADS").and_then(|v| v.parse().ok()) {
            c.threads = n;
        }
        if let Some(v) = get("AIVRIL_EDA_CACHE") {
            c.eda_cache = !v.is_empty() && v != "0";
        }
        if let Some(v) = get("AIVRIL_INCREMENTAL") {
            c.incremental = !v.is_empty() && v != "0";
        }
        if let Some(v) = get("AIVRIL_FAULTS") {
            match FaultConfig::parse(&v) {
                Ok(f) => c.faults = f,
                Err(e) => warnings.push(format!("ignoring AIVRIL_FAULTS: {e}")),
            }
        }
        if let Some(v) = get("AIVRIL_EDA_FAULTS") {
            match EdaFaultPlan::parse(&v) {
                Ok(f) => c.eda_faults = f,
                Err(e) => warnings.push(format!("ignoring AIVRIL_EDA_FAULTS: {e}")),
            }
        }
        let mut parse_u32 = |key: &'static str| -> Option<u32> {
            match get(key)?.parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    warnings.push(format!(
                        "ignoring {key} (want a non-negative integer): {}",
                        get(key).unwrap_or_default()
                    ));
                    None
                }
            }
        };
        if let Some(n) = parse_u32("AIVRIL_RETRY_MAX") {
            c.pipeline.resilience.retry_max = n;
        }
        if let Some(n) = parse_u32("AIVRIL_BREAKER_THRESHOLD") {
            c.pipeline.resilience.breaker_threshold = n;
        }
        if let Some(n) = parse_u32("AIVRIL_SIM_MAX_DELTAS") {
            c.sim_max_deltas = Some(n);
        }
        if let Some(v) = get("AIVRIL_BACKOFF_BASE_MS") {
            match v.parse::<f64>() {
                Ok(ms) if ms.is_finite() && ms >= 0.0 => {
                    c.pipeline.resilience.backoff_base_s = ms / 1000.0;
                }
                _ => warnings.push(format!(
                    "ignoring AIVRIL_BACKOFF_BASE_MS (want a finite, non-negative number): {v}"
                )),
            }
        }
        if let Some(v) = get("AIVRIL_SHARD") {
            match parse_shard(&v) {
                Some(shard) => c.shard = Some(shard),
                None => {
                    warnings.push(format!(
                        "ignoring AIVRIL_SHARD (want index/count, e.g. 0/3): {v}"
                    ));
                }
            }
        }
        if let Some(dir) = get("AIVRIL_CHECKPOINT_DIR").filter(|v| !v.is_empty()) {
            c.checkpoint_dir = Some(dir);
        }
        if let Some(dir) = get("AIVRIL_EDA_CACHE_DIR").filter(|v| !v.is_empty()) {
            c.eda_cache = true;
            c.eda_cache_dir = Some(dir);
        }
        if let Some(v) = get("AIVRIL_CANONICAL") {
            c.canonical = !v.is_empty() && v != "0";
        }
        (c, warnings)
    }

    /// The worker count [`Harness::evaluate`] will actually use:
    /// `threads`, or the machine's available parallelism when `0`.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.threads
        }
    }
}

/// Parses `AIVRIL_SHARD`'s `index/count` syntax; `None` on anything
/// malformed (including `index >= count` or `count == 0`).
fn parse_shard(v: &str) -> Option<(usize, usize)> {
    let (index, count) = v.split_once('/')?;
    let (index, count) = (index.trim().parse().ok()?, count.trim().parse().ok()?);
    (count > 0 && index < count).then_some((index, count))
}

/// A contiguous range of evaluation-grid cells, `start..end`, where a
/// cell's index is `problem_index * samples + sample`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First cell (inclusive).
    pub start: usize,
    /// One past the last cell.
    pub end: usize,
}

impl ShardRange {
    /// Number of cells in the range.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the range covers no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Partitions a grid of `cells` cells into `count` contiguous,
/// balanced [`ShardRange`]s: sizes differ by at most one, with earlier
/// shards taking the remainder. Pure — every process that plans the
/// same `(cells, count)` agrees on the boundaries, which is what lets
/// independently spawned shard processes tile the grid exactly.
#[must_use]
pub fn plan_shards(cells: usize, count: usize) -> Vec<ShardRange> {
    let count = count.max(1);
    let (base, rem) = (cells / count, cells % count);
    let mut start = 0;
    (0..count)
        .map(|i| {
            let end = start + base + usize::from(i < rem);
            let range = ShardRange { start, end };
            start = end;
            range
        })
        .collect()
}

/// The seed of one evaluation run, derived purely from its grid
/// coordinates:
///
/// ```text
/// seed(problem_index, sample) = problem_index * 1_000_003 + sample * 7_919 + 17
/// ```
///
/// Every run is therefore independent of execution order — the
/// foundation of the parallel harness's bit-for-bit determinism. The
/// multipliers keep `(problem, sample)` pairs collision-free for any
/// sample count below 127 (the full suite uses 5), and [`SimLlm`]
/// additionally hashes the task *name* into its streams, so equal seeds
/// on different problems would not correlate anyway.
#[must_use]
pub fn run_seed(problem_index: usize, sample: u32) -> u64 {
    problem_index as u64 * 1_000_003 + u64::from(sample) * 7_919 + 17
}

/// Aggregate statistics of one [`Harness::evaluate_with_stats`] call:
/// the progress/throughput layer the table binaries surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalStats {
    /// Pipeline runs completed (problems × samples).
    pub runs: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Real elapsed seconds of the evaluation.
    pub wall_seconds: f64,
    /// Modeled end-to-end seconds (what Figure 3 reports): LLM + tools.
    pub modeled_seconds: f64,
    /// Modeled seconds attributable to the language model.
    pub modeled_llm_seconds: f64,
    /// Modeled seconds attributable to the EDA tools.
    pub modeled_tool_seconds: f64,
    /// Total corrective iterations of the syntax loops.
    pub syntax_iters: u64,
    /// Total corrective iterations of the functional loop.
    pub functional_iters: u64,
    /// EDA-cache counters scoped to this evaluation (hits/misses are
    /// deltas; entries is the store size afterwards). `None` when the
    /// cache is disabled. The deltas are deterministic — independent of
    /// `AIVRIL_THREADS` — because a key is missed exactly once however
    /// workers race (see `aivril_eda::EdaCache`).
    pub eda_cache: Option<CacheStats>,
    /// Resilience counters summed over every run: injected faults,
    /// retries, backoff seconds, breaker opens, degraded finishes and
    /// watchdog aborts. All-zero without fault injection.
    pub resilience: ResilienceCounters,
    /// Runs that panicked and were isolated by the harness; each is
    /// scored as a failed sample.
    pub crashed: u64,
    /// Simulation-kernel performance counters scoped to this evaluation
    /// (delta of the suite's lifetime totals). Diagnostic only — like
    /// `eda_cache`, excluded from canonical comparisons; deterministic
    /// across `AIVRIL_THREADS` and cache modes because cache hits fold
    /// the stored run's counters.
    pub kernel: KernelPerf,
}

impl fmt::Display for EvalStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let per_run = |v: u64| v as f64 / self.runs.max(1) as f64;
        write!(
            f,
            "[stats] {} runs on {} thread(s) in {:.2}s wall | modeled {:.1}s \
             (llm {:.1}s + tools {:.1}s) | iters/run: {:.2} syntax, {:.2} functional",
            self.runs,
            self.threads,
            self.wall_seconds,
            self.modeled_seconds,
            self.modeled_llm_seconds,
            self.modeled_tool_seconds,
            per_run(self.syntax_iters),
            per_run(self.functional_iters),
        )?;
        if let Some(cache) = &self.eda_cache {
            write!(f, " | cache: {cache}")?;
        }
        if self.kernel.instructions > 0 {
            write!(
                f,
                " | kernel: {} instrs @ {:.0} instrs/sim-s, {} spilled evals, \
                 {} compactions, {} arena words",
                self.kernel.instructions,
                self.kernel.instrs_per_sim_sec(),
                self.kernel.eval_allocs,
                self.kernel.compactions,
                self.kernel.arena_words,
            )?;
        }
        // Only printed when something actually went wrong, so fault-free
        // output stays byte-identical to pre-resilience builds.
        if self.resilience.any() || self.crashed > 0 {
            let r = &self.resilience;
            write!(
                f,
                " | resilience: {} faults, {} retries ({:.1}s backoff), \
                 {} breaker opens, {} degraded, {} sim-diverged, {} crashed",
                r.llm_faults,
                r.retries,
                r.backoff_s,
                r.breaker_opens,
                r.degraded,
                r.sim_diverged,
                self.crashed,
            )?;
        }
        Ok(())
    }
}

/// Builds the simulated models' task knowledge from the benchmark
/// suite's golden solutions.
#[must_use]
pub fn build_library(problems: &[Problem]) -> TaskLibrary {
    let mut lib = TaskLibrary::new();
    for p in problems {
        lib.add_task(
            &p.name,
            &p.verilog.dut,
            &p.verilog.tb,
            &p.vhdl.dut,
            &p.vhdl.tb,
        );
    }
    lib
}

/// One completed run, as stored by the worker pool (and, through the
/// [`checkpoint`] codec, on disk — which is why it is public: the
/// read-only checkpoint scanners hand these back to `aivril-inspect
/// tail`).
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The scored outcome of the run.
    pub outcome: SampleOutcome,
    /// Modeled seconds attributable to the language model.
    pub llm_seconds: f64,
    /// Modeled seconds attributable to the EDA tools.
    pub tool_seconds: f64,
    /// Resilience counters accumulated by the run.
    pub resilience: ResilienceCounters,
}

/// One executed run with its final sources: the [`RunRecord`] the grid
/// aggregates plus the RTL/testbench the pipeline settled on — what a
/// job *service* must hand back to the caller (the grid harness scores
/// and discards the sources; a submitted job exists to produce them).
#[derive(Debug, Clone)]
pub struct JobRun {
    /// The scored record, as stored by the worker pool.
    pub record: RunRecord,
    /// Final RTL source (empty for crashed runs).
    pub rtl: String,
    /// Final self-generated testbench (empty for the baseline flow and
    /// crashed runs).
    pub tb: String,
}

/// The record of a run that panicked: scored as a failure on both
/// axes, zero modeled time, flagged `crashed`.
fn crashed_record() -> RunRecord {
    RunRecord {
        outcome: SampleOutcome {
            syntax: false,
            functional: false,
            total_latency: 0.0,
            syntax_phase_latency: 0.0,
            functional_phase_latency: 0.0,
            syntax_iters: 0,
            functional_iters: 0,
            crashed: true,
        },
        llm_seconds: 0.0,
        tool_seconds: 0.0,
        resilience: ResilienceCounters::default(),
    }
}

/// Runs one grid cell with panic isolation: a poisoned input that
/// panics the pipeline yields a counted [`crashed_record`] instead of
/// tearing down the whole worker pool. The recorder survives (its lock
/// recovers from poisoning); the caller must rebuild the worker, whose
/// conversation state may be half-written.
fn run_isolated(f: impl FnOnce() -> JobRun) -> JobRun {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|_| JobRun {
        record: crashed_record(),
        rtl: String::new(),
        tb: String::new(),
    })
}

/// Per-worker execution state: one model conversation context and one
/// pipeline instance, shared with no other worker.
struct Worker<'t> {
    model: SimLlm,
    pipeline: Aivril2<'t>,
    baseline: BaselineFlow,
    recorder: Recorder,
}

/// The evaluation harness: tools + suite + model knowledge.
pub struct Harness {
    tools: XsimToolSuite,
    problems: Vec<Problem>,
    config: HarnessConfig,
    recorder: Recorder,
    // Built once per harness on first use; shared by every shard run
    // and every submitted job (the model clones share it by `Arc`).
    library: OnceLock<std::sync::Arc<TaskLibrary>>,
}

impl Harness {
    /// Creates a harness over the full 156-problem suite. When
    /// [`HarnessConfig::eda_cache`] is set, one [`EdaCache`] is
    /// installed in the tool suite; worker clones share it, so the
    /// whole evaluation grid (pipeline *and* scoring invocations)
    /// deduplicates through a single store.
    #[must_use]
    pub fn new(config: HarnessConfig) -> Harness {
        let mut tools = XsimToolSuite::new();
        if let Some(max_deltas) = config.sim_max_deltas {
            tools = tools.with_sim_config(SimConfig {
                max_deltas_per_step: max_deltas,
                ..SimConfig::default()
            });
        }
        if !config.eda_faults.is_off() {
            tools = tools.with_eda_faults(config.eda_faults);
        }
        if let Some(dir) = &config.eda_cache_dir {
            tools = tools.with_cache(if config.eda_faults.is_off() {
                EdaCache::persistent(dir)
            } else {
                EdaCache::persistent_with_faults(dir, config.eda_faults)
            });
        } else if config.eda_cache {
            tools = tools.with_cache(EdaCache::new());
        }
        tools = tools.with_incremental(config.incremental);
        Harness {
            tools,
            problems: suite(),
            config,
            recorder: Recorder::disabled(),
            library: OnceLock::new(),
        }
    }

    /// The simulated models' task knowledge over [`Harness::problems`],
    /// built lazily on first use and shared from then on.
    #[must_use]
    pub fn library(&self) -> std::sync::Arc<TaskLibrary> {
        self.library
            .get_or_init(|| std::sync::Arc::new(build_library(self.problems())))
            .clone()
    }

    /// Attaches an observability recorder. Each worker gets a fork
    /// wired into its model, pipeline and tool suite; forks are folded
    /// back and sorted by grid coordinates, so journals and metrics are
    /// bit-identical for every thread count. Disabled by default.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Harness {
        self.recorder = recorder;
        self
    }

    /// The benchmark problems in use (after the task cap).
    #[must_use]
    pub fn problems(&self) -> &[Problem] {
        &self.problems[..self.problems.len().min(self.config.task_limit)]
    }

    /// Lifetime counters of the shared EDA result cache; `None` when
    /// [`HarnessConfig::eda_cache`] is off. Binaries print this after
    /// their evaluations as the `[cache]` summary line.
    #[must_use]
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.tools.cache().map(EdaCache::stats)
    }

    /// Counters of the persistent on-disk cache tier; `None` unless
    /// [`HarnessConfig::eda_cache_dir`] is set.
    #[must_use]
    pub fn disk_cache_stats(&self) -> Option<DiskStats> {
        self.tools.cache().and_then(EdaCache::disk_stats)
    }

    /// Scores a final RTL source: compiles it alone for pass@1_S, then
    /// simulates it against the *reference* testbench for pass@1_F —
    /// the paper's methodology ("executing the testbenches provided in
    /// the benchmark suite").
    #[must_use]
    pub fn score(&self, problem: &Problem, rtl: &str, verilog: bool) -> (bool, bool) {
        self.score_with_latency(problem, rtl, verilog).0
    }

    /// Like [`Harness::score`], also returning the modeled EDA seconds
    /// of the evaluation run (baseline latency accounting: the paper's
    /// Figure 3 "accounts for the execution times of EDA tools").
    #[must_use]
    pub fn score_with_latency(
        &self,
        problem: &Problem,
        rtl: &str,
        verilog: bool,
    ) -> ((bool, bool), f64) {
        let ext = if verilog { "v" } else { "vhd" };
        let dut = HdlFile::new(format!("{}.{ext}", problem.module_name), rtl.to_string());
        let compile = self
            .tools
            .compile_to_design(std::slice::from_ref(&dut), Some(&problem.module_name));
        let syntax = compile.0.success;
        if !syntax {
            return ((false, false), compile.0.modeled_latency);
        }
        let golden = problem.golden(verilog);
        let report = self.tools.simulate(
            &[dut, HdlFile::new(format!("tb.{ext}"), golden.tb.clone())],
            Some("tb"),
        );
        (
            (true, report.passed),
            compile.0.modeled_latency + report.modeled_latency,
        )
    }

    /// Executes one run. Self-contained: everything a run needs —
    /// including its `seed` — arrives through its arguments, so calls
    /// are order-independent and trivially parallel. The grid path
    /// passes [`run_seed`] of the cell coordinates; the serve layer
    /// passes its own `(tenant, job)`-derived seed.
    #[allow(clippy::too_many_arguments)]
    fn run_one(
        &self,
        worker: &mut Worker<'_>,
        problem: &Problem,
        problem_index: usize,
        sample: u32,
        seed: u64,
        verilog: bool,
        flow: Flow,
    ) -> JobRun {
        let task = TaskInput {
            name: problem.name.clone(),
            module_name: problem.module_name.clone(),
            spec: problem.spec.clone(),
            verilog,
            seed,
        };
        // Journal events of this run are grouped under its grid
        // coordinates; the external scoring below stays untraced (it
        // uses the harness's shared, recorder-free tool suite and is
        // not part of the pipeline the paper's figures describe).
        worker.recorder.begin_run(problem_index as u32, sample);
        let result: RunResult = match flow {
            Flow::Baseline => worker
                .baseline
                .run(&mut worker.model, &task, &self.config.pipeline),
            Flow::Aivril2 => worker.pipeline.run(&mut worker.model, &task),
        };
        worker.recorder.end_run();
        let ((syntax, functional), score_latency) =
            self.score_with_latency(problem, &result.final_rtl, verilog);
        // Baseline latency includes its single EDA evaluation pass
        // (the paper's baseline bars include EDA tool time);
        // AIVRIL2's tool time is already inside its trace.
        let extra = if flow == Flow::Baseline {
            score_latency
        } else {
            0.0
        };
        let outcome = SampleOutcome {
            syntax,
            functional,
            total_latency: result.trace.total_latency() + extra,
            syntax_phase_latency: result.trace.syntax_phase_latency(),
            functional_phase_latency: result.trace.functional_phase_latency(),
            syntax_iters: result.trace.iterations(Stage::TbSyntaxLoop)
                + result.trace.iterations(Stage::RtlSyntaxLoop),
            functional_iters: result.trace.iterations(Stage::FunctionalLoop),
            crashed: false,
        };
        JobRun {
            record: RunRecord {
                outcome,
                llm_seconds: result.trace.llm_latency(),
                tool_seconds: result.trace.tool_latency() + extra,
                resilience: result.resilience,
            },
            rtl: result.final_rtl,
            tb: result.final_tb,
        }
    }

    /// Executes one *submitted job* outside the evaluation grid: the
    /// serve layer's entry point. `seed` is the job's identity-derived
    /// seed (the [`run_seed`] discipline applied to `(tenant, job)`
    /// instead of grid coordinates) and `recorder` receives the job's
    /// journal run — one `begin_run(problem_index, 0)` scope holding
    /// every pipeline span, which the service streams back as progress
    /// frames. Panics inside the pipeline are isolated into a crashed
    /// record exactly like a grid cell.
    ///
    /// Determinism: the result is a pure function of `(profile,
    /// problem, seed, verilog, flow, faults, pipeline config)` — the
    /// worker is built fresh here and shares only the immutable task
    /// library and the schedule-invariant [`EdaCache`] with concurrent
    /// jobs, so replaying a job yields bit-identical output however
    /// other jobs interleave.
    ///
    /// # Panics
    ///
    /// Panics when `problem_index` is outside [`Harness::problems`].
    #[must_use]
    pub fn run_job(
        &self,
        profile: &ModelProfile,
        problem_index: usize,
        seed: u64,
        verilog: bool,
        flow: Flow,
        recorder: &Recorder,
    ) -> JobRun {
        let problems = self.problems();
        assert!(
            problem_index < problems.len(),
            "problem index {problem_index} outside the {}-problem suite",
            problems.len()
        );
        let library = self.library();
        let tools = self.tools.clone().with_recorder(recorder.clone());
        let mut worker = Worker {
            model: SimLlm::new(profile.clone(), library)
                .with_faults(self.config.faults)
                .with_recorder(recorder.clone()),
            pipeline: Aivril2::new(&tools, self.config.pipeline).with_recorder(recorder.clone()),
            baseline: BaselineFlow::new(),
            recorder: recorder.clone(),
        };
        let job = run_isolated(|| {
            self.run_one(
                &mut worker,
                &problems[problem_index],
                problem_index,
                0,
                seed,
                verilog,
                flow,
            )
        });
        if job.record.outcome.crashed {
            // Close the interrupted run's journal scope.
            worker.recorder.end_run();
        }
        job
    }

    /// Runs one flow over the suite for one model × language, returning
    /// per-task outcomes ready for the metrics crate.
    ///
    /// Work is sharded across [`HarnessConfig::effective_threads`]
    /// workers; results are merged back in problem/sample order and are
    /// bit-identical for every thread count (see the crate docs).
    pub fn evaluate(&self, profile: &ModelProfile, verilog: bool, flow: Flow) -> Vec<EvalOutcome> {
        self.evaluate_with_stats(profile, verilog, flow).0
    }

    /// Like [`Harness::evaluate`], also returning wall-clock and
    /// iteration statistics ([`EvalStats`]). Internally this is
    /// [`Harness::run_shard`] over the configured cell range (the full
    /// grid, or the [`HarnessConfig::shard`] slice) followed by
    /// [`Harness::merge_shards`] — a single-process evaluation is just
    /// the one-shard special case of the distributed protocol, so both
    /// paths share every byte of the rendering pipeline.
    pub fn evaluate_with_stats(
        &self,
        profile: &ModelProfile,
        verilog: bool,
        flow: Flow,
    ) -> (Vec<EvalOutcome>, EvalStats) {
        let total = self.problems().len() * self.config.samples as usize;
        let range = match self.config.shard {
            // An out-of-range index (impossible via `AIVRIL_SHARD`
            // parsing) degrades to an empty slice, not a panic.
            Some((index, count)) => {
                plan_shards(total, count)
                    .get(index)
                    .copied()
                    .unwrap_or(ShardRange {
                        start: total,
                        end: total,
                    })
            }
            None => ShardRange {
                start: 0,
                end: total,
            },
        };
        let shard = self.run_shard(profile, verilog, flow, range);
        self.merge_shards(vec![shard])
    }

    /// Fingerprint of everything that determines a cell's result and
    /// telemetry: model, language, flow, grid shape, fault plan,
    /// pipeline budgets, watchdog override and whether a recorder is
    /// attached. Checkpoint logs carrying a different fingerprint are
    /// ignored. Shard topology is deliberately *excluded* so any
    /// process can replay any shard's cells — that is exactly what the
    /// `aivril-shard` merge pass does.
    fn fingerprint(&self, profile: &ModelProfile, verilog: bool, flow: Flow) -> u64 {
        let mut w = codec::Writer::new();
        w.str(&format!("{profile:?}"));
        w.bool(verilog);
        w.str(match flow {
            Flow::Baseline => "baseline",
            Flow::Aivril2 => "aivril2",
        });
        w.u64(u64::from(self.config.samples));
        w.u64(self.problems().len() as u64);
        w.bool(self.recorder.is_enabled());
        w.str(&format!(
            "{:?}{:?}{:?}",
            self.config.faults, self.config.pipeline, self.config.sim_max_deltas
        ));
        // Folded in only when live so every all-off artifact (checkpoint
        // file names included) is byte-identical to a plan-unaware build.
        if !self.config.eda_faults.is_off() {
            w.str(&format!("{:?}", self.config.eda_faults));
        }
        codec::fnv64(w.payload().as_bytes())
    }

    /// Evaluates one contiguous slice of the problem × sample grid —
    /// the distributed-evaluation building block. Seeds are derived
    /// from grid coordinates ([`run_seed`]), so any partition of the
    /// grid computes exactly the cells a full run would.
    ///
    /// With [`HarnessConfig::checkpoint_dir`] set, cells already
    /// present in the checkpoint directory are *replayed* (records,
    /// journal runs and metrics restored bit-identically) and each
    /// freshly computed cell is appended as it finishes, so a killed
    /// process resumes where it stopped.
    ///
    /// # Panics
    ///
    /// Panics when `range` does not fit the grid.
    pub fn run_shard(
        &self,
        profile: &ModelProfile,
        verilog: bool,
        flow: Flow,
        range: ShardRange,
    ) -> ShardRun {
        let start = Instant::now();
        let cache_before = self.cache_stats();
        let kernel_before = self.tools.kernel_stats();
        let problems = self.problems();
        let samples = self.config.samples as usize;
        let total = problems.len() * samples;
        assert!(
            range.start <= range.end && range.end <= total,
            "shard range {range:?} outside the {total}-cell grid"
        );
        let library = self.library();

        // Telemetry: one fork per shard run (carrying the context
        // pairs), one sub-fork per cell. All of this is a no-op when
        // the harness recorder is disabled.
        let eval_rec = self.recorder.fork();
        eval_rec.set_context(&[
            ("model", &profile.name),
            ("lang", if verilog { "verilog" } else { "vhdl" }),
            (
                "flow",
                match flow {
                    Flow::Baseline => "baseline",
                    Flow::Aivril2 => "aivril2",
                },
            ),
        ]);

        // Checkpoint replay: restore finished cells in grid order (so
        // their journals and metrics fold in exactly as a live run
        // would emit them), queue the rest for the worker pool.
        let ckpt = self.config.checkpoint_dir.as_ref().map(|dir| {
            checkpoint::ShardCheckpoint::open(
                Path::new(dir),
                self.fingerprint(profile, verilog, flow),
                range,
            )
            .with_faults(self.config.eda_faults)
        });
        let slots: Vec<OnceLock<RunRecord>> = (0..range.len()).map(|_| OnceLock::new()).collect();
        let mut pending = Vec::new();
        for cell in range.start..range.end {
            match ckpt.as_ref().and_then(|c| c.restored(cell)) {
                Some(done) => {
                    for run in &done.runs {
                        eval_rec.push_run(run.clone());
                    }
                    eval_rec.merge_metrics(&done.metrics);
                    let _ = slots[cell - range.start].set(done.record.clone());
                }
                None => pending.push(cell),
            }
        }

        // One write-once slot per grid cell: workers claim pending
        // cells through the atomic cursor and publish results
        // lock-free; the merge reads them back in grid order, making
        // the output independent of scheduling.
        let threads = self
            .config
            .effective_threads()
            .clamp(1, pending.len().max(1));
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                // Shadow the shared state as references so the `move`
                // closure copies pointers, not the values themselves.
                let (library, slots, cursor) = (&library, &slots, &cursor);
                let (pending, eval_rec, ckpt) = (&pending, &eval_rec, &ckpt);
                scope.spawn(move || {
                    loop {
                        let next = cursor.fetch_add(1, Ordering::Relaxed);
                        if next >= pending.len() {
                            break;
                        }
                        let cell = pending[next];
                        let (pi, si) = (cell / samples, (cell % samples) as u32);
                        // One recorder fork and one worker per *cell*:
                        // the fork captures exactly this cell's journal
                        // runs and metrics delta, which is what the
                        // checkpoint line must carry for replay to be
                        // bit-identical. Rebuilding the worker is cheap
                        // (the model clone shares the task library) and
                        // keeps cells fully independent.
                        let cell_rec = eval_rec.fork();
                        let tools = self.tools.clone().with_recorder(cell_rec.clone());
                        let mut worker = Worker {
                            model: SimLlm::new(profile.clone(), library.clone())
                                .with_faults(self.config.faults)
                                .with_recorder(cell_rec.clone()),
                            pipeline: Aivril2::new(&tools, self.config.pipeline)
                                .with_recorder(cell_rec.clone()),
                            baseline: BaselineFlow::new(),
                            recorder: cell_rec.clone(),
                        };
                        let record = run_isolated(|| {
                            self.run_one(
                                &mut worker,
                                &problems[pi],
                                pi,
                                si,
                                run_seed(pi, si),
                                verilog,
                                flow,
                            )
                        })
                        .record;
                        if record.outcome.crashed {
                            // Close the interrupted run's journal; the
                            // half-written worker dies with this cell.
                            worker.recorder.end_run();
                        }
                        if let Some(ckpt) = ckpt {
                            ckpt.append(
                                cell,
                                &checkpoint::CellRecord {
                                    record: record.clone(),
                                    runs: cell_rec.runs(),
                                    metrics: cell_rec.metrics(),
                                },
                            );
                        }
                        eval_rec.absorb(&cell_rec);
                        let won = slots[cell - range.start].set(record).is_ok();
                        debug_assert!(won, "grid cell {cell} computed twice");
                    }
                });
            }
        });

        // The absorb order above is completion order; sorting by grid
        // coordinates restores one canonical journal for every thread
        // count and every replayed/computed split. The metrics merge
        // is order-independent by construction.
        eval_rec.sort_runs();

        // Cache accounting for this shard: the delta between the
        // shared cache's counters before and after. Emitted as
        // *diagnostic* metric series (`eda_cache_*`), which the
        // canonical metrics view excludes — they exist only with the
        // cache on, while every canonical series must be bit-identical
        // across cache modes.
        let eda_cache = self.cache_stats().zip(cache_before).map(|(now, before)| {
            let delta = now.since(&before);
            eval_rec.counter_add("eda_cache_hits_total", &[], delta.hits);
            eval_rec.counter_add("eda_cache_misses_total", &[], delta.misses);
            eval_rec.gauge_set("eda_cache_entries_total", &[], now.entries as f64);
            delta
        });
        self.recorder.absorb(&eval_rec);

        ShardRun {
            range,
            records: slots
                .into_iter()
                .map(|s| s.into_inner().expect("every cell computed or replayed"))
                .collect(),
            wall_seconds: start.elapsed().as_secs_f64(),
            eda_cache,
            kernel: self.tools.kernel_stats().since(&kernel_before),
        }
    }

    /// Merges shard outputs back into the single-evaluation shape:
    /// per-task outcomes in grid order plus aggregate [`EvalStats`].
    /// The shards may arrive in any order but must tile one contiguous
    /// cell range. Stats accumulate in grid order over the
    /// concatenated records — the same float-summation order a
    /// single-process run uses — so a sharded evaluation is
    /// bit-identical to an unsharded one.
    ///
    /// # Panics
    ///
    /// Panics when the shard ranges overlap or leave gaps.
    pub fn merge_shards(&self, mut shards: Vec<ShardRun>) -> (Vec<EvalOutcome>, EvalStats) {
        shards.sort_by_key(|s| s.range.start);
        for pair in shards.windows(2) {
            assert_eq!(
                pair[0].range.end, pair[1].range.start,
                "shards must tile a contiguous cell range"
            );
        }
        let problems = self.problems();
        let samples = self.config.samples as usize;
        let lo = shards.first().map_or(0, |s| s.range.start);
        let hi = shards.last().map_or(0, |s| s.range.end);

        // Diagnostic counters: deltas add across shards (they are
        // disjoint slices of one monotone counter stream); the entries
        // gauge takes the latest (= largest) store size.
        let eda_cache =
            shards
                .iter()
                .filter_map(|s| s.eda_cache)
                .fold(None, |acc: Option<CacheStats>, d| {
                    Some(match acc {
                        None => d,
                        Some(mut t) => {
                            t.hits += d.hits;
                            t.misses += d.misses;
                            t.entries = t.entries.max(d.entries);
                            t.parse_hits += d.parse_hits;
                            t.parse_misses += d.parse_misses;
                            t.elab_hits += d.elab_hits;
                            t.elab_misses += d.elab_misses;
                            t
                        }
                    })
                });
        let mut kernel = KernelPerf::default();
        for s in &shards {
            kernel.merge(&s.kernel);
        }
        let mut stats = EvalStats {
            runs: hi - lo,
            threads: self.config.effective_threads().clamp(1, (hi - lo).max(1)),
            wall_seconds: shards.iter().map(|s| s.wall_seconds).sum(),
            modeled_seconds: 0.0,
            modeled_llm_seconds: 0.0,
            modeled_tool_seconds: 0.0,
            syntax_iters: 0,
            functional_iters: 0,
            eda_cache,
            resilience: ResilienceCounters::default(),
            crashed: 0,
            kernel,
        };

        let mut records = shards
            .into_iter()
            .flat_map(|s| s.records)
            .collect::<Vec<_>>()
            .into_iter();
        let (first_problem, last_problem) = if hi == lo {
            (0, 0)
        } else {
            (lo / samples, (hi - 1) / samples + 1)
        };
        let mut outcomes = Vec::with_capacity(last_problem - first_problem);
        for (pi, problem) in problems
            .iter()
            .enumerate()
            .take(last_problem)
            .skip(first_problem)
        {
            let cells = (pi * samples).max(lo)..((pi + 1) * samples).min(hi);
            let mut task_samples = Vec::with_capacity(cells.len());
            for _ in cells {
                let record = records.next().expect("one record per covered cell");
                stats.modeled_seconds += record.outcome.total_latency;
                stats.modeled_llm_seconds += record.llm_seconds;
                stats.modeled_tool_seconds += record.tool_seconds;
                stats.syntax_iters += u64::from(record.outcome.syntax_iters);
                stats.functional_iters += u64::from(record.outcome.functional_iters);
                stats.resilience.merge(&record.resilience);
                stats.crashed += u64::from(record.outcome.crashed);
                task_samples.push(record.outcome);
            }
            outcomes.push(EvalOutcome {
                task: problem.name.clone(),
                samples: task_samples,
            });
        }
        if self.config.canonical {
            // Mask the documented volatile/diagnostic stats fields so
            // artifacts from different processes, machines, schedules
            // and cache modes compare byte-for-byte
            // (`AIVRIL_CANONICAL`). `threads` records the schedule
            // itself — the one thing cross-schedule comparisons must
            // not see.
            stats.wall_seconds = 0.0;
            stats.threads = 0;
            stats.eda_cache = None;
            stats.kernel = KernelPerf::default();
        }
        (outcomes, stats)
    }
}

/// One shard's evaluation output: the computed (or replayed) records
/// of its cell range plus its share of the diagnostic counters.
/// Opaque — produced by [`Harness::run_shard`], consumed by
/// [`Harness::merge_shards`].
#[derive(Debug)]
pub struct ShardRun {
    range: ShardRange,
    records: Vec<RunRecord>,
    wall_seconds: f64,
    eda_cache: Option<CacheStats>,
    kernel: KernelPerf,
}

/// Telemetry switches shared by every table/figure binary, read from
/// the environment:
///
/// * `AIVRIL_TRACE_JSON=<path>` — write the JSONL run journal there.
/// * `AIVRIL_TRACE_CHROME=<path>` — write a Chrome `trace_event` JSON
///   (Perfetto-viewable) there.
/// * `AIVRIL_METRICS=1` — print the rendered metrics registry after
///   the run's `EvalStats`.
///
/// When none is set the recorder is disabled and instrumentation costs
/// a branch per call site.
#[derive(Debug, Clone)]
pub struct Telemetry {
    recorder: Recorder,
    trace_path: Option<String>,
    chrome_path: Option<String>,
    metrics: bool,
}

impl Telemetry {
    /// Reads the telemetry switches from the process environment.
    #[must_use]
    pub fn from_env() -> Telemetry {
        Self::from_vars(|key| std::env::var(key).ok())
    }

    /// Like [`Telemetry::from_env`] with an injectable lookup (tests
    /// pass a closure instead of mutating the process environment).
    #[must_use]
    pub fn from_vars(get: impl Fn(&str) -> Option<String>) -> Telemetry {
        let trace_path = get("AIVRIL_TRACE_JSON").filter(|v| !v.is_empty());
        let chrome_path = get("AIVRIL_TRACE_CHROME").filter(|v| !v.is_empty());
        let metrics = get("AIVRIL_METRICS").is_some_and(|v| !v.is_empty() && v != "0");
        let enabled = trace_path.is_some() || chrome_path.is_some() || metrics;
        Telemetry {
            recorder: if enabled {
                Recorder::new()
            } else {
                Recorder::disabled()
            },
            trace_path,
            chrome_path,
            metrics,
        }
    }

    /// The recorder handle to install via [`Harness::with_recorder`].
    #[must_use]
    pub fn recorder(&self) -> Recorder {
        self.recorder.clone()
    }

    /// `true` when any telemetry output was requested.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_enabled()
    }

    /// Writes the requested exports and returns the rendered metrics
    /// summary (empty unless `AIVRIL_METRICS` is on) so binaries can
    /// append it to their `EvalStats` output.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when a journal/trace file cannot be
    /// written.
    pub fn finish(&self) -> std::io::Result<String> {
        if let Some(path) = &self.trace_path {
            write_json(path, &aivril_obs::render_journal(&self.recorder))?;
            eprintln!("[obs] run journal written to {path}");
        }
        if let Some(path) = &self.chrome_path {
            write_json(path, &aivril_obs::chrome_trace(&self.recorder))?;
            eprintln!("[obs] chrome trace written to {path}");
        }
        if self.metrics {
            let dump = self.recorder.metrics().render();
            return Ok(format!("[metrics]\n{dump}"));
        }
        Ok(String::new())
    }
}

/// One labelled evaluation's results, as serialised by
/// [`results_json`]: the section label (e.g. `claude-3.5-sonnet
/// verilog aivril2`), the per-task outcomes and the aggregate stats.
#[derive(Debug, Clone)]
pub struct ResultSection {
    /// Human-readable section label.
    pub label: String,
    /// Per-task outcomes in suite order.
    pub outcomes: Vec<EvalOutcome>,
    /// Aggregate statistics of the evaluation.
    pub stats: EvalStats,
}

/// Serialises evaluation results as schema-versioned JSON
/// (`aivril.results` version 5; v2 added the per-section
/// `stats.eda_cache` block, v3 the per-section `stats.resilience`
/// block and the per-sample `crashed` flag, v5 the `arena_words`
/// kernel gauge and the incremental parse/elab counters in the
/// `eda_cache` block, v4 the diagnostic
/// `stats.kernel` performance block) — the `--json <path>` payload of
/// the table/figure binaries. Hand-rolled (the build has no registry
/// access) but deterministic: fixed field order, fixed float format.
#[must_use]
pub fn results_json(sections: &[ResultSection]) -> String {
    let sample_json = |s: &SampleOutcome| {
        json::object(&[
            ("syntax", s.syntax.to_string()),
            ("functional", s.functional.to_string()),
            ("total_latency_s", json::number(s.total_latency)),
            (
                "syntax_phase_latency_s",
                json::number(s.syntax_phase_latency),
            ),
            (
                "functional_phase_latency_s",
                json::number(s.functional_phase_latency),
            ),
            ("syntax_iters", s.syntax_iters.to_string()),
            ("functional_iters", s.functional_iters.to_string()),
            ("crashed", s.crashed.to_string()),
        ])
    };
    let task_json = |o: &EvalOutcome| {
        let samples: Vec<String> = o.samples.iter().map(sample_json).collect();
        json::object(&[
            ("task", json::string(&o.task)),
            ("samples", format!("[{}]", samples.join(","))),
        ])
    };
    let stats_json = |s: &EvalStats| {
        // `wall_seconds` and `eda_cache` are the two *volatile* fields:
        // wall clock varies per run, and the cache block depends on
        // AIVRIL_EDA_CACHE. Consumers comparing results across machines
        // or cache modes (the CI divergence gate) normalise both away;
        // everything else is bit-deterministic.
        let cache = match &s.eda_cache {
            None => "null".to_string(),
            Some(c) => json::object(&[
                ("hits", c.hits.to_string()),
                ("misses", c.misses.to_string()),
                ("entries", c.entries.to_string()),
                ("hit_rate", json::number(c.hit_rate())),
                ("parse_hits", c.parse_hits.to_string()),
                ("parse_misses", c.parse_misses.to_string()),
                ("elab_hits", c.elab_hits.to_string()),
                ("elab_misses", c.elab_misses.to_string()),
            ]),
        };
        let resilience = json::object(&[
            ("llm_faults", s.resilience.llm_faults.to_string()),
            ("retries", s.resilience.retries.to_string()),
            ("backoff_s", json::number(s.resilience.backoff_s)),
            ("breaker_opens", s.resilience.breaker_opens.to_string()),
            ("degraded", s.resilience.degraded.to_string()),
            ("sim_diverged", s.resilience.sim_diverged.to_string()),
            ("crashed", s.crashed.to_string()),
        ]);
        // Diagnostic kernel performance block: every field is derived
        // from thread- and cache-mode-invariant integer counters, so it
        // is as deterministic as the canonical fields around it.
        let kernel = json::object(&[
            ("instructions", s.kernel.instructions.to_string()),
            ("sim_time_ns", s.kernel.sim_time_ns.to_string()),
            (
                "instrs_per_sim_sec",
                json::number(s.kernel.instrs_per_sim_sec()),
            ),
            ("eval_allocs", s.kernel.eval_allocs.to_string()),
            ("compactions", s.kernel.compactions.to_string()),
            ("arena_words", s.kernel.arena_words.to_string()),
        ]);
        json::object(&[
            ("runs", s.runs.to_string()),
            ("threads", s.threads.to_string()),
            ("wall_seconds", json::number(s.wall_seconds)),
            ("modeled_seconds", json::number(s.modeled_seconds)),
            ("modeled_llm_seconds", json::number(s.modeled_llm_seconds)),
            ("modeled_tool_seconds", json::number(s.modeled_tool_seconds)),
            ("syntax_iters", s.syntax_iters.to_string()),
            ("functional_iters", s.functional_iters.to_string()),
            ("eda_cache", cache),
            ("resilience", resilience),
            ("kernel", kernel),
        ])
    };
    let sections: Vec<String> = sections
        .iter()
        .map(|sec| {
            let tasks: Vec<String> = sec.outcomes.iter().map(task_json).collect();
            json::object(&[
                ("label", json::string(&sec.label)),
                ("stats", stats_json(&sec.stats)),
                ("tasks", format!("[{}]", tasks.join(","))),
            ])
        })
        .collect();
    format!(
        "{}\n",
        json::object(&[
            ("schema", json::string("aivril.results")),
            ("version", "5".to_string()),
            ("sections", format!("[{}]", sections.join(","))),
        ])
    )
}

/// Writes a text artifact to `path`, creating parent directories
/// first — `--json runs/today/out.json` must not fail just because
/// `runs/today/` does not exist yet.
///
/// # Errors
///
/// Returns the underlying I/O error when the directory or file cannot
/// be created.
pub fn write_json(path: &str, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, contents)
}

/// Returns the value following `flag` in the process arguments
/// (`--json out.json` style); `None` when absent.
#[must_use]
pub fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

// The parallel harness hands `&XsimToolSuite`, `&ModelProfile` and
// `&TaskLibrary` to scoped workers; keep the shared surfaces
// thread-clean by contract, not by accident.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<XsimToolSuite>();
    assert_send_sync::<SimLlm>();
    assert_send_sync::<ModelProfile>();
    assert_send_sync::<TaskLibrary>();
    assert_send_sync::<Harness>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_core::ResiliencePolicy;
    use aivril_llm::profiles;
    use aivril_metrics::suite_metric;

    fn small() -> Harness {
        Harness::new(HarnessConfig {
            samples: 3,
            task_limit: 6,
            ..HarnessConfig::default()
        })
    }

    #[test]
    fn scoring_accepts_golden_and_rejects_garbage() {
        let h = small();
        let p = &h.problems()[0];
        let (s, f) = h.score(p, &p.verilog.dut, true);
        assert!(s && f, "golden must score clean");
        let (s, f) = h.score(p, "module broken(", true);
        assert!(!s && !f);
        let (s, f) = h.score(p, &p.vhdl.dut, false);
        assert!(s && f, "golden VHDL must score clean");
    }

    #[test]
    fn aivril2_beats_baseline_on_small_slice() {
        let h = small();
        let profile = profiles::claude35_sonnet();
        let base = h.evaluate(&profile, true, Flow::Baseline);
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        let base_f = suite_metric(&base, 1, |s| s.functional);
        let full_f = suite_metric(&full, 1, |s| s.functional);
        let full_s = suite_metric(&full, 1, |s| s.syntax);
        assert!(full_s > 0.9, "syntax loop should converge: {full_s}");
        assert!(full_f >= base_f, "aivril2 {full_f} vs baseline {base_f}");
    }

    #[test]
    fn latencies_accumulate_in_aivril2() {
        let h = small();
        let profile = profiles::gpt4o();
        let base = h.evaluate(&profile, true, Flow::Baseline);
        let full = h.evaluate(&profile, true, Flow::Aivril2);
        let avg = |o: &[EvalOutcome]| {
            let (mut t, mut n) = (0.0, 0);
            for e in o {
                for s in &e.samples {
                    t += s.total_latency;
                    n += 1;
                }
            }
            t / f64::from(n)
        };
        assert!(avg(&full) > avg(&base));
    }

    #[test]
    fn env_config_parsing_is_injectable() {
        // No process-global environment mutation: `cargo test` runs
        // tests concurrently in one process, so `set_var` here would
        // race against every other test.
        let c = HarnessConfig::from_vars(|key| match key {
            "AIVRIL_SAMPLES" => Some("2".into()),
            "AIVRIL_TASKS" => Some("4".into()),
            "AIVRIL_THREADS" => Some("3".into()),
            _ => None,
        });
        assert_eq!(c.samples, 2);
        assert_eq!(c.task_limit, 4);
        assert_eq!(c.threads, 3);
        assert_eq!(c.effective_threads(), 3);

        let defaults = HarnessConfig::from_vars(|_| None);
        assert_eq!(defaults.samples, 5);
        assert_eq!(defaults.task_limit, usize::MAX);
        assert_eq!(defaults.threads, 0, "unset threads means auto-detect");
        assert!(defaults.effective_threads() >= 1);

        let garbage = HarnessConfig::from_vars(|_| Some("not a number".into()));
        assert_eq!(
            garbage.samples, 5,
            "unparsable values fall back to defaults"
        );
    }

    #[test]
    fn resilience_env_vars_are_parsed() {
        let c = HarnessConfig::from_vars(|key| match key {
            "AIVRIL_FAULTS" => Some("timeout=0.2,rate_limit=0.1".into()),
            "AIVRIL_RETRY_MAX" => Some("5".into()),
            "AIVRIL_BACKOFF_BASE_MS" => Some("250".into()),
            "AIVRIL_BREAKER_THRESHOLD" => Some("7".into()),
            "AIVRIL_SIM_MAX_DELTAS" => Some("512".into()),
            _ => None,
        });
        assert!(!c.faults.is_off());
        assert_eq!(c.pipeline.resilience.retry_max, 5);
        assert!((c.pipeline.resilience.backoff_base_s - 0.25).abs() < 1e-12);
        assert_eq!(c.pipeline.resilience.breaker_threshold, 7);
        assert_eq!(c.sim_max_deltas, Some(512));

        let defaults = HarnessConfig::from_vars(|_| None);
        assert!(defaults.faults.is_off(), "faults are off by default");
        assert_eq!(defaults.sim_max_deltas, None);

        let bad =
            HarnessConfig::from_vars(|k| (k == "AIVRIL_FAULTS").then(|| "nonsense=xyz".into()));
        assert!(bad.faults.is_off(), "unparsable fault plans are ignored");
    }

    #[test]
    fn eda_fault_env_var_is_parsed_or_ignored() {
        let c = HarnessConfig::from_vars(|k| {
            (k == "AIVRIL_EDA_FAULTS").then(|| "crash=0.2,disk_probe_eio=0.1".into())
        });
        assert!(!c.eda_faults.is_off());

        let defaults = HarnessConfig::from_vars(|_| None);
        assert!(
            defaults.eda_faults.is_off(),
            "EDA faults are off by default"
        );

        let (bad, warnings) = HarnessConfig::from_vars_checked(|k| {
            (k == "AIVRIL_EDA_FAULTS").then(|| "crash=2.0".into())
        });
        assert!(
            bad.eda_faults.is_off(),
            "unparsable EDA fault plans are ignored"
        );
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("AIVRIL_EDA_FAULTS"), "{warnings:?}");
    }

    #[test]
    fn malformed_resilience_knobs_warn_and_fall_back() {
        // Each malformed knob must produce a warning *and* leave the
        // default in place — the AIVRIL_SHARD discipline, not a silent
        // drop.
        let knobs = [
            ("AIVRIL_RETRY_MAX", "many"),
            ("AIVRIL_BREAKER_THRESHOLD", "-2"),
            ("AIVRIL_SIM_MAX_DELTAS", "1e4"),
            ("AIVRIL_BACKOFF_BASE_MS", "fast"),
        ];
        for (key, value) in knobs {
            let (c, warnings) =
                HarnessConfig::from_vars_checked(|k| (k == key).then(|| value.into()));
            assert_eq!(warnings.len(), 1, "{key}={value}: {warnings:?}");
            assert!(warnings[0].contains(key), "{warnings:?}");
            assert!(warnings[0].contains(value), "{warnings:?}");
            let d = ResiliencePolicy::default();
            assert_eq!(c.pipeline.resilience.retry_max, d.retry_max);
            assert_eq!(c.pipeline.resilience.breaker_threshold, d.breaker_threshold);
            assert_eq!(c.pipeline.resilience.backoff_base_s, d.backoff_base_s);
            assert_eq!(c.sim_max_deltas, None);
        }
    }

    #[test]
    fn backoff_base_rejects_non_finite_and_negative() {
        for bad in ["NaN", "inf", "-inf", "-250"] {
            let (c, warnings) = HarnessConfig::from_vars_checked(|k| {
                (k == "AIVRIL_BACKOFF_BASE_MS").then(|| bad.into())
            });
            assert_eq!(
                c.pipeline.resilience.backoff_base_s,
                ResiliencePolicy::default().backoff_base_s,
                "{bad} must not reach the modeled clock"
            );
            assert_eq!(warnings.len(), 1, "{bad}: {warnings:?}");
            assert!(
                warnings[0].contains("AIVRIL_BACKOFF_BASE_MS"),
                "{warnings:?}"
            );
        }
        // Zero is a legal base (no backoff), not an error.
        let (c, warnings) = HarnessConfig::from_vars_checked(|k| {
            (k == "AIVRIL_BACKOFF_BASE_MS").then(|| "0".into())
        });
        assert_eq!(c.pipeline.resilience.backoff_base_s, 0.0);
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn well_formed_knobs_produce_no_warnings() {
        let (_, warnings) = HarnessConfig::from_vars_checked(|key| match key {
            "AIVRIL_RETRY_MAX" => Some("5".into()),
            "AIVRIL_BACKOFF_BASE_MS" => Some("250".into()),
            "AIVRIL_BREAKER_THRESHOLD" => Some("7".into()),
            "AIVRIL_SIM_MAX_DELTAS" => Some("512".into()),
            "AIVRIL_SHARD" => Some("0/3".into()),
            _ => None,
        });
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn faulted_evaluation_completes_and_reports_resilience() {
        let h = Harness::new(HarnessConfig {
            samples: 2,
            task_limit: 4,
            faults: FaultConfig::uniform(0.25),
            ..HarnessConfig::default()
        });
        let profile = profiles::claude35_sonnet();
        let (outcomes, stats) = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
        assert_eq!(outcomes.len(), 4);
        assert!(
            stats.resilience.llm_faults > 0,
            "a 25% fault rate must surface over 8 runs: {stats}"
        );
        assert_eq!(stats.crashed, 0, "faults are handled, not crashes");
        let display = stats.to_string();
        assert!(display.contains("resilience:"), "{display}");
    }

    #[test]
    fn fault_free_stats_have_empty_resilience_block() {
        let h = small();
        let profile = profiles::claude35_sonnet();
        let (_, stats) = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
        assert_eq!(stats.resilience, ResilienceCounters::default());
        assert_eq!(stats.crashed, 0);
        assert!(
            !stats.to_string().contains("resilience:"),
            "fault-free display must match pre-resilience output"
        );
    }

    #[test]
    fn panicking_runs_are_isolated_as_crashes() {
        let ok = run_isolated(|| {
            let mut r = crashed_record();
            r.outcome.crashed = false;
            r.outcome.syntax = true;
            JobRun {
                record: r,
                rtl: "module ok;endmodule".into(),
                tb: String::new(),
            }
        });
        assert!(
            !ok.record.outcome.crashed && ok.record.outcome.syntax,
            "non-panicking closures pass their record through"
        );
        assert!(!ok.rtl.is_empty());
        let rec = run_isolated(|| panic!("poisoned input")).record;
        assert!(rec.outcome.crashed);
        assert!(!rec.outcome.syntax && !rec.outcome.functional);
        assert_eq!(rec.resilience, ResilienceCounters::default());
    }

    #[test]
    fn eda_cache_env_switch() {
        let get = |v: &'static str| move |k: &str| (k == "AIVRIL_EDA_CACHE").then(|| v.into());
        assert!(
            !HarnessConfig::from_vars(|_| None).eda_cache,
            "off by default"
        );
        assert!(HarnessConfig::from_vars(get("1")).eda_cache);
        assert!(!HarnessConfig::from_vars(get("0")).eda_cache);
        assert!(!HarnessConfig::from_vars(get("")).eda_cache);
    }

    #[test]
    fn cached_harness_reports_stats_and_identical_outcomes() {
        let cached = Harness::new(HarnessConfig {
            samples: 3,
            task_limit: 6,
            eda_cache: true,
            ..HarnessConfig::default()
        });
        let plain = small();
        assert!(plain.cache_stats().is_none(), "cache off => no stats");
        let profile = profiles::claude35_sonnet();
        let (a, sa) = cached.evaluate_with_stats(&profile, true, Flow::Aivril2);
        let (b, sb) = plain.evaluate_with_stats(&profile, true, Flow::Aivril2);
        assert!(sb.eda_cache.is_none());
        let cache = sa.eda_cache.expect("cache on => per-eval stats");
        assert!(cache.hits > 0, "grid reuse must produce hits: {cache}");
        assert_eq!(
            cache.lookups(),
            cached.cache_stats().expect("stats").lookups(),
            "first evaluation accounts for every lookup"
        );
        // Same outcomes, to the bit.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.task, y.task);
            for (s, t) in x.samples.iter().zip(&y.samples) {
                assert_eq!(s.syntax, t.syntax);
                assert_eq!(s.functional, t.functional);
                assert_eq!(s.total_latency.to_bits(), t.total_latency.to_bits());
            }
        }
    }

    #[test]
    fn run_job_with_grid_seed_matches_the_grid_cell() {
        // `run_job` is the same execution path as a grid cell modulo
        // the seed's origin; feeding it a grid seed must reproduce the
        // grid result to the bit.
        let h = small();
        let profile = profiles::claude35_sonnet();
        let outcomes = h.evaluate(&profile, true, Flow::Aivril2);
        let job = h.run_job(
            &profile,
            2,
            run_seed(2, 0),
            true,
            Flow::Aivril2,
            &Recorder::disabled(),
        );
        let cell = &outcomes[2].samples[0];
        assert_eq!(job.record.outcome.syntax, cell.syntax);
        assert_eq!(job.record.outcome.functional, cell.functional);
        assert_eq!(
            job.record.outcome.total_latency.to_bits(),
            cell.total_latency.to_bits()
        );
        assert!(!job.rtl.is_empty(), "a job must return its final RTL");
    }

    #[test]
    fn run_seeds_are_unique_across_the_grid() {
        let mut seen = std::collections::HashSet::new();
        for problem in 0..156 {
            for sample in 0..5 {
                assert!(
                    seen.insert(run_seed(problem, sample)),
                    "seed collision at problem {problem} sample {sample}"
                );
            }
        }
    }

    #[test]
    fn stats_account_for_every_run() {
        let h = small();
        let profile = profiles::claude35_sonnet();
        let (outcomes, stats) = h.evaluate_with_stats(&profile, true, Flow::Aivril2);
        assert_eq!(stats.runs, 6 * 3);
        assert_eq!(
            outcomes.iter().map(|o| o.samples.len()).sum::<usize>(),
            stats.runs
        );
        assert!(stats.threads >= 1);
        assert!(stats.wall_seconds > 0.0);
        let modeled: f64 = outcomes
            .iter()
            .flat_map(|o| o.samples.iter().map(|s| s.total_latency))
            .sum();
        assert!((stats.modeled_seconds - modeled).abs() < 1e-9);
        assert!(
            (stats.modeled_llm_seconds + stats.modeled_tool_seconds - stats.modeled_seconds).abs()
                < 1e-9,
            "llm + tool split must cover the total"
        );
        let display = stats.to_string();
        assert!(display.contains("18 runs"), "{display}");
        assert!(
            stats.kernel.instructions > 0,
            "every evaluation simulates something"
        );
        assert!(stats.kernel.sim_time_ns > 0);
        assert!(display.contains("kernel:"), "{display}");
    }

    #[test]
    fn kernel_stats_are_identical_across_cache_modes() {
        let profile = profiles::claude35_sonnet();
        let cached = Harness::new(HarnessConfig {
            samples: 2,
            task_limit: 3,
            eda_cache: true,
            ..HarnessConfig::default()
        });
        let plain = Harness::new(HarnessConfig {
            samples: 2,
            task_limit: 3,
            ..HarnessConfig::default()
        });
        let (_, sc) = cached.evaluate_with_stats(&profile, true, Flow::Aivril2);
        let (_, sp) = plain.evaluate_with_stats(&profile, true, Flow::Aivril2);
        assert_eq!(
            sc.kernel, sp.kernel,
            "cache hits must fold the stored run's counters"
        );
    }
}
