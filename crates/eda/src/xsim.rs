//! The Vivado-like tool suite implementation.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cache::{self, CompileEntry, EdaCache, ElabEntry, ParsedFile, SimEntry};
use crate::faults::{EdaFaultPlan, ToolFault};
use crate::latency::ToolLatencyModel;
use crate::report::{extract_failures, CompileReport, SimReport, ToolMessage};
use crate::source::{HdlFile, Language};
use crate::ToolSuite;
use aivril_hdl::diag::{Diagnostics, Severity};
use aivril_hdl::ir::Design;
use aivril_hdl::source::SourceMap;
use aivril_obs::Recorder;
use aivril_sim::{KernelPerf, SimConfig, Simulator};

/// The testbench completion marker AIVRIL2's agents look for — the same
/// phrase the paper's Fig. 2 example prints on success.
pub const PASS_MARKER: &str = "All tests passed successfully!";

/// In-process tool suite with Vivado-style logs and modeled latency.
///
/// `compile` corresponds to `xvlog`/`xvhdl` + `xelab` (syntax, semantic
/// and elaboration checks); `simulate` additionally runs the event
/// kernel like `xsim -runall`.
#[derive(Debug, Clone)]
pub struct XsimToolSuite {
    latency: ToolLatencyModel,
    sim_config: SimConfig,
    recorder: Recorder,
    cache: Option<EdaCache>,
    faults: EdaFaultPlan,
    /// Incremental compile: memoize per-file parses and closure-keyed
    /// elaborations in the attached cache. On by default, but only
    /// active when a cache is attached; artifacts are byte-identical
    /// either way.
    incremental: bool,
    /// Kernel performance counters, summed over every simulation this
    /// suite (and its clones — the worker pool) executes or replays
    /// from cache. Diagnostic only; never feeds canonical artifacts.
    kernel: Arc<KernelCounters>,
}

impl Default for XsimToolSuite {
    fn default() -> XsimToolSuite {
        XsimToolSuite {
            latency: ToolLatencyModel::default(),
            sim_config: SimConfig::default(),
            recorder: Recorder::default(),
            cache: None,
            faults: EdaFaultPlan::default(),
            incremental: true,
            kernel: Arc::new(KernelCounters::default()),
        }
    }
}

/// Thread-safe accumulator behind [`XsimToolSuite::kernel_stats`].
/// Per-run [`KernelPerf`] values are integers and addition commutes, so
/// the totals are independent of worker count, scheduling order, and
/// cache mode (cache hits fold the *stored* run's counters).
#[derive(Debug, Default)]
struct KernelCounters {
    instructions: AtomicU64,
    sim_time_ns: AtomicU64,
    eval_allocs: AtomicU64,
    compactions: AtomicU64,
    scratch_slots_max: AtomicU64,
    arena_words_max: AtomicU64,
}

impl KernelCounters {
    fn fold(&self, perf: &KernelPerf) {
        self.instructions
            .fetch_add(perf.instructions, Ordering::Relaxed);
        self.sim_time_ns
            .fetch_add(perf.sim_time_ns, Ordering::Relaxed);
        self.eval_allocs
            .fetch_add(perf.eval_allocs, Ordering::Relaxed);
        self.compactions
            .fetch_add(perf.compactions, Ordering::Relaxed);
        self.scratch_slots_max
            .fetch_max(perf.scratch_slots, Ordering::Relaxed);
        self.arena_words_max
            .fetch_max(perf.arena_words, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KernelPerf {
        KernelPerf {
            instructions: self.instructions.load(Ordering::Relaxed),
            sim_time_ns: self.sim_time_ns.load(Ordering::Relaxed),
            eval_allocs: self.eval_allocs.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            scratch_slots: self.scratch_slots_max.load(Ordering::Relaxed),
            arena_words: self.arena_words_max.load(Ordering::Relaxed),
        }
    }
}

impl XsimToolSuite {
    /// Creates a suite with default limits and latency constants.
    #[must_use]
    pub fn new() -> XsimToolSuite {
        XsimToolSuite::default()
    }

    /// Overrides the simulation limits.
    #[must_use]
    pub fn with_sim_config(mut self, config: SimConfig) -> XsimToolSuite {
        self.sim_config = config;
        self
    }

    /// Overrides the latency model.
    #[must_use]
    pub fn with_latency_model(mut self, latency: ToolLatencyModel) -> XsimToolSuite {
        self.latency = latency;
        self
    }

    /// Attaches an observability recorder: every analyze/compile/
    /// simulate call emits an `eda.*` span (phase, diagnostics, modeled
    /// seconds), advances the modeled clock, and feeds the
    /// `eda_*`/`sim_*` metric series. Disabled by default; the
    /// simulator kernel inherits the same recorder.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> XsimToolSuite {
        self.recorder = recorder;
        self
    }

    /// Attaches a content-addressed result cache (see [`EdaCache`]).
    /// Clones of this suite share the cache, so one cache serves the
    /// whole `AIVRIL_THREADS` worker pool. Results are bit-identical
    /// with the cache on or off; only wall-clock time changes.
    #[must_use]
    pub fn with_cache(mut self, cache: EdaCache) -> XsimToolSuite {
        self.cache = Some(cache);
        self
    }

    /// The attached result cache, when one was installed.
    #[must_use]
    pub fn cache(&self) -> Option<&EdaCache> {
        self.cache.as_ref()
    }

    /// Toggles the incremental compile path: per-file parse results and
    /// closure-keyed elaborations are memoized in the attached cache,
    /// so editing one file of an N-file design re-parses one file and
    /// re-elaborates only when the edit is inside the top's
    /// instantiation closure. On by default; inert without a cache.
    /// Reports and designs are byte-identical with it on or off — the
    /// memo keys cover everything the phases read, and ambiguous inputs
    /// (duplicate design-unit names) bypass the memo entirely.
    #[must_use]
    pub fn with_incremental(mut self, on: bool) -> XsimToolSuite {
        self.incremental = on;
        self
    }

    /// The cache, when the incremental compile path should use it.
    fn incremental_cache(&self) -> Option<&EdaCache> {
        if self.incremental {
            self.cache.as_ref()
        } else {
            None
        }
    }

    /// Installs a deterministic fault plan (`AIVRIL_EDA_FAULTS`). Every
    /// injected decision is a pure hash of the invocation's content key
    /// and attempt number, so faulted runs stay bit-identical across
    /// worker counts and cache modes; the all-off plan (the default) is
    /// byte-for-byte the unfaulted code path.
    #[must_use]
    pub fn with_eda_faults(mut self, plan: EdaFaultPlan) -> XsimToolSuite {
        self.faults = plan;
        self
    }

    /// Snapshot of the kernel performance counters accumulated across
    /// every simulation this suite and its clones ran (or replayed from
    /// cache — hits fold the stored run's counters, keeping cache-on
    /// and cache-off totals identical). Purely diagnostic.
    #[must_use]
    pub fn kernel_stats(&self) -> KernelPerf {
        self.kernel.snapshot()
    }

    /// Counters + histogram for one compile-like tool invocation (only
    /// called when recording).
    fn record_compile_metrics(&self, phase: &str, report: &CompileReport) {
        self.recorder
            .counter_add("eda_invocations_total", &[("phase", phase)], 1);
        for m in &report.messages {
            self.recorder.counter_add(
                "eda_diagnostics_total",
                &[("severity", severity_label(m.severity))],
                1,
            );
        }
        self.recorder.observe(
            "eda_compile_seconds",
            &[("phase", phase)],
            &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0],
            report.modeled_latency,
        );
    }

    /// Rolls the tool-plane fault plan for one invocation, retrying
    /// transient faults (crash / hang / spurious exit) up to
    /// `retry_max` times. Each faulted attempt costs `attempt_cost`
    /// modeled seconds (the hang class costs `watchdog_s` instead);
    /// the accumulated penalty lands on the final report's latency.
    /// Only called when the plan has live tool rates.
    fn tool_fault_gate(&self, op: &'static str, key: u128, attempt_cost: f64) -> FaultVerdict {
        let plan = &self.faults;
        let mut penalty = 0.0;
        let mut attempt = 0u32;
        loop {
            let Some(fault) = plan.roll_tool(op, key, attempt) else {
                return FaultVerdict {
                    outcome: FaultOutcome::Clean,
                    penalty_s: penalty,
                    key,
                    attempt,
                };
            };
            self.recorder.counter_add(
                "eda_fault_injected_total",
                &[("class", fault.label()), ("op", op)],
                1,
            );
            if !fault.is_transient() {
                // Garbled/truncated logs are completed invocations —
                // the runner saw a zero exit and has no reason to retry.
                return FaultVerdict {
                    outcome: FaultOutcome::Mutate(fault),
                    penalty_s: penalty,
                    key,
                    attempt,
                };
            }
            penalty += if fault == ToolFault::Hang {
                plan.watchdog_s
            } else {
                attempt_cost
            };
            if attempt >= plan.retry_max {
                self.recorder
                    .counter_add("resilience_eda_exhausted_total", &[("op", op)], 1);
                return FaultVerdict {
                    outcome: FaultOutcome::Fail,
                    penalty_s: penalty,
                    key,
                    attempt,
                };
            }
            self.recorder
                .counter_add("resilience_eda_retries_total", &[("op", op)], 1);
            attempt += 1;
        }
    }

    /// Builds the failed report for a retries-exhausted tool fault: one
    /// log line per faulted attempt (re-rolled — the rolls are pure, so
    /// this reconstructs exactly what the gate saw) plus a structured
    /// error message. The modeled latency is the accumulated penalty.
    fn faulted_compile_report(&self, op: &'static str, v: &FaultVerdict) -> CompileReport {
        let mut log = String::new();
        let mut last = ToolFault::Crash;
        for i in 0..=v.attempt {
            if let Some(fault) = self.faults.roll_tool(op, v.key, i) {
                last = fault;
                log.push_str(&fault_line(op, fault, i, self.faults.watchdog_s));
            }
        }
        log.push_str(&format!(
            "ERROR: [aivril] {op} abandoned after {} attempt(s)\n",
            v.attempt + 1
        ));
        CompileReport {
            success: false,
            log,
            messages: vec![ToolMessage {
                severity: Severity::Error,
                code: fault_code(last).into(),
                message: format!("{op} failed: injected {} fault", last.label()),
                file: None,
                line: None,
            }],
            modeled_latency: v.penalty_s,
        }
    }

    /// Applies a log-mutation fault (and any retry penalty) to a
    /// completed compile-like report. The structured verdict is the
    /// tool's exit protocol and stays intact; only the textual log is
    /// corrupted. The mutation point is itself a pure hash of the
    /// invocation identity.
    fn shape_compile_fault(
        &self,
        op: &'static str,
        mut report: CompileReport,
        v: &FaultVerdict,
    ) -> CompileReport {
        match v.outcome {
            FaultOutcome::Mutate(ToolFault::Garbled) => {
                report.log = garble_log(
                    &report.log,
                    EdaFaultPlan::shape("garble", op, v.key, v.attempt),
                );
            }
            FaultOutcome::Mutate(ToolFault::Truncate) => {
                report.log = truncate_log(
                    &report.log,
                    EdaFaultPlan::shape("truncate", op, v.key, v.attempt),
                );
            }
            _ => {}
        }
        report.modeled_latency += v.penalty_s;
        report
    }

    /// Applies a log-mutation fault (and any retry penalty) to a
    /// completed sim report. Unlike compiles, a testbench verdict *is*
    /// read from the log (the pass marker, the failure lines), so the
    /// pass/failure fields are re-derived from the corrupted text: a
    /// truncated log that lost the marker reads as a failing run. The
    /// re-derivation only ANDs into `passed`, so corruption can hide a
    /// pass but never fabricate one.
    fn shape_sim_fault(&self, mut report: SimReport, v: &FaultVerdict) -> SimReport {
        match v.outcome {
            FaultOutcome::Mutate(ToolFault::Garbled) => {
                report.log = garble_log(
                    &report.log,
                    EdaFaultPlan::shape("garble", "simulate", v.key, v.attempt),
                );
            }
            FaultOutcome::Mutate(ToolFault::Truncate) => {
                report.log = truncate_log(
                    &report.log,
                    EdaFaultPlan::shape("truncate", "simulate", v.key, v.attempt),
                );
            }
            _ => {}
        }
        if matches!(v.outcome, FaultOutcome::Mutate(_)) {
            report.failures = extract_failures(&report.log);
            report.passed =
                report.passed && report.failures.is_empty() && report.log.contains(PASS_MARKER);
        }
        report.modeled_latency += v.penalty_s;
        report
    }
}

/// Outcome of rolling the tool-plane fault plan for one invocation.
#[derive(Debug, Clone, Copy)]
struct FaultVerdict {
    outcome: FaultOutcome,
    /// Modeled seconds consumed by faulted attempts.
    penalty_s: f64,
    /// The invocation's content key (fault identity).
    key: u128,
    /// The attempt index of the final roll.
    attempt: u32,
}

#[derive(Debug, Clone, Copy)]
enum FaultOutcome {
    /// No fault (possibly after retries); run the real invocation.
    Clean,
    /// Retries exhausted on a transient fault; the invocation failed.
    /// (The failing class is reconstructed by re-rolling — the rolls
    /// are pure — so the report builder shows every attempt, not just
    /// the last.)
    Fail,
    /// The invocation completed but its log must be corrupted.
    Mutate(ToolFault),
}

impl FaultVerdict {
    fn failed(&self) -> bool {
        matches!(self.outcome, FaultOutcome::Fail)
    }
}

/// One Vivado-style log line for one faulted attempt.
fn fault_line(op: &str, fault: ToolFault, attempt: u32, watchdog_s: f64) -> String {
    match fault {
        ToolFault::Crash => format!(
            "FATAL: [{}] tool process terminated unexpectedly during {op} (attempt {attempt})\n",
            fault_code(fault)
        ),
        ToolFault::Hang => format!(
            "ERROR: [{}] {op} watchdog expired after {watchdog_s} s; process killed (attempt {attempt})\n",
            fault_code(fault)
        ),
        ToolFault::SpuriousExit => format!(
            "ERROR: [{}] {op} exited with nonzero status but produced no diagnostics (attempt {attempt})\n",
            fault_code(fault)
        ),
        // Log-mutation faults never produce attempt lines.
        ToolFault::Garbled | ToolFault::Truncate => String::new(),
    }
}

fn fault_code(fault: ToolFault) -> &'static str {
    match fault {
        ToolFault::Crash => "XSIM 43-3915",
        ToolFault::Hang => "XSIM 43-3601",
        ToolFault::SpuriousExit => "XSIM 43-3999",
        ToolFault::Garbled | ToolFault::Truncate => "XSIM 43-0000",
    }
}

/// Inserts a corruption banner at a deterministic char boundary chosen
/// by `u` (a pure identity hash mapped to `[0, 1)`).
fn garble_log(log: &str, u: f64) -> String {
    let cut = mutation_point(log, u);
    format!(
        "{}\n<<<garbled: tool output corrupted by injected fault>>>\n{}",
        &log[..cut],
        &log[cut..]
    )
}

/// Cuts the log at a deterministic char boundary chosen by `u`.
fn truncate_log(log: &str, u: f64) -> String {
    log[..mutation_point(log, u)].to_string()
}

/// A char boundary between 20 % and 80 % of the log.
fn mutation_point(log: &str, u: f64) -> usize {
    let mut cut = (log.len() as f64 * (0.2 + 0.6 * u)) as usize;
    cut = cut.min(log.len());
    while cut > 0 && !log.is_char_boundary(cut) {
        cut -= 1;
    }
    cut
}

impl XsimToolSuite {
    /// Compiles `files` into a design, returning the elaborated design
    /// alongside the report so callers (and `simulate`) don't repeat the
    /// work ([C-INTERMEDIATE]). The design is `Arc`'d so a cached entry
    /// can be shared without re-elaboration.
    ///
    /// [C-INTERMEDIATE]: https://rust-lang.github.io/api-guidelines/flexibility.html
    #[must_use]
    pub fn compile_to_design(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
    ) -> (CompileReport, Option<Arc<Design>>) {
        let (report, _clean, design) = self.compile_to_design_recorded(files, top);
        (report, design)
    }

    /// [`Self::compile_to_design`] plus the *unshaped* report: the fault
    /// gate rolls here, around the cache, so cached entries (and the
    /// compile log `simulate` embeds in sim cache entries) stay clean —
    /// a fault plan must never leak plan-dependent bytes into
    /// content-addressed storage. The second element is the clean report
    /// when a log-mutation fault shaped the first, `None` otherwise.
    fn compile_to_design_recorded(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
    ) -> (CompileReport, Option<CompileReport>, Option<Arc<Design>>) {
        let span = self.recorder.span("eda.compile");
        let verdict = self.faults.tools_on().then(|| {
            let key = cache::compile_key(files, top, &self.latency);
            self.tool_fault_gate(
                "compile",
                key,
                self.latency.compile_seconds(total_bytes(files)),
            )
        });
        let (report, clean, design, cache_hit) = match &verdict {
            Some(v) if v.failed() => (self.faulted_compile_report("compile", v), None, None, None),
            _ => {
                let (clean, design, hit) = self.compile_to_design_cached(files, top);
                match &verdict {
                    Some(v) => (
                        self.shape_compile_fault("compile", clean.clone(), v),
                        Some(clean),
                        design,
                        hit,
                    ),
                    None => (clean, None, design, hit),
                }
            }
        };
        if span.is_recording() {
            // Everything emitted here is a pure function of the report,
            // so the hit and miss paths are indistinguishable in the
            // journal and metrics. `cache_hit` itself is a diagnostic
            // attribute, excluded from the canonical journal.
            self.recorder.advance(report.modeled_latency);
            span.attr_bool("success", report.success);
            span.attr_int("errors", report.error_count() as i64);
            span.attr_f64("tool_s", report.modeled_latency);
            if let Some(hit) = cache_hit {
                span.attr_bool("cache_hit", hit);
            }
            self.record_compile_metrics("compile", &report);
        }
        (report, clean, design)
    }

    /// Cache layer around [`Self::compile_to_design_inner`]. The third
    /// element reports the cache verdict (`None` = caching disabled).
    fn compile_to_design_cached(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
    ) -> (CompileReport, Option<Arc<Design>>, Option<bool>) {
        let Some(cache) = &self.cache else {
            let (report, design) = self.compile_to_design_inner(files, top);
            return (report, design, None);
        };
        let key = cache::compile_key(files, top, &self.latency);
        let (slot, hit) = cache.compile_slot(key);
        let entry = slot.get_or_init(|| {
            let (report, design) = self.compile_to_design_inner(files, top);
            CompileEntry { report, design }
        });
        (entry.report.clone(), entry.design.clone(), Some(hit))
    }

    fn compile_to_design_inner(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
    ) -> (CompileReport, Option<Arc<Design>>) {
        let mut sources = SourceMap::new();
        for f in files {
            sources.add_file(f.name.clone(), f.text.clone());
        }
        let language = files.first().map_or(Language::Verilog, |f| f.language);
        let mixed = files.iter().any(|f| f.language != language);

        let mut log = String::new();
        for f in files {
            let tool = match f.language {
                Language::Verilog => "xvlog",
                Language::Vhdl => "xvhdl",
            };
            log.push_str(&format!(
                "INFO: [{tool}] Analyzing {} file \"{}\" into library work\n",
                f.language, f.name
            ));
        }
        if mixed {
            log.push_str(
                "ERROR: [XSIM 43-4100] mixed-language compilation units must be elaborated per language\n",
            );
            let report = CompileReport {
                success: false,
                log,
                messages: vec![ToolMessage {
                    severity: aivril_hdl::diag::Severity::Error,
                    code: "XSIM 43-4100".into(),
                    message: "mixed-language compilation units must be elaborated per language"
                        .into(),
                    file: None,
                    line: None,
                }],
                modeled_latency: self.latency.compile_seconds(total_bytes(files)),
            };
            return (report, None);
        }

        // `no_top` marks the case where analysis was clean but the
        // source set declares nothing elaboratable — previously this
        // fell through to `elaborate(.., "")`, whose "unknown unit ''"
        // diagnostic was useless to the Review Agent.
        let (design, diags, no_top) = match language {
            Language::Verilog => self.verilog_front(&sources, top),
            Language::Vhdl => self.vhdl_front(&sources, top),
        };
        log.push_str(&diags.render(&sources));
        let success = design.is_some();
        let mut messages = to_messages(&diags, &sources);
        if no_top {
            let what = match language {
                Language::Verilog => "module",
                Language::Vhdl => "entity",
            };
            log.push_str(&format!(
                "ERROR: [xelab 43-3316] no top module found: the source set declares no {what} to elaborate\n"
            ));
            messages.push(ToolMessage {
                severity: Severity::Error,
                code: "xelab 43-3316".into(),
                message: format!(
                    "no top module found: the source set declares no {what} to elaborate"
                ),
                file: None,
                line: None,
            });
        }
        if success {
            log.push_str("INFO: [xelab] Elaboration completed successfully\n");
        } else {
            log.push_str(&format!(
                "ERROR: [xelab] {} error(s) during analysis/elaboration\n",
                diags.error_count().max(1)
            ));
        }
        let report = CompileReport {
            success,
            log,
            messages,
            modeled_latency: self.latency.compile_seconds(total_bytes(files)),
        };
        (report, design)
    }

    /// Verilog analysis + elaboration; incremental when a cache is
    /// attached. Returns `(design, diagnostics, no_top)`.
    fn verilog_front(
        &self,
        sources: &SourceMap,
        top: Option<&str>,
    ) -> (Option<Arc<Design>>, Diagnostics, bool) {
        let (unit, parts, mut diags) = self.parse_verilog(sources);
        if diags.has_errors() {
            return (None, diags, false);
        }
        let Some(top) = top
            .map(String::from)
            .or_else(|| aivril_verilog::find_top(&unit))
        else {
            return (None, diags, true);
        };
        let design = self.elaborate_verilog(&unit, parts.as_deref(), sources, &top, &mut diags);
        (design.filter(|_| !diags.has_errors()), diags, false)
    }

    /// VHDL analysis + elaboration; incremental when a cache is
    /// attached. Returns `(design, diagnostics, no_top)`.
    fn vhdl_front(
        &self,
        sources: &SourceMap,
        top: Option<&str>,
    ) -> (Option<Arc<Design>>, Diagnostics, bool) {
        let (file, parts, mut diags) = self.parse_vhdl(sources);
        if diags.has_errors() {
            return (None, diags, false);
        }
        let Some(top) = top
            .map(String::from)
            .or_else(|| aivril_vhdl::find_top(&file))
        else {
            return (None, diags, true);
        };
        let design = self.elaborate_vhdl(&file, parts.as_deref(), sources, &top, &mut diags);
        (design.filter(|_| !diags.has_errors()), diags, false)
    }

    /// Parses every file, through the per-file memo when incremental.
    /// The second element carries the per-file units (the elab closure
    /// needs to know which file defines which module) — `None` on the
    /// non-incremental path.
    fn parse_verilog(
        &self,
        sources: &SourceMap,
    ) -> (
        aivril_verilog::ast::SourceUnit,
        Option<Vec<aivril_verilog::ast::SourceUnit>>,
        Diagnostics,
    ) {
        let Some(cache) = self.incremental_cache() else {
            let (unit, diags) = aivril_verilog::analyze(sources);
            return (unit, None, diags);
        };
        let mut unit = aivril_verilog::ast::SourceUnit::default();
        let mut parts = Vec::new();
        let mut diags = Diagnostics::new();
        for (index, (id, source)) in sources.iter().enumerate() {
            let key = cache::parse_key(Language::Verilog, index, source.name(), source.text());
            let (slot, _) = cache.parse_slot(key);
            let entry = slot.get_or_init(|| {
                let (part, part_diags) = aivril_verilog::analyze_file(id, source.text());
                ParsedFile::Verilog(part, part_diags)
            });
            // The language tag in the key makes the other arm
            // unreachable; parse fresh rather than panic if it ever
            // isn't.
            let (part, part_diags) = match entry {
                ParsedFile::Verilog(part, part_diags) => (part.clone(), part_diags.clone()),
                ParsedFile::Vhdl(..) => aivril_verilog::analyze_file(id, source.text()),
            };
            unit.modules.extend(part.modules.iter().cloned());
            parts.push(part);
            diags.extend(part_diags);
        }
        (unit, Some(parts), diags)
    }

    /// VHDL twin of [`Self::parse_verilog`].
    fn parse_vhdl(
        &self,
        sources: &SourceMap,
    ) -> (
        aivril_vhdl::ast::DesignFile,
        Option<Vec<aivril_vhdl::ast::DesignFile>>,
        Diagnostics,
    ) {
        let Some(cache) = self.incremental_cache() else {
            let (file, diags) = aivril_vhdl::analyze(sources);
            return (file, None, diags);
        };
        let mut file = aivril_vhdl::ast::DesignFile::default();
        let mut parts = Vec::new();
        let mut diags = Diagnostics::new();
        for (index, (id, source)) in sources.iter().enumerate() {
            let key = cache::parse_key(Language::Vhdl, index, source.name(), source.text());
            let (slot, _) = cache.parse_slot(key);
            let entry = slot.get_or_init(|| {
                let (part, part_diags) = aivril_vhdl::analyze_file(id, source.text());
                ParsedFile::Vhdl(part, part_diags)
            });
            let (part, part_diags) = match entry {
                ParsedFile::Vhdl(part, part_diags) => (part.clone(), part_diags.clone()),
                ParsedFile::Verilog(..) => aivril_vhdl::analyze_file(id, source.text()),
            };
            file.entities.extend(part.entities.iter().cloned());
            file.architectures
                .extend(part.architectures.iter().cloned());
            parts.push(part);
            diags.extend(part_diags);
        }
        (file, Some(parts), diags)
    }

    /// Elaborates through the closure-keyed memo when possible. The
    /// memo stores elaboration's *own* diagnostics (the callers only
    /// reach this point with error-free parse diags, so elaboration
    /// against a fresh `Diagnostics` behaves identically) and replays
    /// them on a hit.
    fn elaborate_verilog(
        &self,
        unit: &aivril_verilog::ast::SourceUnit,
        parts: Option<&[aivril_verilog::ast::SourceUnit]>,
        sources: &SourceMap,
        top: &str,
        diags: &mut Diagnostics,
    ) -> Option<Arc<Design>> {
        if let (Some(cache), Some(parts)) = (self.incremental_cache(), parts) {
            if let Some(closure) = verilog_closure(parts, top) {
                let texts = closure_texts(sources, &closure);
                let key = cache::elab_key(Language::Verilog, top, &texts);
                let (slot, _) = cache.elab_slot(key);
                let entry = slot.get_or_init(|| {
                    let mut fresh = Diagnostics::new();
                    let design = aivril_verilog::elaborate(unit, top, &mut fresh);
                    ElabEntry {
                        design: design.map(Arc::new),
                        diags: fresh,
                    }
                });
                diags.extend(entry.diags.clone());
                return entry.design.clone();
            }
        }
        aivril_verilog::elaborate(unit, top, diags).map(Arc::new)
    }

    /// VHDL twin of [`Self::elaborate_verilog`]. The memo key uses the
    /// lowercased top, matching the elaborator's case folding.
    fn elaborate_vhdl(
        &self,
        file: &aivril_vhdl::ast::DesignFile,
        parts: Option<&[aivril_vhdl::ast::DesignFile]>,
        sources: &SourceMap,
        top: &str,
        diags: &mut Diagnostics,
    ) -> Option<Arc<Design>> {
        if let (Some(cache), Some(parts)) = (self.incremental_cache(), parts) {
            let top_lc = top.to_ascii_lowercase();
            if let Some(closure) = vhdl_closure(parts, &top_lc) {
                let texts = closure_texts(sources, &closure);
                let key = cache::elab_key(Language::Vhdl, &top_lc, &texts);
                let (slot, _) = cache.elab_slot(key);
                let entry = slot.get_or_init(|| {
                    let mut fresh = Diagnostics::new();
                    let design = aivril_vhdl::elaborate(file, top, &mut fresh);
                    ElabEntry {
                        design: design.map(Arc::new),
                        diags: fresh,
                    }
                });
                diags.extend(entry.diags.clone());
                return entry.design.clone();
            }
        }
        aivril_vhdl::elaborate(file, top, diags).map(Arc::new)
    }
}

/// The file indices contributing modules to `top`'s instantiation
/// closure, or `None` when any module name is declared twice — the
/// elaborator diagnoses redeclarations *globally*, so a closure key
/// would not cover everything its output depends on. Unknown
/// instantiated names contribute nothing (elaboration diagnoses them;
/// the files defining nothing reachable can't influence that verdict).
fn verilog_closure(
    parts: &[aivril_verilog::ast::SourceUnit],
    top: &str,
) -> Option<BTreeSet<usize>> {
    let mut def_file: HashMap<&str, usize> = HashMap::new();
    let mut modules = HashMap::new();
    for (index, part) in parts.iter().enumerate() {
        for m in &part.modules {
            if def_file.insert(m.name.as_str(), index).is_some() {
                return None;
            }
            modules.insert(m.name.as_str(), m);
        }
    }
    let mut files = BTreeSet::new();
    let mut seen = HashSet::new();
    let mut stack = vec![top];
    while let Some(name) = stack.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(m) = modules.get(name) else {
            continue;
        };
        files.insert(def_file[name]);
        for item in &m.items {
            if let aivril_verilog::ast::Item::Instance { module, .. } = item {
                stack.push(module.as_str());
            }
        }
    }
    Some(files)
}

/// VHDL twin of [`verilog_closure`]: walks entities plus their
/// architectures. `None` on any duplicated entity name or second
/// architecture for one entity — the elaborator resolves those
/// last-wins, a dependency on file *order* the closure key doesn't
/// express. `top` must already be lowercased.
fn vhdl_closure(parts: &[aivril_vhdl::ast::DesignFile], top: &str) -> Option<BTreeSet<usize>> {
    let mut ent_file: HashMap<&str, usize> = HashMap::new();
    let mut arch_file: HashMap<&str, usize> = HashMap::new();
    let mut archs = HashMap::new();
    for (index, part) in parts.iter().enumerate() {
        for e in &part.entities {
            if ent_file.insert(e.name.as_str(), index).is_some() {
                return None;
            }
        }
        for a in &part.architectures {
            if arch_file.insert(a.entity.as_str(), index).is_some() {
                return None;
            }
            archs.insert(a.entity.as_str(), a);
        }
    }
    let mut files = BTreeSet::new();
    let mut seen = HashSet::new();
    let mut stack = vec![top.to_string()];
    while let Some(name) = stack.pop() {
        if !seen.insert(name.clone()) {
            continue;
        }
        if let Some(&index) = ent_file.get(name.as_str()) {
            files.insert(index);
        }
        if let Some(&index) = arch_file.get(name.as_str()) {
            files.insert(index);
        }
        if let Some(a) = archs.get(name.as_str()) {
            for s in &a.stmts {
                if let aivril_vhdl::ast::ConcurrentStmt::Instance { entity, .. } = s {
                    stack.push(entity.to_ascii_lowercase());
                }
            }
        }
    }
    Some(files)
}

/// The ordered `(index, name, text)` triples for `files`, ready for
/// [`cache::elab_key`].
fn closure_texts<'s>(
    sources: &'s SourceMap,
    files: &BTreeSet<usize>,
) -> Vec<(usize, &'s str, &'s str)> {
    sources
        .iter()
        .enumerate()
        .filter(|(index, _)| files.contains(index))
        .map(|(index, (_, source))| (index, source.name(), source.text()))
        .collect()
}

fn total_bytes(files: &[HdlFile]) -> usize {
    files.iter().map(HdlFile::byte_len).sum()
}

fn severity_label(severity: Severity) -> &'static str {
    match severity {
        Severity::Note => "note",
        Severity::Warning => "warning",
        Severity::Error => "error",
        Severity::Fatal => "fatal",
    }
}

fn to_messages(diags: &Diagnostics, sources: &SourceMap) -> Vec<ToolMessage> {
    diags
        .all()
        .iter()
        .map(|d| {
            let (file, line) = match d.span {
                Some(span) => {
                    let f = sources.file(span.file);
                    (Some(f.name().to_string()), Some(f.line_of(span.start)))
                }
                None => (None, None),
            };
            ToolMessage {
                severity: d.severity,
                code: d.code.clone(),
                message: d.message.clone(),
                file,
                line,
            }
        })
        .collect()
}

impl XsimToolSuite {
    /// Like [`ToolSuite::simulate`], additionally returning a VCD
    /// waveform dump of the whole run (when compilation succeeded) —
    /// the `xsim` `--wdb`-style debug artefact.
    #[must_use]
    pub fn simulate_with_waves(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
    ) -> (SimReport, Option<String>) {
        let span = self.recorder.span("eda.simulate");
        let (compile_report, design) = self.compile_to_design(files, top);
        let mut log = compile_report.log.clone();
        let Some(design) = design else {
            span.attr_bool("passed", false);
            return (
                SimReport {
                    compiled: false,
                    passed: false,
                    log,
                    failures: Vec::new(),
                    compile_messages: compile_report.messages,
                    end_time: 0,
                    finished: false,
                    diverged: None,
                    modeled_latency: compile_report.modeled_latency,
                },
                None,
            );
        };
        log.push_str(&format!(
            "INFO: [xsim] Running simulation of '{}'\n",
            design.top
        ));
        let mut sim = Simulator::new(&design, self.sim_config).with_recorder(self.recorder.clone());
        sim.record_waves();
        let result = sim.run();
        self.kernel.fold(&sim.perf());
        let vcd = sim.vcd();
        log.push_str(&result.log_text());
        let diverged = diverged_from(&result);
        let failures = extract_failures(&log);
        let passed = result.is_clean()
            && failures.is_empty()
            && (result.finished || result.starved)
            && log.contains(PASS_MARKER);
        let sim_latency = self.latency.sim_seconds(result.instructions_executed);
        if span.is_recording() {
            self.recorder.advance(sim_latency);
            span.attr_bool("passed", passed);
            span.attr_int("failures", failures.len() as i64);
            span.attr_f64("sim_s", sim_latency);
            self.recorder
                .counter_add("eda_invocations_total", &[("phase", "simulate")], 1);
            self.recorder.observe(
                "eda_sim_seconds",
                &[],
                &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
                sim_latency,
            );
        }
        (
            SimReport {
                compiled: true,
                passed,
                log,
                failures,
                compile_messages: compile_report.messages,
                end_time: result.end_time,
                finished: result.finished,
                diverged,
                modeled_latency: compile_report.modeled_latency + sim_latency,
            },
            vcd,
        )
    }
}

/// Maps a kernel watchdog abort into the structured report diagnostic.
fn diverged_from(result: &aivril_sim::SimResult) -> Option<crate::report::SimDiverged> {
    result.limit_hit.map(|limit| crate::report::SimDiverged {
        limit,
        at_time: result.end_time,
        instructions: result.instructions_executed,
    })
}

impl XsimToolSuite {
    /// Runs the simulation phase on an already-elaborated design,
    /// returning the report, the sim-phase share of the modeled latency
    /// and — when `collect_telemetry` — the kernel series for cache
    /// replay. This is the single implementation behind both the live
    /// and cache-miss paths, so they cannot diverge.
    fn run_sim(
        &self,
        compile_report: &CompileReport,
        design: &Design,
        collect_telemetry: bool,
    ) -> (SimReport, f64, Option<aivril_sim::KernelTelemetry>) {
        let mut log = compile_report.log.clone();
        log.push_str(&format!(
            "INFO: [xsim] Running simulation of '{}'\n",
            design.top
        ));
        let mut sim = Simulator::new(design, self.sim_config).with_recorder(self.recorder.clone());
        if collect_telemetry {
            sim.collect_telemetry();
        }
        let result = sim.run();
        self.kernel.fold(&sim.perf());
        log.push_str(&result.log_text());
        if result.finished {
            log.push_str(&format!(
                "INFO: [xsim] $finish called at time : {} ns\n",
                result.end_time
            ));
        } else if result.starved {
            log.push_str(&format!(
                "INFO: [xsim] simulation stopped (event starvation) at time : {} ns\n",
                result.end_time
            ));
        }
        let failures = extract_failures(&log);
        // A run passes when it is error-free, produced no test failures,
        // ended of its own accord (no resource limit), and printed the
        // completion marker the paper's workflow relies on (Fig. 2 ⑧).
        let passed = result.is_clean()
            && failures.is_empty()
            && (result.finished || result.starved)
            && log.contains(PASS_MARKER);
        let sim_latency = self.latency.sim_seconds(result.instructions_executed);
        let report = SimReport {
            compiled: true,
            passed,
            log,
            failures,
            compile_messages: compile_report.messages.clone(),
            end_time: result.end_time,
            finished: result.finished,
            diverged: diverged_from(&result),
            modeled_latency: compile_report.modeled_latency + sim_latency,
        };
        (report, sim_latency, sim.take_telemetry())
    }

    /// Cache layer around [`Self::run_sim`]. On a miss the kernel runs
    /// live (recording into this suite's recorder as usual) and its
    /// telemetry is stored in the entry; on a hit the stored telemetry
    /// is replayed into this suite's recorder, so the metrics registry
    /// ends up byte-identical to a cache-off run. The replay decision
    /// follows *who executed the initializer*, not the hit accounting:
    /// a thread can be accounted a hit yet win the `get_or_init` race,
    /// in which case it already recorded live and must not replay.
    fn run_sim_cached(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
        compile_report: &CompileReport,
        design: &Design,
    ) -> (SimReport, f64, Option<bool>) {
        let verdict = self.faults.tools_on().then(|| {
            let key = cache::sim_key(files, top, &self.latency, &self.sim_config);
            // A crashed simulator never reaches the event kernel; the
            // attempt's cost is the tool's startup share.
            self.tool_fault_gate("simulate", key, self.latency.sim_seconds(0))
        });
        if let Some(v) = &verdict {
            if v.failed() {
                let mut log = compile_report.log.clone();
                log.push_str(&format!(
                    "INFO: [xsim] Running simulation of '{}'\n",
                    design.top
                ));
                log.push_str(&self.faulted_compile_report("simulate", v).log);
                let report = SimReport {
                    compiled: true,
                    passed: false,
                    log,
                    failures: Vec::new(),
                    compile_messages: compile_report.messages.clone(),
                    end_time: 0,
                    finished: false,
                    diverged: None,
                    modeled_latency: compile_report.modeled_latency + v.penalty_s,
                };
                return (report, v.penalty_s, None);
            }
        }
        let (report, sim_latency, hit) =
            self.run_sim_uncorrupted(files, top, compile_report, design);
        match &verdict {
            Some(v) => (
                self.shape_sim_fault(report, v),
                sim_latency + v.penalty_s,
                hit,
            ),
            None => (report, sim_latency, hit),
        }
    }

    /// The cache layer proper, below the fault gate.
    fn run_sim_uncorrupted(
        &self,
        files: &[HdlFile],
        top: Option<&str>,
        compile_report: &CompileReport,
        design: &Design,
    ) -> (SimReport, f64, Option<bool>) {
        let Some(cache) = &self.cache else {
            let (report, sim_latency, _) = self.run_sim(compile_report, design, false);
            return (report, sim_latency, None);
        };
        let key = cache::sim_key(files, top, &self.latency, &self.sim_config);
        let (slot, hit) = cache.sim_slot(key);
        let mut computed_here = false;
        let entry = slot.get_or_init(|| {
            computed_here = true;
            // Telemetry is collected even when this suite's recorder is
            // disabled: the recorder-free scoring suite may populate an
            // entry a traced worker hits later.
            let (report, sim_latency, kernel) = self.run_sim(compile_report, design, true);
            let entry = SimEntry {
                report,
                sim_latency,
                kernel,
            };
            // Inside the initializer: values that came from memory or
            // disk never reach this line, so each result is persisted
            // exactly once, by the process that computed it.
            cache.persist_sim(key, &entry);
            entry
        });
        if !computed_here {
            if let Some(kernel) = &entry.kernel {
                kernel.record_to(&self.recorder);
                // Fold the stored run's counters so the suite totals are
                // the same whether the kernel executed or was replayed.
                self.kernel.fold(&kernel.perf());
            }
        }
        (entry.report.clone(), entry.sim_latency, Some(hit))
    }

    fn analyze_inner(&self, files: &[HdlFile]) -> CompileReport {
        let mut sources = SourceMap::new();
        for f in files {
            sources.add_file(f.name.clone(), f.text.clone());
        }
        let mut log = String::new();
        let mut diags = aivril_hdl::diag::Diagnostics::new();
        for f in files {
            let tool = match f.language {
                Language::Verilog => "xvlog",
                Language::Vhdl => "xvhdl",
            };
            log.push_str(&format!(
                "INFO: [{tool}] Analyzing {} file \"{}\" into library work\n",
                f.language, f.name
            ));
        }
        for (index, (id, source)) in sources.iter().enumerate() {
            let name = source.name().to_ascii_lowercase();
            let language = if name.ends_with(".vhd") || name.ends_with(".vhdl") {
                Language::Vhdl
            } else {
                Language::Verilog
            };
            // Analysis only needs the syntax diagnostics, but parsing
            // through the incremental memo lets a later compile of the
            // same file set reuse the ASTs.
            if let Some(cache) = self.incremental_cache() {
                let key = cache::parse_key(language, index, source.name(), source.text());
                let (slot, _) = cache.parse_slot(key);
                let entry = slot.get_or_init(|| match language {
                    Language::Vhdl => {
                        let (part, sub) = aivril_vhdl::analyze_file(id, source.text());
                        ParsedFile::Vhdl(part, sub)
                    }
                    Language::Verilog => {
                        let (part, sub) = aivril_verilog::analyze_file(id, source.text());
                        ParsedFile::Verilog(part, sub)
                    }
                });
                let (ParsedFile::Verilog(_, sub) | ParsedFile::Vhdl(_, sub)) = entry;
                diags.extend(sub.clone());
            } else if language == Language::Vhdl {
                let (_, sub) = aivril_vhdl::analyze_file(id, source.text());
                diags.extend(sub);
            } else {
                let (_, sub) = aivril_verilog::analyze_file(id, source.text());
                diags.extend(sub);
            }
        }
        log.push_str(&diags.render(&sources));
        let success = !diags.has_errors();
        if success {
            log.push_str("INFO: [xvlog] Analysis completed successfully\n");
        } else {
            log.push_str(&format!(
                "ERROR: [xvlog] {} error(s) during analysis\n",
                diags.error_count()
            ));
        }
        CompileReport {
            success,
            log,
            messages: to_messages(&diags, &sources),
            modeled_latency: self.latency.compile_seconds(total_bytes(files)),
        }
    }
}

impl ToolSuite for XsimToolSuite {
    fn analyze(&self, files: &[HdlFile]) -> CompileReport {
        let span = self.recorder.span("eda.analyze");
        let verdict = self.faults.tools_on().then(|| {
            let key = cache::analyze_key(files, &self.latency);
            self.tool_fault_gate(
                "analyze",
                key,
                self.latency.compile_seconds(total_bytes(files)),
            )
        });
        let (report, cache_hit) = match &verdict {
            Some(v) if v.failed() => (self.faulted_compile_report("analyze", v), None),
            _ => {
                let (report, hit) = match &self.cache {
                    None => (self.analyze_inner(files), None),
                    Some(cache) => {
                        let key = cache::analyze_key(files, &self.latency);
                        let (slot, hit) = cache.analyze_slot(key);
                        let report = slot
                            .get_or_init(|| {
                                let report = self.analyze_inner(files);
                                cache.persist_analyze(key, &report);
                                report
                            })
                            .clone();
                        (report, Some(hit))
                    }
                };
                match &verdict {
                    Some(v) => (self.shape_compile_fault("analyze", report, v), hit),
                    None => (report, hit),
                }
            }
        };
        if span.is_recording() {
            self.recorder.advance(report.modeled_latency);
            span.attr_bool("success", report.success);
            span.attr_int("errors", report.error_count() as i64);
            span.attr_f64("tool_s", report.modeled_latency);
            if let Some(hit) = cache_hit {
                span.attr_bool("cache_hit", hit);
            }
            self.record_compile_metrics("analyze", &report);
        }
        report
    }

    fn compile(&self, files: &[HdlFile]) -> CompileReport {
        self.compile_to_design(files, None).0
    }

    fn simulate(&self, files: &[HdlFile], top: Option<&str>) -> SimReport {
        let span = self.recorder.span("eda.simulate");
        let (compile_report, clean_compile, design) = self.compile_to_design_recorded(files, top);
        let Some(design) = design else {
            span.attr_bool("passed", false);
            return SimReport {
                compiled: false,
                passed: false,
                log: compile_report.log,
                failures: Vec::new(),
                compile_messages: compile_report.messages,
                end_time: 0,
                finished: false,
                diverged: None,
                modeled_latency: compile_report.modeled_latency,
            };
        };
        // The sim phase (and anything it caches) builds on the *clean*
        // compile report; compile-level log corruption belongs to the
        // compile invocation alone.
        let base_compile = clean_compile.as_ref().unwrap_or(&compile_report);
        let (report, sim_latency, cache_hit) =
            self.run_sim_cached(files, top, base_compile, &design);
        if span.is_recording() {
            // Pure functions of the cached report — the hit and miss
            // paths emit identical telemetry (the kernel's own series
            // are replayed from the cache entry inside `run_sim_cached`).
            self.recorder.advance(sim_latency);
            span.attr_bool("passed", report.passed);
            span.attr_int("failures", report.failures.len() as i64);
            span.attr_f64("sim_s", sim_latency);
            if let Some(hit) = cache_hit {
                span.attr_bool("cache_hit", hit);
            }
            self.recorder
                .counter_add("eda_invocations_total", &[("phase", "simulate")], 1);
            self.recorder.observe(
                "eda_sim_seconds",
                &[],
                &[0.5, 1.0, 2.0, 4.0, 8.0, 16.0],
                sim_latency,
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_V: &str = "module inv(input a, output y);\n  assign y = ~a;\nendmodule\n";
    const GOOD_TB: &str = "module tb;\n  reg a; wire y;\n  inv dut(.a(a), .y(y));\n\
        initial begin\n    a = 0; #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n\
        else $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";
    const BAD_V: &str = "module inv(input a, output y)\n  assign y = ~a;\nendmodule\n";

    #[test]
    fn clean_compile_logs_success() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("inv.v", GOOD_V)]);
        assert!(report.success);
        assert!(report.log.contains("Analyzing Verilog file \"inv.v\""));
        assert!(report.log.contains("Elaboration completed successfully"));
        assert!(report.modeled_latency > 0.0);
    }

    #[test]
    fn syntax_error_produces_located_log() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("inv.v", BAD_V)]);
        assert!(!report.success);
        assert!(report.log.contains("ERROR: [VRFC"), "log: {}", report.log);
        assert!(report.log.contains("[inv.v:"), "log: {}", report.log);
        assert!(report.error_count() >= 1);
        let m = report.messages.iter().find(|m| m.is_error()).expect("msg");
        assert_eq!(m.file.as_deref(), Some("inv.v"));
        assert!(m.line.is_some());
    }

    #[test]
    fn passing_simulation() {
        let tools = XsimToolSuite::new();
        let report = tools.simulate(
            &[HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)],
            Some("tb"),
        );
        assert!(report.compiled);
        assert!(report.passed, "log: {}", report.log);
        assert!(report.failures.is_empty());
        assert!(report.log.contains("All tests passed successfully!"));
        assert!(report.log.contains("$finish called"));
    }

    #[test]
    fn functional_failure_extracted() {
        // DUT mutated: ~a became a (a classic functional fault).
        let broken = "module inv(input a, output y);\n  assign y = a;\nendmodule\n";
        let tools = XsimToolSuite::new();
        let report = tools.simulate(
            &[HdlFile::new("inv.v", broken), HdlFile::new("tb.v", GOOD_TB)],
            Some("tb"),
        );
        assert!(report.compiled);
        assert!(!report.passed);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].case, Some(1));
    }

    #[test]
    fn simulate_with_compile_errors_skips_sim() {
        let tools = XsimToolSuite::new();
        let report = tools.simulate(&[HdlFile::new("inv.v", BAD_V)], None);
        assert!(!report.compiled);
        assert!(!report.passed);
        assert_eq!(report.end_time, 0);
    }

    #[test]
    fn vhdl_flow_works() {
        let dut = "entity inv is port (a : in std_logic; y : out std_logic); end entity;\n\
                   architecture rtl of inv is begin y <= not a; end architecture;\n";
        let tb = "entity tb is end entity;\narchitecture sim of tb is\n\
                  signal a, y : std_logic;\nbegin\n\
                  dut: entity work.inv port map (a => a, y => y);\n\
                  process begin\n  a <= '0'; wait for 1 ns;\n\
                  assert y = '1' report \"Test Case 1 Failed\" severity error;\n\
                  report \"All tests passed successfully!\";\n  wait;\nend process;\n\
                  end architecture;\n";
        let tools = XsimToolSuite::new();
        let report = tools.simulate(
            &[HdlFile::new("inv.vhd", dut), HdlFile::new("tb.vhd", tb)],
            Some("tb"),
        );
        assert!(report.compiled, "log: {}", report.log);
        assert!(report.log.contains("Analyzing VHDL file"));
        // VHDL testbenches end by event starvation; the completion
        // marker makes the run count as a pass anyway.
        assert!(!report.finished);
        assert!(report.passed, "log: {}", report.log);
    }

    #[test]
    fn mixed_language_rejected() {
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[
            HdlFile::new("a.v", GOOD_V),
            HdlFile::new("b.vhd", "entity e is end;"),
        ]);
        assert!(!report.success);
        assert!(report.log.contains("mixed-language"));
    }

    #[test]
    fn waveform_dump_covers_the_run() {
        let tools = XsimToolSuite::new();
        let (report, vcd) = tools.simulate_with_waves(
            &[HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)],
            Some("tb"),
        );
        assert!(report.passed);
        let vcd = vcd.expect("compiled run yields waves");
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$dumpvars"));
        assert!(vcd.contains(" a $end"), "tb signals declared: {vcd}");
        let (_, vcd) = tools.simulate_with_waves(&[HdlFile::new("inv.v", BAD_V)], None);
        assert!(vcd.is_none(), "no waves when compilation fails");
    }

    #[test]
    fn no_elaboratable_unit_is_a_proper_error() {
        // Regression: a source set with no module declaration used to
        // fall through to `elaborate(.., "")` and report a baffling
        // "unknown unit ''"-style diagnostic.
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new("empty.v", "// placeholder, no RTL yet\n")]);
        assert!(!report.success);
        assert!(
            report.log.contains("no top module found"),
            "log: {}",
            report.log
        );
        assert!(report.error_count() >= 1);
        let m = report.messages.iter().find(|m| m.is_error()).expect("msg");
        assert_eq!(m.code, "xelab 43-3316");

        // Same for VHDL (comment-only source, no entity).
        let report = tools.compile(&[HdlFile::new("empty.vhd", "-- placeholder\n")]);
        assert!(!report.success);
        assert!(
            report.log.contains("no top module found"),
            "log: {}",
            report.log
        );
    }

    #[test]
    fn cache_returns_identical_reports_and_counts_hits() {
        let cached = XsimToolSuite::new().with_cache(EdaCache::new());
        let plain = XsimToolSuite::new();
        let files = [HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)];

        let baseline = plain.simulate(&files, Some("tb"));
        let first = cached.simulate(&files, Some("tb"));
        let second = cached.simulate(&files, Some("tb"));
        for r in [&first, &second] {
            assert_eq!(r.passed, baseline.passed);
            assert_eq!(r.log, baseline.log);
            assert_eq!(r.end_time, baseline.end_time);
            assert_eq!(
                r.modeled_latency.to_bits(),
                baseline.modeled_latency.to_bits(),
                "modeled latency must be stored, not recomputed"
            );
        }
        let stats = cached.cache().expect("cache attached").stats();
        // Each simulate = one compile lookup + one sim lookup.
        assert_eq!(stats.misses, 2, "first call misses compile + sim");
        assert_eq!(stats.hits, 2, "second call hits both");
        assert_eq!(stats.entries, 2);

        // analyze has its own shard.
        let a1 = cached.analyze(&files);
        let a2 = cached.analyze(&files);
        assert_eq!(a1.log, a2.log);
        let stats = cached.cache().expect("cache").stats();
        assert_eq!((stats.misses, stats.hits), (3, 3));
    }

    #[test]
    fn kernel_stats_are_cache_mode_invariant_and_shared_by_clones() {
        let files = [HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)];
        let plain = XsimToolSuite::new();
        plain.simulate(&files, Some("tb"));
        let once = plain.kernel_stats();
        assert!(once.instructions > 0, "the kernel executed something");
        assert!(once.sim_time_ns > 0);

        // Two simulates with the cache on: the second is a replay, but
        // its stored counters must fold in as if it had run.
        let cached = XsimToolSuite::new().with_cache(EdaCache::new());
        cached.simulate(&files, Some("tb"));
        let clone = cached.clone();
        clone.simulate(&files, Some("tb"));
        let twice = cached.kernel_stats();
        assert_eq!(twice.instructions, 2 * once.instructions);
        assert_eq!(twice.sim_time_ns, 2 * once.sim_time_ns);
        assert_eq!(twice.eval_allocs, 2 * once.eval_allocs);
        assert_eq!(
            twice.scratch_slots, once.scratch_slots,
            "arena high-water is a max, not a sum"
        );
    }

    #[test]
    fn suite_clones_share_the_cache() {
        let a = XsimToolSuite::new().with_cache(EdaCache::new());
        let b = a.clone();
        let files = [HdlFile::new("inv.v", GOOD_V)];
        let ra = a.compile(&files);
        let rb = b.compile(&files);
        assert_eq!(ra.log, rb.log);
        let stats = a.cache().expect("cache").stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "clone hit a's entry");
    }

    #[test]
    fn cached_failure_reports_are_replayed_too() {
        // Negative results are as cacheable as positive ones: the
        // compile is a pure function either way.
        let tools = XsimToolSuite::new().with_cache(EdaCache::new());
        let r1 = tools.compile(&[HdlFile::new("inv.v", BAD_V)]);
        let r2 = tools.compile(&[HdlFile::new("inv.v", BAD_V)]);
        assert!(!r1.success && !r2.success);
        assert_eq!(r1.log, r2.log);
        assert_eq!(r1.messages, r2.messages);
    }

    #[test]
    fn oscillating_design_reports_structured_divergence() {
        // A self-triggering continuous assign that genuinely oscillates
        // (the `===` makes every re-evaluation flip the value, unlike
        // `~a` whose X fixed point is stable). The watchdog must convert
        // it into a structured `SimDiverged`, not a hang or a silently
        // wrong settle.
        let osc = "module osc(output y);\n  reg unused;\n  wire a;\n\
                   assign a = (a === 1'b0) ? 1'b1 : 1'b0;\n  assign y = a;\nendmodule\n\
                   module tb;\n  wire y;\n  osc dut(.y(y));\n\
                   initial begin #10; $display(\"y=%b\", y); $finish; end\nendmodule\n";
        let tools = XsimToolSuite::new();
        let report = tools.simulate(&[HdlFile::new("osc.v", osc)], Some("tb"));
        assert!(report.compiled, "log: {}", report.log);
        assert!(!report.passed);
        let diverged = report.diverged.as_ref().expect("watchdog must fire");
        assert_eq!(diverged.limit, aivril_sim::LimitKind::DeltaCycles);
        assert!(report.log.contains("XSIM 43-3225"), "log: {}", report.log);
        assert!(diverged.describe().contains("did not settle"));
        // A healthy run reports no divergence.
        let ok = tools.simulate(
            &[HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)],
            Some("tb"),
        );
        assert!(ok.diverged.is_none());
    }

    #[test]
    fn tight_delta_budget_is_configurable() {
        // Lowering `max_deltas_per_step` (the `AIVRIL_SIM_MAX_DELTAS`
        // knob) trips the watchdog sooner on the same design.
        let osc = "module tb;\n  wire a;\n\
                   assign a = (a === 1'b0) ? 1'b1 : 1'b0;\n\
                   initial begin #1; $finish; end\nendmodule\n";
        let tight = XsimToolSuite::new().with_sim_config(SimConfig {
            max_deltas_per_step: 16,
            ..SimConfig::default()
        });
        let report = tight.simulate(&[HdlFile::new("tb.v", osc)], Some("tb"));
        let diverged = report.diverged.expect("tiny budget must trip");
        assert_eq!(diverged.limit, aivril_sim::LimitKind::DeltaCycles);
    }

    #[test]
    fn injected_crash_fails_identically_across_cache_modes() {
        let plan = EdaFaultPlan::parse("crash=1.0").expect("plan");
        let plain = XsimToolSuite::new().with_eda_faults(plan);
        let cached = XsimToolSuite::new()
            .with_eda_faults(plan)
            .with_cache(EdaCache::new());
        let files = [HdlFile::new("inv.v", GOOD_V)];
        let a = plain.compile(&files);
        let b = cached.compile(&files);
        let c = cached.compile(&files);
        assert!(!a.success);
        assert!(a.log.contains("terminated unexpectedly"), "log: {}", a.log);
        assert!(a.error_count() >= 1);
        assert_eq!(a.log, b.log);
        assert_eq!(b.log, c.log);
        assert_eq!(a.modeled_latency.to_bits(), b.modeled_latency.to_bits());
        // retry_max=2 default: three attempts, each costing the compile share.
        let base = XsimToolSuite::new().compile(&files).modeled_latency;
        assert_eq!(a.modeled_latency.to_bits(), (3.0 * base).to_bits());
    }

    #[test]
    fn hang_costs_the_watchdog_per_attempt() {
        let plan = EdaFaultPlan::parse("hang=1.0,retry_max=1,watchdog_s=5").expect("plan");
        let tools = XsimToolSuite::new().with_eda_faults(plan);
        let report = tools.compile(&[HdlFile::new("inv.v", GOOD_V)]);
        assert!(!report.success);
        assert!(
            report.log.contains("watchdog expired"),
            "log: {}",
            report.log
        );
        assert_eq!(report.modeled_latency.to_bits(), 10.0f64.to_bits());
    }

    #[test]
    fn off_plan_is_bit_identical_to_no_plan() {
        let off = XsimToolSuite::new().with_eda_faults(EdaFaultPlan::off());
        let plain = XsimToolSuite::new();
        let files = [HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)];
        let a = off.simulate(&files, Some("tb"));
        let b = plain.simulate(&files, Some("tb"));
        assert_eq!(a.log, b.log);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.modeled_latency.to_bits(), b.modeled_latency.to_bits());
    }

    #[test]
    fn log_mutations_are_deterministic_and_never_fabricate_a_pass() {
        let files = [HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)];
        for spec in ["truncate=1.0", "garbled=1.0"] {
            let plan = EdaFaultPlan::parse(spec).expect("plan");
            let tools = XsimToolSuite::new().with_eda_faults(plan);
            let cached = XsimToolSuite::new()
                .with_eda_faults(plan)
                .with_cache(EdaCache::new());
            let r1 = tools.simulate(&files, Some("tb"));
            let r2 = cached.simulate(&files, Some("tb"));
            let r3 = cached.simulate(&files, Some("tb"));
            assert_eq!(r1.log, r2.log, "{spec}: cache modes must agree");
            assert_eq!(r2.log, r3.log, "{spec}: replays must agree");
            assert_eq!(r1.passed, r2.passed);
            // Corruption may hide the pass marker but never invent it.
            assert!(r1.log.contains(PASS_MARKER) || !r1.passed, "{spec}");
        }
        // The cache itself stays clean: dropping the plan from a suite
        // sharing the same cache yields the uncorrupted report.
        let plan = EdaFaultPlan::parse("truncate=1.0").expect("plan");
        let cache = EdaCache::new();
        let faulted = XsimToolSuite::new()
            .with_eda_faults(plan)
            .with_cache(cache.clone());
        faulted.simulate(&files, Some("tb"));
        let clean = XsimToolSuite::new().with_cache(cache);
        let baseline = XsimToolSuite::new().simulate(&files, Some("tb"));
        assert_eq!(clean.simulate(&files, Some("tb")).log, baseline.log);
    }

    #[test]
    fn latency_accumulates_compile_plus_sim() {
        let tools = XsimToolSuite::new();
        let c = tools.compile(&[HdlFile::new("inv.v", GOOD_V)]);
        let s = tools.simulate(
            &[HdlFile::new("inv.v", GOOD_V), HdlFile::new("tb.v", GOOD_TB)],
            Some("tb"),
        );
        assert!(s.modeled_latency > c.modeled_latency);
    }
}
