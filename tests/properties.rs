//! Cross-crate property-based tests (proptest): the robustness
//! invariants the AIVRIL2 loop depends on.
//!
//! The single most important one: the toolchain must be *total* — any
//! corrupted source, however mangled, must produce located diagnostics
//! or a clean run, never a panic or a hang. The agent loop feeds the
//! compiler LLM-corrupted code on every iteration.

use aivril_bench::build_library;
use aivril_core::{Aivril2, Aivril2Config, Stage, TaskInput};
use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};
use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;
use aivril_llm::{profiles, SimLlm, TaskLibrary};
use aivril_metrics::pass_at_k;
use aivril_sim::SimConfig;
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static [aivril_verilogeval::Problem] {
    static SUITE: OnceLock<Vec<aivril_verilogeval::Problem>> = OnceLock::new();
    SUITE.get_or_init(aivril_verilogeval::suite)
}

fn library() -> &'static TaskLibrary {
    static LIB: OnceLock<TaskLibrary> = OnceLock::new();
    LIB.get_or_init(|| build_library(suite()))
}

/// Runs one AIVRIL2 pipeline execution on a suite problem.
fn run_pipeline(
    config: Aivril2Config,
    problem_idx: usize,
    model_idx: usize,
    verilog: bool,
    seed: u64,
) -> aivril_core::RunResult {
    let problems = suite();
    let p = &problems[problem_idx % problems.len()];
    let models = profiles::all();
    let mut model = SimLlm::new(models[model_idx % models.len()].clone(), library().clone());
    let tools = XsimToolSuite::new();
    let pipeline = Aivril2::new(&tools, config);
    let task = TaskInput {
        name: p.name.clone(),
        module_name: p.module_name.clone(),
        spec: p.spec.clone(),
        verilog,
        seed,
    };
    pipeline.run(&mut model, &task)
}

/// Failure count of a functional-loop `simulate:` narration, or `None`
/// for non-simulate events. A compile-broken revision counts as worse
/// than any failing-tests outcome, matching the loop's own accounting.
fn simulate_failures(what: &str) -> Option<usize> {
    let rest = what.strip_prefix("simulate: ")?;
    if rest == "all tests passed" {
        Some(0)
    } else if rest == "revision failed to compile" {
        Some(usize::MAX)
    } else {
        rest.split(' ').next().and_then(|n| n.parse().ok())
    }
}

fn suite_sources() -> &'static [(String, String)] {
    static SOURCES: OnceLock<Vec<(String, String)>> = OnceLock::new();
    SOURCES.get_or_init(|| {
        suite()
            .iter()
            .take(24)
            .flat_map(|p| {
                [
                    (format!("{}.v", p.module_name), p.verilog.dut.clone()),
                    (format!("{}.vhd", p.module_name), p.vhdl.dut.clone()),
                ]
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Byte-level corruption of real designs never panics the tools and
    /// never loses error information silently (a changed file either
    /// still compiles or yields at least one error message).
    #[test]
    fn compiler_is_total_under_corruption(
        idx in 0usize..48,
        cut_start in 0usize..2000,
        cut_len in 1usize..40,
        insert in "[ -~]{0,16}",
    ) {
        let sources = suite_sources();
        let (name, text) = &sources[idx % sources.len()];
        let mut corrupted = text.clone();
        let start = cut_start % corrupted.len().max(1);
        let end = (start + cut_len).min(corrupted.len());
        corrupted.replace_range(start..end, &insert);
        let tools = XsimToolSuite::new();
        let report = tools.compile(&[HdlFile::new(name.clone(), corrupted)]);
        // Either success or at least one structured error message.
        prop_assert!(report.success || report.error_count() >= 1);
    }

    /// Arbitrary "source" text (printable noise) is handled gracefully
    /// by both frontends.
    #[test]
    fn frontends_survive_noise(text in "[ -~\\n]{0,300}") {
        let tools = XsimToolSuite::new();
        let _ = tools.compile(&[HdlFile::new("noise.v", text.clone())]);
        let _ = tools.compile(&[HdlFile::new("noise.vhd", text)]);
    }

    /// Simulation of corrupted-but-compiling designs always terminates
    /// within the configured budgets.
    #[test]
    fn simulation_always_terminates(idx in 0usize..24, flip in 0usize..64) {
        let problems = suite();
        let p = &problems[idx % problems.len()];
        // Flip one operator-ish byte in the DUT.
        let mut dut = p.verilog.dut.clone().into_bytes();
        let pos = flip % dut.len();
        if dut[pos] == b'&' { dut[pos] = b'|'; } else if dut[pos] == b'+' { dut[pos] = b'-'; }
        let dut = String::from_utf8(dut).expect("ascii");
        let tools = XsimToolSuite::new().with_sim_config(SimConfig::default());
        let report = tools.simulate(
            &[
                HdlFile::new(format!("{}.v", p.module_name), dut),
                HdlFile::new("tb.v", p.verilog.tb.clone()),
            ],
            Some("tb"),
        );
        // Terminating at all is the property; outcome may be anything.
        prop_assert!(report.modeled_latency.is_finite());
    }

    /// LogicVec arithmetic agrees with u64 arithmetic on known values.
    #[test]
    fn logicvec_matches_u64(a in 0u64..u64::MAX, b in 0u64..u64::MAX, w in 1u32..63) {
        let mask = (1u64 << w) - 1;
        let (a, b) = (a & mask, b & mask);
        let va = LogicVec::from_u64(w, a);
        let vb = LogicVec::from_u64(w, b);
        prop_assert_eq!(va.add(&vb).to_u64(), Some(a.wrapping_add(b) & mask));
        prop_assert_eq!(va.sub(&vb).to_u64(), Some(a.wrapping_sub(b) & mask));
        prop_assert_eq!(va.and(&vb).to_u64(), Some(a & b));
        prop_assert_eq!(va.or(&vb).to_u64(), Some(a | b));
        prop_assert_eq!(va.xor(&vb).to_u64(), Some(a ^ b));
        prop_assert_eq!(va.lt(&vb), Logic::from_bool(a < b));
        prop_assert_eq!(va.logic_eq(&vb), Logic::from_bool(a == b));
    }

    /// X-propagation: any unknown operand poisons arithmetic entirely.
    #[test]
    fn x_poisons_arithmetic(a in 0u64..1024, w in 2u32..16, bit in 0u32..16) {
        let mut va = LogicVec::from_u64(w, a & ((1 << w) - 1));
        va.set(bit % w, Logic::X);
        let vb = LogicVec::from_u64(w, 3);
        prop_assert!(va.add(&vb).iter().all(|b| b == Logic::X));
        prop_assert_eq!(va.logic_eq(&vb), Logic::X);
    }

    /// Concatenation then slicing round-trips.
    #[test]
    fn concat_slice_roundtrip(hi in 0u64..256, lo in 0u64..256) {
        let vhi = LogicVec::from_u64(8, hi);
        let vlo = LogicVec::from_u64(8, lo);
        let cat = vhi.concat(&vlo);
        prop_assert_eq!(cat.slice(15, 8).to_u64(), Some(hi));
        prop_assert_eq!(cat.slice(7, 0).to_u64(), Some(lo));
    }

    /// Whatever the seed, model, language or budgets, a pipeline run
    /// never spends more corrective iterations than its configured
    /// budgets allow — the loops must be inescapably bounded.
    #[test]
    fn iteration_counts_respect_budgets(
        problem_idx in 0usize..156,
        model_idx in 0usize..3,
        verilog in (0u8..2).prop_map(|b| b == 0),
        seed in 0u64..1_000_000,
        max_syntax in 1u32..5,
        max_functional in 1u32..5,
    ) {
        let config = Aivril2Config {
            max_syntax_iters: max_syntax,
            max_functional_iters: max_functional,
            ..Aivril2Config::default()
        };
        let r = run_pipeline(config, problem_idx, model_idx, verilog, seed);
        prop_assert!(
            r.trace.iterations(Stage::TbSyntaxLoop) <= max_syntax,
            "tb syntax loop overran: {} > {max_syntax}\n{}",
            r.trace.iterations(Stage::TbSyntaxLoop),
            r.trace.narration()
        );
        prop_assert!(
            r.trace.iterations(Stage::RtlSyntaxLoop) <= max_syntax,
            "rtl syntax loop overran: {} > {max_syntax}\n{}",
            r.trace.iterations(Stage::RtlSyntaxLoop),
            r.trace.narration()
        );
        prop_assert!(
            r.trace.iterations(Stage::FunctionalLoop) <= max_functional,
            "functional loop overran: {} > {max_functional}\n{}",
            r.trace.iterations(Stage::FunctionalLoop),
            r.trace.narration()
        );
    }

    /// The rollback mechanism's contract: the RTL a run returns is never
    /// worse (against the run's own frozen testbench) than the best
    /// version the functional loop observed.
    #[test]
    fn rollback_never_returns_worse_than_best_seen(
        problem_idx in 0usize..156,
        model_idx in 0usize..3,
        seed in 0u64..1_000_000,
    ) {
        let r = run_pipeline(Aivril2Config::default(), problem_idx, model_idx, true, seed);
        let observed: Vec<usize> = r
            .trace
            .events
            .iter()
            .filter(|e| e.stage == Stage::FunctionalLoop)
            .filter_map(|e| simulate_failures(&e.what))
            .collect();
        if let Some(&best_seen) = observed.iter().min() {
            let tools = XsimToolSuite::new();
            let report = tools.simulate(
                &[
                    HdlFile::new("dut.v".to_string(), r.final_rtl.clone()),
                    HdlFile::new("tb.v".to_string(), r.final_tb.clone()),
                ],
                Some("tb"),
            );
            let final_failures = if report.passed {
                0
            } else if report.compiled {
                report.failures.len()
            } else {
                usize::MAX
            };
            prop_assert!(
                final_failures <= best_seen,
                "final RTL has {final_failures} failure(s) but the loop saw a \
                 version with only {best_seen}\n{}",
                r.trace.narration()
            );
        }
    }

    /// pass@k is a probability, monotone in c, and exact for k = n.
    #[test]
    fn pass_at_k_properties(n in 1u64..40, c in 0u64..40, k in 1u64..40) {
        let c = c.min(n);
        let k = k.min(n);
        let v = pass_at_k(n, c, k);
        prop_assert!((0.0..=1.0).contains(&v));
        if c > 0 {
            prop_assert!(v >= pass_at_k(n, c - 1, k) - 1e-12);
        }
        if k == n {
            // Drawing all samples: succeeds iff any sample is correct.
            prop_assert!((v - f64::from(u8::from(c > 0))).abs() < 1e-12);
        }
    }
}
