//! The `aivril-inspect` determinism suite: every analysis report is a
//! pure function of its input artifacts. Since the artifacts
//! themselves are byte-identical across `AIVRIL_THREADS` and shard
//! partitions, so is every `summary`/`flame` report derived from them;
//! `diff` pinpoints an injected single-line journal divergence; `tail`
//! renders correct progress from a half-written checkpoint directory
//! with a torn tail; and `regress` (driven through the real binary)
//! exits nonzero on a synthetic 20% slowdown while passing on clean
//! timings.

use aivril_bench::{
    checkpoint, plan_shards, results_json, Flow, Harness, HarnessConfig, ResultSection,
};
use aivril_llm::profiles;
use aivril_obs::{analyze, render_journal, Recorder};
use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn config(task_limit: usize, samples: u32, threads: usize) -> HarnessConfig {
    HarnessConfig {
        samples,
        task_limit,
        threads,
        canonical: true,
        ..HarnessConfig::default()
    }
}

/// One traced evaluation: the results artifact and the run journal.
fn traced_run(cfg: &HarnessConfig, shards: usize) -> (String, String) {
    let rec = Recorder::new();
    let h = Harness::new(cfg.clone()).with_recorder(rec.clone());
    let profile = profiles::claude35_sonnet();
    let cells = h.problems().len() * cfg.samples as usize;
    let runs = plan_shards(cells, shards)
        .into_iter()
        .map(|range| h.run_shard(&profile, true, Flow::Aivril2, range))
        .collect();
    let (outcomes, stats) = h.merge_shards(runs);
    let results = results_json(&[ResultSection {
        label: "inspect".into(),
        outcomes,
        stats,
    }]);
    (results, render_journal(&rec))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("aivril-inspect-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Runs the built `aivril-inspect` binary; returns (exit code, stdout).
fn inspect(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_aivril-inspect"))
        .args(args)
        .output()
        .expect("spawn aivril-inspect");
    (
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

#[test]
fn reports_are_byte_identical_across_threads_and_shards() {
    // Same grid, three schedules: 1 thread unsharded, 4 threads
    // unsharded, 2 threads over 3 shards.
    let (res_a, jrn_a) = traced_run(&config(4, 2, 1), 1);
    let (res_b, jrn_b) = traced_run(&config(4, 2, 4), 1);
    let (res_c, jrn_c) = traced_run(&config(4, 2, 2), 3);
    assert_eq!(jrn_a, jrn_b);
    assert_eq!(jrn_a, jrn_c);
    // Canonical mode masks the schedule-recording `threads` field, so
    // the whole artifact compares byte-for-byte across schedules.
    assert_eq!(res_a, res_b);
    assert_eq!(res_a, res_c);

    // The derived reports are pure functions of those bytes — equal
    // inputs must give equal reports, and repeated renders are stable.
    let summary = analyze::summary(&jrn_a).expect("journal summary");
    assert_eq!(summary, analyze::summary(&jrn_b).unwrap());
    assert_eq!(summary, analyze::summary(&jrn_c).unwrap());
    assert_eq!(summary, analyze::summary(&jrn_a).unwrap());
    assert!(summary.contains("[attribution]"), "{summary}");
    assert!(summary.contains("stage.rtl_generation"), "{summary}");
    assert!(summary.contains("[per-problem]"), "{summary}");
    assert!(summary.contains("p50"), "{summary}");

    let flame = analyze::flame(&jrn_a).expect("flame export");
    assert_eq!(flame, analyze::flame(&jrn_c).unwrap());
    // Collapsed-stack shape: `path;to;span <integer-microseconds>`.
    assert!(!flame.is_empty());
    for line in flame.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack and value");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("integer self-time");
    }
    let mut sorted: Vec<&str> = flame.lines().collect();
    sorted.sort_unstable();
    assert_eq!(sorted, flame.lines().collect::<Vec<_>>(), "sorted output");

    let res_summary = analyze::summary(&res_a).expect("results summary");
    assert_eq!(res_summary, analyze::summary(&res_c).unwrap());
    assert!(res_summary.contains("functional pass"), "{res_summary}");

    // And identical artifacts diff clean through the real binary.
    let dir = temp_dir("diffclean");
    let (a, b) = (dir.join("a.jsonl"), dir.join("b.jsonl"));
    fs::write(&a, &jrn_a).unwrap();
    fs::write(&b, &jrn_c).unwrap();
    let (code, out) = inspect(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("no divergence"), "{out}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn diff_pinpoints_an_injected_single_line_divergence() {
    let (_, journal) = traced_run(&config(3, 2, 2), 1);
    let lines: Vec<&str> = journal.lines().collect();
    // Perturb one modeled timestamp mid-journal.
    let victim = lines.len() / 2;
    let patched = lines[victim].replace("\"t1\":", "\"t1\":9");
    assert_ne!(patched, lines[victim], "injection must change the line");
    let mut b_lines = lines.clone();
    b_lines[victim] = &patched;
    let tampered = b_lines.join("\n") + "\n";

    let dir = temp_dir("diffbad");
    let (a, b) = (dir.join("good.jsonl"), dir.join("bad.jsonl"));
    fs::write(&a, &journal).unwrap();
    fs::write(&b, &tampered).unwrap();

    // The binary labels each side by the path it was given; call the
    // library the same way so the outputs are comparable byte-for-byte.
    let out = analyze::diff(
        a.to_str().unwrap(),
        &journal,
        b.to_str().unwrap(),
        &tampered,
    )
    .expect("diff runs");
    assert!(out.diverged);
    assert!(
        out.report
            .contains(&format!("first divergence at line {}", victim + 1)),
        "{}",
        out.report
    );
    assert!(out.report.contains("pinpoint"), "{}", out.report);

    // Through the binary: divergence is exit code 1.
    let (code, stdout) = inspect(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code, 1);
    assert_eq!(stdout, out.report, "binary output is the library report");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn diff_results_reports_outcome_flips() {
    let (results, _) = traced_run(&config(3, 2, 1), 1);
    let flipped = results.replacen("\"functional\":true", "\"functional\":false", 1);
    assert_ne!(flipped, results, "the small grid must have a passing cell");
    let out = analyze::diff("a", &results, "b", &flipped).expect("diff runs");
    assert!(out.diverged);
    assert!(
        out.report.contains("functional true->false"),
        "{}",
        out.report
    );
    assert!(out.report.contains("outcome flip(s)"), "{}", out.report);
}

#[test]
fn tail_reads_a_half_written_checkpoint_dir_with_a_torn_tail() {
    let dir = temp_dir("tail");
    let cfg = HarnessConfig {
        checkpoint_dir: Some(dir.to_str().unwrap().to_string()),
        ..config(3, 2, 2)
    };
    // A half-finished grid: only cells 0..4 of 6 have run.
    let h = Harness::new(cfg);
    let profile = profiles::claude35_sonnet();
    let _ = h.run_shard(
        &profile,
        true,
        Flow::Aivril2,
        aivril_bench::ShardRange { start: 0, end: 4 },
    );

    // The log name advertises the full 0..6 grid? No — it advertises
    // the shard's own range. Plant a second (empty but named) shard log
    // the way a just-started peer would, so total-cells inference sees
    // the whole grid, then tear the first log's tail mid-line.
    let logs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    assert_eq!(logs.len(), 1);
    let first = &logs[0];
    let name = first.file_name().unwrap().to_str().unwrap();
    let fingerprint = name
        .strip_prefix("ckpt-")
        .and_then(|r| r.split('-').next())
        .unwrap();
    let header: String = fs::read_to_string(first)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    fs::write(
        dir.join(format!("ckpt-{fingerprint}-4-6.log")),
        format!("{header}\n"),
    )
    .unwrap();
    // Torn tail: a kill mid-append leaves a partial line.
    let mut bytes = fs::read(first).unwrap();
    bytes.extend_from_slice(b"cell 5 0bad torn-mid");
    fs::write(first, &bytes).unwrap();

    let report = checkpoint::tail_report(&dir);
    assert!(
        report.contains("4/6 cell(s) done (66.7%), 2 remaining"),
        "{report}"
    );
    assert!(report.contains("torn tail"), "{report}");
    assert!(report.contains("rolling pass rate"), "{report}");
    // Deterministic given the same directory state.
    assert_eq!(report, checkpoint::tail_report(&dir));

    // Through the binary (one-shot, no --follow), byte-identically,
    // and still read-only: the torn bytes survive.
    let (code, stdout) = inspect(&["tail", dir.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert_eq!(stdout, report);
    assert_eq!(fs::read(first).unwrap(), bytes, "tail must never truncate");

    // Completion semantics for --follow: the half-done 6-cell grid is
    // not complete, neither by the inferred size (ranges tile 0..6 but
    // cells 4..6 are missing) nor against the planned size.
    let groups = checkpoint::scan_dir(&dir);
    assert!(groups.iter().all(|g| !g.complete(None)));
    assert!(groups.iter().all(|g| !g.complete(Some(6))));
    // Against a planned size the restored cells do satisfy, --follow
    // sees completion on its first poll and exits instead of hanging.
    let (code, followed) = inspect(&[
        "tail",
        dir.to_str().unwrap(),
        "--follow",
        "--expect-cells",
        "4",
        "--interval",
        "0.1",
    ]);
    assert_eq!(code, 0);
    assert_eq!(followed, report);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn regress_gate_fails_on_a_synthetic_20_percent_slowdown() {
    let dir = temp_dir("regress");
    let baseline = dir.join("BENCH_SIM.json");
    fs::write(
        &baseline,
        "{\"suite\":\"sim_kernel\",\"results\":[\
         {\"name\":\"sim_kernel/clkdiv\",\"baseline_ns\":900.0,\"current_ns\":1000.0},\
         {\"name\":\"sim_kernel/alu\",\"baseline_ns\":1800.0,\"current_ns\":2000.0}]}",
    )
    .unwrap();
    let clean = dir.join("clean.jsonl");
    fs::write(
        &clean,
        "{\"name\":\"sim_kernel/clkdiv\",\"ns_per_iter\":1020.0,\"quick\":true}\n\
         {\"name\":\"sim_kernel/alu\",\"ns_per_iter\":1980.0,\"quick\":true}\n",
    )
    .unwrap();
    let slow = dir.join("slow.jsonl");
    fs::write(
        &slow,
        "{\"name\":\"sim_kernel/clkdiv\",\"ns_per_iter\":1200.0,\"quick\":true}\n\
         {\"name\":\"sim_kernel/alu\",\"ns_per_iter\":2000.0,\"quick\":true}\n",
    )
    .unwrap();

    let base = baseline.to_str().unwrap();
    let (code, out) = inspect(&[
        "regress",
        "--baseline",
        base,
        "--current",
        clean.to_str().unwrap(),
        "--tolerance",
        "0.15",
    ]);
    assert_eq!(code, 0, "clean timings must pass: {out}");
    assert!(out.contains("no kernel regressions"), "{out}");

    // One benchmark 20% over its committed baseline while its peer
    // holds steady: caught at 15% tolerance, exit nonzero.
    let (code, out) = inspect(&[
        "regress",
        "--baseline",
        base,
        "--current",
        slow.to_str().unwrap(),
        "--tolerance",
        "0.15",
    ]);
    assert_eq!(code, 1, "20% slowdown must fail the gate: {out}");
    assert!(out.contains("REGRESSION"), "{out}");
    assert!(out.contains("sim_kernel/clkdiv"), "{out}");

    // Determinism: same inputs, same report bytes.
    let again = inspect(&[
        "regress",
        "--baseline",
        base,
        "--current",
        slow.to_str().unwrap(),
        "--tolerance",
        "0.15",
    ]);
    assert_eq!(again.1, out);

    // Malformed artifacts are a distinct error code (2), not a panic.
    let (code, _) = inspect(&["regress", "--baseline", clean.to_str().unwrap()]);
    assert_eq!(code, 2, "a criterion file is not a baseline");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn summary_and_flame_run_through_the_binary() {
    let dir = temp_dir("cli");
    let (results, journal) = traced_run(&config(2, 2, 1), 1);
    let jp = dir.join("run.jsonl");
    let rp = dir.join("results.json");
    fs::write(&jp, &journal).unwrap();
    fs::write(&rp, &results).unwrap();

    let (code, out) = inspect(&["summary", jp.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert_eq!(out, analyze::summary(&journal).unwrap());

    let (code, out) = inspect(&["summary", rp.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert_eq!(out, analyze::summary(&results).unwrap());

    let (code, out) = inspect(&["flame", jp.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert_eq!(out, analyze::flame(&journal).unwrap());

    // Unknown subcommands and missing files fail without panicking.
    let (code, _) = inspect(&["no-such-subcommand"]);
    assert_eq!(code, 1);
    let (code, _) = inspect(&["summary", "/nonexistent/artifact.json"]);
    assert_eq!(code, 2);
    let _ = fs::remove_dir_all(&dir);
}
