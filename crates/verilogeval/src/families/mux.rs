//! Multiplexers (10 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

fn mux2(width: u32) -> CombSpec {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    CombSpec {
        name: format!("mux2to1_w{width}"),
        family: Family::Mux,
        difficulty: Difficulty::Easy,
        description: format!(
            "y selects between the two {width}-bit data inputs: y = b when sel is 1, else a."
        ),
        inputs: vec![
            Port::new("a", width),
            Port::new("b", width),
            Port::new("sel", 1),
        ],
        outputs: vec![Port::new("y", width)],
        vlog_body: "  assign y = sel ? b : a;\n".into(),
        vlog_out_reg: false,
        vhdl_body: "  y <= b when sel = '1' else a;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![if v[2] == 1 { v[1] } else { v[0] } & mask]),
    }
}

fn mux4(width: u32) -> CombSpec {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let vlog_body = "  always @* begin\n    case (sel)\n      2'b00: y = d0;\n      2'b01: y = d1;\n      2'b10: y = d2;\n      default: y = d3;\n    endcase\n  end\n".to_string();
    let vhdl_body = "  process (sel, d0, d1, d2, d3)\n  begin\n    case sel is\n      when \"00\" => y <= d0;\n      when \"01\" => y <= d1;\n      when \"10\" => y <= d2;\n      when others => y <= d3;\n    end case;\n  end process;\n".to_string();
    CombSpec {
        name: format!("mux4to1_w{width}"),
        family: Family::Mux,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is a 4-to-1 multiplexer over the {width}-bit inputs d0..d3, selected by the 2-bit sel (00 picks d0, 11 picks d3)."
        ),
        inputs: vec![
            Port::new("d0", width),
            Port::new("d1", width),
            Port::new("d2", width),
            Port::new("d3", width),
            Port::new("sel", 2),
        ],
        outputs: vec![Port::new("y", width)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![v[v[4] as usize] & mask]),
    }
}

fn mux8(width: u32) -> CombSpec {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    let mut varms = String::new();
    let mut harms = String::new();
    for i in 0..8 {
        varms.push_str(&format!("      3'b{:03b}: y = d{i};\n", i));
        harms.push_str(&format!("      when \"{:03b}\" => y <= d{i};\n", i));
    }
    let vlog_body = format!(
        "  always @* begin\n    case (sel)\n{varms}      default: y = d0;\n    endcase\n  end\n"
    );
    let sens = (0..8)
        .map(|i| format!("d{i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let vhdl_body = format!(
        "  process (sel, {sens})\n  begin\n    case sel is\n{harms}      when others => y <= d0;\n    end case;\n  end process;\n"
    );
    let mut inputs: Vec<Port> = (0..8).map(|i| Port::new(format!("d{i}"), width)).collect();
    inputs.push(Port::new("sel", 3));
    CombSpec {
        name: format!("mux8to1_w{width}"),
        family: Family::Mux,
        difficulty: Difficulty::Medium,
        description: format!(
            "y is an 8-to-1 multiplexer over the {width}-bit inputs d0..d7, selected by the 3-bit sel."
        ),
        inputs,
        outputs: vec![Port::new("y", width)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| vec![v[v[8] as usize] & mask]),
    }
}

fn mux2_en(width: u32) -> CombSpec {
    let mask = if width >= 64 {
        u64::MAX
    } else {
        (1 << width) - 1
    };
    CombSpec {
        name: format!("mux2to1_en_w{width}"),
        family: Family::Mux,
        difficulty: Difficulty::Medium,
        description: format!(
            "A gated 2-to-1 mux over {width}-bit data: when en is 0 the output is all zeros; otherwise y = b if sel is 1, else a."
        ),
        inputs: vec![
            Port::new("a", width),
            Port::new("b", width),
            Port::new("sel", 1),
            Port::new("en", 1),
        ],
        outputs: vec![Port::new("y", width)],
        vlog_body: format!(
            "  assign y = en ? (sel ? b : a) : {width}'b{};\n",
            "0".repeat(width as usize)
        ),
        vlog_out_reg: false,
        vhdl_body: "  y <= (others => '0') when en = '0' else b when sel = '1' else a;\n".into(),
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            vec![if v[3] == 0 {
                0
            } else if v[2] == 1 {
                v[1] & mask
            } else {
                v[0] & mask
            }]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    for w in [1, 4, 8] {
        problems.push(comb_problem(mux2(w)));
    }
    for w in [1, 4, 8] {
        problems.push(comb_problem(mux4(w)));
    }
    for w in [1, 2] {
        problems.push(comb_problem(mux8(w)));
    }
    for w in [2, 4] {
        problems.push(comb_problem(mux2_en(w)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn mux4_uses_case_statements() {
        let mut v = Vec::new();
        extend(&mut v);
        let p = v.iter().find(|p| p.name == "mux4to1_w4").expect("present");
        assert!(p.verilog.dut.contains("case (sel)"));
        assert!(p.vhdl.dut.contains("case sel is"));
    }
}
