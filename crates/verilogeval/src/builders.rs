//! Problem construction: DUT codegen + self-checking testbench
//! generation for both languages, from a family-provided spec and a
//! Rust golden model.

use crate::port::{vhdl_lit, vlog_lit, Port, SplitMix};
use crate::{Difficulty, Family, GoldenPair, Problem};

/// Description of a combinational problem, provided by a family module.
pub struct CombSpec {
    /// Short name, e.g. `mux4to1_w8` (the builder prefixes the id).
    pub name: String,
    /// Family tag.
    pub family: Family,
    /// Difficulty bucket.
    pub difficulty: Difficulty,
    /// Behavioural description used in the prompt.
    pub description: String,
    /// Input ports.
    pub inputs: Vec<Port>,
    /// Output ports.
    pub outputs: Vec<Port>,
    /// Verilog module body (between header and `endmodule`).
    pub vlog_body: String,
    /// `true` when the body drives outputs procedurally (`always @*`),
    /// so the ports must be declared `reg`.
    pub vlog_out_reg: bool,
    /// VHDL architecture body.
    pub vhdl_body: String,
    /// Extra VHDL declarations (signals) for the architecture.
    pub vhdl_decls: String,
    /// Golden model: input values → output values.
    pub eval: GoldenEval,
}

/// A boxed golden-model function: input values → output values.
pub type GoldenEval = Box<dyn Fn(&[u64]) -> Vec<u64>>;

/// Description of a sequential (posedge-clocked, Moore-style) problem.
pub struct SeqSpec {
    /// Short name.
    pub name: String,
    /// Family tag.
    pub family: Family,
    /// Difficulty bucket.
    pub difficulty: Difficulty,
    /// Behavioural description used in the prompt.
    pub description: String,
    /// Input ports, excluding the implicit `clk`.
    pub inputs: Vec<Port>,
    /// Output ports (registered).
    pub outputs: Vec<Port>,
    /// Verilog module body.
    pub vlog_body: String,
    /// VHDL architecture body.
    pub vhdl_body: String,
    /// Extra VHDL declarations.
    pub vhdl_decls: String,
    /// Per-cycle input values (sampled at each rising edge).
    pub stimulus: Vec<Vec<u64>>,
    /// Per-cycle expected outputs *after* the rising edge; `None` skips
    /// the check for that cycle.
    pub expected: Vec<Option<Vec<u64>>>,
}

/// Builds a combinational [`Problem`].
#[must_use]
pub fn comb_problem(spec: CombSpec) -> Problem {
    let vectors = choose_vectors(&spec.inputs, &spec.name);
    let expected: Vec<Vec<u64>> = vectors.iter().map(|v| (spec.eval)(v)).collect();
    let verilog = GoldenPair {
        dut: vlog_dut(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.vlog_body,
            spec.vlog_out_reg,
            false,
        ),
        tb: vlog_comb_tb(&spec.name, &spec.inputs, &spec.outputs, &vectors, &expected),
    };
    let vhdl = GoldenPair {
        dut: vhdl_dut(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.vhdl_decls,
            &spec.vhdl_body,
            false,
        ),
        tb: vhdl_comb_tb(&spec.name, &spec.inputs, &spec.outputs, &vectors, &expected),
    };
    Problem {
        id: 0,
        name: spec.name.clone(),
        family: spec.family,
        difficulty: spec.difficulty,
        spec: prompt(
            &spec.name,
            &spec.description,
            &spec.inputs,
            &spec.outputs,
            false,
        ),
        module_name: spec.name,
        verilog,
        vhdl,
    }
}

/// Builds a sequential [`Problem`].
#[must_use]
pub fn seq_problem(spec: SeqSpec) -> Problem {
    assert_eq!(
        spec.stimulus.len(),
        spec.expected.len(),
        "stimulus and expected timelines must align"
    );
    let verilog = GoldenPair {
        dut: vlog_dut(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.vlog_body,
            true,
            true,
        ),
        tb: vlog_seq_tb(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.stimulus,
            &spec.expected,
        ),
    };
    let vhdl = GoldenPair {
        dut: vhdl_dut(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.vhdl_decls,
            &spec.vhdl_body,
            true,
        ),
        tb: vhdl_seq_tb(
            &spec.name,
            &spec.inputs,
            &spec.outputs,
            &spec.stimulus,
            &spec.expected,
        ),
    };
    Problem {
        id: 0,
        name: spec.name.clone(),
        family: spec.family,
        difficulty: spec.difficulty,
        spec: prompt(
            &spec.name,
            &spec.description,
            &spec.inputs,
            &spec.outputs,
            true,
        ),
        module_name: spec.name,
        verilog,
        vhdl,
    }
}

// ----------------------------------------------------------- prompts

fn prompt(name: &str, description: &str, inputs: &[Port], outputs: &[Port], seq: bool) -> String {
    let mut s = String::new();
    s.push_str(&format!("Design task: {name}.\n"));
    s.push_str(&format!(
        "Implement a hardware module named `{name}` with the following interface:\n"
    ));
    if seq {
        s.push_str("  - input clk (1 bit): clock\n");
    }
    for p in inputs {
        s.push_str(&format!(
            "  - input {} ({} bit{})\n",
            p.name,
            p.width,
            plural(p.width)
        ));
    }
    for p in outputs {
        s.push_str(&format!(
            "  - output {} ({} bit{})\n",
            p.name,
            p.width,
            plural(p.width)
        ));
    }
    s.push_str(&format!("Behaviour: {description}\n"));
    if seq {
        s.push_str(
            "All state updates occur on the rising edge of `clk`; outputs are registered.\n",
        );
    }
    s
}

fn plural(w: u32) -> &'static str {
    if w == 1 {
        ""
    } else {
        "s"
    }
}

// ------------------------------------------------------ vector choice

/// Exhaustive when the input space is at most 2^10, otherwise 64 seeded
/// pseudo-random vectors with the all-zeros / all-ones corners pinned.
fn choose_vectors(inputs: &[Port], name: &str) -> Vec<Vec<u64>> {
    let total_bits: u32 = inputs.iter().map(|p| p.width).sum();
    if total_bits <= 10 {
        let count = 1u64 << total_bits;
        (0..count)
            .map(|n| {
                let mut fields = Vec::with_capacity(inputs.len());
                let mut shift = 0;
                for p in inputs {
                    fields.push((n >> shift) & mask(p.width));
                    shift += p.width;
                }
                fields
            })
            .collect()
    } else {
        let seed = name.bytes().fold(0xA5A5u64, |h, b| {
            h.wrapping_mul(0x100000001B3).wrapping_add(u64::from(b))
        });
        let mut rng = SplitMix::new(seed);
        let mut vectors = vec![
            inputs.iter().map(|_| 0u64).collect::<Vec<u64>>(),
            inputs.iter().map(|p| mask(p.width)).collect::<Vec<u64>>(),
        ];
        for _ in 0..62 {
            vectors.push(inputs.iter().map(|p| rng.bits(p.width)).collect());
        }
        vectors
    }
}

fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

// -------------------------------------------------------- DUT codegen

fn vlog_dut(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    body: &str,
    out_reg: bool,
    seq: bool,
) -> String {
    let mut ports = Vec::new();
    if seq {
        ports.push("  input wire clk".to_string());
    }
    for p in inputs {
        ports.push(format!("  input wire {}{}", p.vlog_range(), p.name));
    }
    let out_kind = if out_reg { "reg" } else { "wire" };
    for p in outputs {
        ports.push(format!(
            "  output {} {}{}",
            out_kind,
            p.vlog_range(),
            p.name
        ));
    }
    format!(
        "module {name}(\n{}\n);\n{body}endmodule\n",
        ports.join(",\n")
    )
}

fn vhdl_dut(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    decls: &str,
    body: &str,
    seq: bool,
) -> String {
    let mut ports = Vec::new();
    if seq {
        ports.push("    clk : in std_logic".to_string());
    }
    for p in inputs {
        ports.push(format!("    {} : in {}", p.name, p.vhdl_type()));
    }
    for p in outputs {
        ports.push(format!("    {} : out {}", p.name, p.vhdl_type()));
    }
    format!(
        "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n\
         entity {name} is\n  port (\n{}\n  );\nend entity;\n\n\
         architecture rtl of {name} is\n{decls}begin\n{body}end architecture;\n",
        ports.join(";\n")
    )
}

// ------------------------------------------------- combinational TBs

fn vlog_comb_tb(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    vectors: &[Vec<u64>],
    expected: &[Vec<u64>],
) -> String {
    let mut s = String::from("module tb;\n");
    for p in inputs {
        s.push_str(&format!("  reg {}{};\n", p.vlog_range(), p.name));
    }
    for p in outputs {
        s.push_str(&format!("  wire {}{};\n", p.vlog_range(), p.name));
    }
    s.push_str(&format!("  {name} dut("));
    let conns: Vec<String> = inputs
        .iter()
        .chain(outputs)
        .map(|p| format!(".{}({})", p.name, p.name))
        .collect();
    s.push_str(&conns.join(", "));
    s.push_str(");\n  integer errors;\n  initial begin\n    errors = 0;\n");
    let mut case_no = 1u32;
    for (vec, exp) in vectors.iter().zip(expected) {
        for (p, v) in inputs.iter().zip(vec) {
            s.push_str(&format!("    {} = {};\n", p.name, vlog_lit(p.width, *v)));
        }
        s.push_str("    #10;\n");
        for (p, e) in outputs.iter().zip(exp) {
            let lit = vlog_lit(p.width, *e);
            s.push_str(&format!(
                "    if ({} !== {}) begin $error(\"Test Case {} Failed: {} should be {}, got %b\", {}); errors = errors + 1; end\n",
                p.name, lit, case_no, p.name, lit, p.name
            ));
            case_no += 1;
        }
    }
    s.push_str(
        "    if (errors == 0) $display(\"All tests passed successfully!\");\n\
         \x20   else $display(\"%0d test case(s) failed.\", errors);\n\
         \x20   $finish;\n  end\nendmodule\n",
    );
    s
}

fn vhdl_comb_tb(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    vectors: &[Vec<u64>],
    expected: &[Vec<u64>],
) -> String {
    let mut s = String::from(
        "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n\
         entity tb is\nend entity;\n\narchitecture sim of tb is\n",
    );
    for p in inputs.iter().chain(outputs) {
        s.push_str(&format!("  signal {} : {};\n", p.name, p.vhdl_type()));
    }
    s.push_str(&format!("begin\n  dut: entity work.{name} port map ("));
    let conns: Vec<String> = inputs
        .iter()
        .chain(outputs)
        .map(|p| format!("{} => {}", p.name, p.name))
        .collect();
    s.push_str(&conns.join(", "));
    s.push_str(");\n\n  stim: process\n  begin\n");
    let mut case_no = 1u32;
    for (vec, exp) in vectors.iter().zip(expected) {
        for (p, v) in inputs.iter().zip(vec) {
            s.push_str(&format!("    {} <= {};\n", p.name, vhdl_lit(p.width, *v)));
        }
        s.push_str("    wait for 10 ns;\n");
        for (p, e) in outputs.iter().zip(exp) {
            let lit = vhdl_lit(p.width, *e);
            // Strip quotes so the literal can sit inside the report string.
            let shown = lit.replace('"', "");
            s.push_str(&format!(
                "    assert {} = {} report \"Test Case {} Failed: {} should be {}\" severity error;\n",
                p.name, lit, case_no, p.name, shown
            ));
            case_no += 1;
        }
    }
    s.push_str(
        "    report \"All tests passed successfully!\" severity note;\n    wait;\n\
         \x20 end process;\nend architecture;\n",
    );
    s
}

// --------------------------------------------------- sequential TBs

fn vlog_seq_tb(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    stimulus: &[Vec<u64>],
    expected: &[Option<Vec<u64>>],
) -> String {
    let mut s = String::from("module tb;\n  reg clk;\n");
    for p in inputs {
        s.push_str(&format!("  reg {}{};\n", p.vlog_range(), p.name));
    }
    for p in outputs {
        s.push_str(&format!("  wire {}{};\n", p.vlog_range(), p.name));
    }
    s.push_str(&format!("  {name} dut(.clk(clk), "));
    let conns: Vec<String> = inputs
        .iter()
        .chain(outputs)
        .map(|p| format!(".{}({})", p.name, p.name))
        .collect();
    s.push_str(&conns.join(", "));
    s.push_str(");\n  integer errors;\n  initial begin\n    errors = 0;\n    clk = 0;\n");
    let mut case_no = 1u32;
    for (vec, exp) in stimulus.iter().zip(expected) {
        for (p, v) in inputs.iter().zip(vec) {
            s.push_str(&format!("    {} = {};\n", p.name, vlog_lit(p.width, *v)));
        }
        s.push_str("    #4; clk = 1;\n    #2;\n");
        if let Some(exp) = exp {
            for (p, e) in outputs.iter().zip(exp) {
                let lit = vlog_lit(p.width, *e);
                s.push_str(&format!(
                    "    if ({} !== {}) begin $error(\"Test Case {} Failed: {} should be {}, got %b\", {}); errors = errors + 1; end\n",
                    p.name, lit, case_no, p.name, lit, p.name
                ));
                case_no += 1;
            }
        }
        // The extra #1 separates next-cycle input changes from the
        // falling edge, so a wrong-clock-edge fault samples stale inputs
        // and is caught by the checks.
        s.push_str("    #3; clk = 0;\n    #1;\n");
    }
    s.push_str(
        "    if (errors == 0) $display(\"All tests passed successfully!\");\n\
         \x20   else $display(\"%0d test case(s) failed.\", errors);\n\
         \x20   $finish;\n  end\nendmodule\n",
    );
    s
}

fn vhdl_seq_tb(
    name: &str,
    inputs: &[Port],
    outputs: &[Port],
    stimulus: &[Vec<u64>],
    expected: &[Option<Vec<u64>>],
) -> String {
    let mut s = String::from(
        "library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n\
         entity tb is\nend entity;\n\narchitecture sim of tb is\n  signal clk : std_logic := '0';\n",
    );
    for p in inputs.iter().chain(outputs) {
        s.push_str(&format!("  signal {} : {};\n", p.name, p.vhdl_type()));
    }
    s.push_str(&format!(
        "begin\n  dut: entity work.{name} port map (clk => clk, "
    ));
    let conns: Vec<String> = inputs
        .iter()
        .chain(outputs)
        .map(|p| format!("{} => {}", p.name, p.name))
        .collect();
    s.push_str(&conns.join(", "));
    s.push_str(");\n\n  stim: process\n  begin\n");
    let mut case_no = 1u32;
    for (vec, exp) in stimulus.iter().zip(expected) {
        for (p, v) in inputs.iter().zip(vec) {
            s.push_str(&format!("    {} <= {};\n", p.name, vhdl_lit(p.width, *v)));
        }
        s.push_str("    wait for 4 ns;\n    clk <= '1';\n    wait for 2 ns;\n");
        if let Some(exp) = exp {
            for (p, e) in outputs.iter().zip(exp) {
                let lit = vhdl_lit(p.width, *e);
                let shown = lit.replace('"', "");
                s.push_str(&format!(
                    "    assert {} = {} report \"Test Case {} Failed: {} should be {}\" severity error;\n",
                    p.name, lit, case_no, p.name, shown
                ));
                case_no += 1;
            }
        }
        s.push_str("    wait for 3 ns;\n    clk <= '0';\n    wait for 1 ns;\n");
    }
    s.push_str(
        "    report \"All tests passed successfully!\" severity note;\n    wait;\n\
         \x20 end process;\nend architecture;\n",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_comb() -> CombSpec {
        CombSpec {
            name: "andgate".into(),
            family: Family::Gates,
            difficulty: Difficulty::Easy,
            description: "y is the logical AND of a and b.".into(),
            inputs: vec![Port::new("a", 1), Port::new("b", 1)],
            outputs: vec![Port::new("y", 1)],
            vlog_body: "  assign y = a & b;\n".into(),
            vlog_out_reg: false,
            vhdl_body: "  y <= a and b;\n".into(),
            vhdl_decls: String::new(),
            eval: Box::new(|v| vec![v[0] & v[1]]),
        }
    }

    #[test]
    fn comb_problem_generates_exhaustive_tb() {
        let p = comb_problem(tiny_comb());
        // 2 inputs → 4 vectors → 4 checks in each testbench.
        assert_eq!(p.verilog.tb.matches("Test Case").count(), 4);
        assert_eq!(p.vhdl.tb.matches("Test Case").count(), 4);
        assert!(p.verilog.dut.contains("module andgate("));
        assert!(p.vhdl.dut.contains("entity andgate is"));
        assert!(p.spec.contains("input a (1 bit)"));
    }

    #[test]
    fn wide_inputs_use_sampled_vectors() {
        let spec = CombSpec {
            name: "wide".into(),
            family: Family::Adder,
            difficulty: Difficulty::Medium,
            description: "sum".into(),
            inputs: vec![Port::new("a", 8), Port::new("b", 8)],
            outputs: vec![Port::new("y", 8)],
            vlog_body: "  assign y = a + b;\n".into(),
            vlog_out_reg: false,
            vhdl_body: "  y <= std_logic_vector(unsigned(a) + unsigned(b));\n".into(),
            vhdl_decls: String::new(),
            eval: Box::new(|v| vec![(v[0] + v[1]) & 0xFF]),
        };
        let p = comb_problem(spec);
        assert_eq!(p.verilog.tb.matches("Test Case").count(), 64);
    }

    #[test]
    fn seq_problem_timeline_checks() {
        let spec = SeqSpec {
            name: "dff".into(),
            family: Family::ShiftRegister,
            difficulty: Difficulty::Medium,
            description: "q follows d one cycle later.".into(),
            inputs: vec![Port::new("d", 1)],
            outputs: vec![Port::new("q", 1)],
            vlog_body: "  always @(posedge clk) q <= d;\n".into(),
            vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      q <= d;\n    end if;\n  end process;\n".into(),
            vhdl_decls: String::new(),
            stimulus: vec![vec![1], vec![0], vec![1]],
            expected: vec![Some(vec![1]), Some(vec![0]), Some(vec![1])],
        };
        let p = seq_problem(spec);
        assert_eq!(p.verilog.tb.matches("Test Case").count(), 3);
        assert!(p.verilog.dut.contains("input wire clk"));
        assert!(p.vhdl.tb.contains("clk <= '1';"));
        assert!(p.spec.contains("rising edge"));
    }

    #[test]
    #[should_panic(expected = "timelines must align")]
    fn seq_timeline_mismatch_panics() {
        let spec = SeqSpec {
            name: "bad".into(),
            family: Family::Counter,
            difficulty: Difficulty::Easy,
            description: String::new(),
            inputs: vec![],
            outputs: vec![Port::new("q", 1)],
            vlog_body: String::new(),
            vhdl_body: String::new(),
            vhdl_decls: String::new(),
            stimulus: vec![vec![]],
            expected: vec![],
        };
        let _ = seq_problem(spec);
    }
}
