//! Simulation-kernel microbenchmarks.
//!
//! Two sim-bound workloads exercise the event kernel's hot paths:
//!
//! * `clkdiv_osc` — an oscillating clock driving a 32-bit divider chain
//!   with ternary/compare feedback: every value fits one 64-bit word,
//!   so this measures the inline-`LogicVec` + compiled-bytecode steady
//!   state (zero allocations per activation).
//! * `wide_adder` — a 256-bit accumulator pipeline, measuring the
//!   spilled multi-word arithmetic paths.
//!
//! Run with `cargo bench -p aivril-sim --bench kernel`. Environment
//! switches (see the vendored criterion stand-in): `CRITERION_QUICK=1`
//! for a fast smoke run, `CRITERION_JSON=<path>` for a machine-readable
//! report. Additionally `AIVRIL_BENCH_RESULTS=<path>` writes each
//! workload's *functional* outcome (log lines, end time, instruction
//! count) to `<path>` before timing — CI diffs that artifact against
//! `crates/sim/benches/expected_results.txt` to prove optimisations
//! changed no observable output. `BENCH_SIM.json` at the repo root
//! records the tracked before/after timings.

use aivril_hdl::ir::{
    BinaryOp, Design, Expr, Instr, LValue, Net, NetKind, Process, ProcessKind, SysTaskKind,
    Trigger, UnaryOp,
};
use aivril_hdl::vec::LogicVec;
use aivril_sim::{KernelPerf, SimConfig, SimResult, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn net(d: &mut Design, name: &str, width: u32, init: u64) -> aivril_hdl::ir::NetId {
    d.add_net(Net {
        name: name.into(),
        width,
        kind: NetKind::Reg,
        init: Some(LogicVec::from_u64(width, init)),
    })
}

fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// `forever #half clk = ~clk;` plus `#run_for; $display(...); $finish`.
fn add_clock_and_finish(
    d: &mut Design,
    clk: aivril_hdl::ir::NetId,
    half_period: u64,
    run_for: u64,
    summary_format: &str,
    summary_args: Vec<Expr>,
) {
    d.add_process(Process {
        name: "clkgen".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::Delay {
                amount: Expr::constant(64, half_period),
            },
            Instr::BlockingAssign {
                lvalue: LValue::Net(clk),
                expr: Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(Expr::Net(clk)),
                },
            },
            Instr::Jump(0),
        ],
    });
    d.add_process(Process {
        name: "timeout".into(),
        kind: ProcessKind::Initial,
        body: vec![
            Instr::Delay {
                amount: Expr::constant(64, run_for),
            },
            Instr::SysCall {
                kind: SysTaskKind::Display,
                format: Some(summary_format.into()),
                args: summary_args,
            },
            Instr::SysCall {
                kind: SysTaskKind::Finish,
                format: None,
                args: vec![],
            },
            Instr::Halt,
        ],
    });
}

/// Oscillating clock divider: every net is <= 64 bits wide, so the whole
/// steady state should run allocation-free through the inline-word
/// representation and compiled bytecode.
fn clkdiv_design() -> Design {
    let mut d = Design::new("clkdiv_osc");
    let clk = net(&mut d, "clk", 1, 0);
    let div = net(&mut d, "div", 32, 0);
    let q = net(&mut d, "q", 16, 0);
    let tap = net(&mut d, "tap", 1, 0);
    // always @(posedge clk) begin
    //   div <= div + 1;
    //   q <= ((div & 15) == 0) ? q + 3 : q ^ (div >> 4);
    // end
    d.add_process(Process {
        name: "divider".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::WaitEvent {
                triggers: vec![Trigger::Posedge(clk)],
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(div),
                expr: binary(BinaryOp::Add, Expr::Net(div), Expr::constant(32, 1)),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(q),
                expr: Expr::Ternary {
                    cond: Box::new(binary(
                        BinaryOp::Eq,
                        binary(BinaryOp::And, Expr::Net(div), Expr::constant(32, 15)),
                        Expr::constant(32, 0),
                    )),
                    then: Box::new(binary(BinaryOp::Add, Expr::Net(q), Expr::constant(16, 3))),
                    els: Box::new(binary(
                        BinaryOp::Xor,
                        Expr::Net(q),
                        binary(BinaryOp::Shr, Expr::Net(div), Expr::constant(32, 4)),
                    )),
                },
            },
            Instr::Jump(0),
        ],
    });
    // assign tap = div[7];
    d.add_continuous_assign(
        LValue::Net(tap),
        Expr::Range {
            net: div,
            msb: 7,
            lsb: 7,
        },
    );
    add_clock_and_finish(
        &mut d,
        clk,
        5,
        100_000,
        "div=%h q=%h tap=%b",
        vec![Expr::Net(div), Expr::Net(q), Expr::Net(tap)],
    );
    d
}

/// Wide-adder testbench: a 256-bit accumulator pipeline exercising the
/// spilled (multi-word) arithmetic, bitwise and shift paths.
fn wide_adder_design() -> Design {
    let mut d = Design::new("wide_adder");
    let clk = net(&mut d, "clk", 1, 0);
    let a = net(&mut d, "a", 256, 0x0123_4567_89ab_cdef);
    let b = net(&mut d, "b", 256, 0xfedc_ba98_7654_3210);
    let acc = net(&mut d, "acc", 256, 1);
    // always @(posedge clk) begin
    //   acc <= acc + (a ^ b) + (acc >> 1);
    //   a <= a + 257;
    //   b <= b - 3;
    // end
    d.add_process(Process {
        name: "adder".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::WaitEvent {
                triggers: vec![Trigger::Posedge(clk)],
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(acc),
                expr: binary(
                    BinaryOp::Add,
                    binary(
                        BinaryOp::Add,
                        Expr::Net(acc),
                        binary(BinaryOp::Xor, Expr::Net(a), Expr::Net(b)),
                    ),
                    binary(BinaryOp::Shr, Expr::Net(acc), Expr::constant(32, 1)),
                ),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(a),
                expr: binary(BinaryOp::Add, Expr::Net(a), Expr::constant(256, 257)),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(b),
                expr: binary(BinaryOp::Sub, Expr::Net(b), Expr::constant(256, 3)),
            },
            Instr::Jump(0),
        ],
    });
    add_clock_and_finish(
        &mut d,
        clk,
        5,
        20_000,
        "acc=%h a=%h b=%h",
        vec![Expr::Net(acc), Expr::Net(a), Expr::Net(b)],
    );
    d
}

fn run_once(design: &Design) -> SimResult {
    Simulator::new(design, SimConfig::default()).run()
}

fn run_with_perf(design: &Design) -> (SimResult, KernelPerf) {
    let mut sim = Simulator::new(design, SimConfig::default());
    let result = sim.run();
    let perf = sim.perf();
    (result, perf)
}

/// Renders one workload's functional outcome — everything observable
/// about the run except wall-clock time. Byte-stable across kernel
/// optimisations by construction. The `eval_allocs` line pins the
/// zero-steady-state-allocation claim: 0 for the all-narrow `clkdiv`
/// workload, a fixed positive count for the spilled 256-bit one.
fn result_artifact(name: &str, result: &SimResult, perf: &KernelPerf) -> String {
    let mut out = String::new();
    out.push_str(&format!("bench: {name}\n"));
    out.push_str(&format!("end_time: {}\n", result.end_time));
    out.push_str(&format!("finished: {}\n", result.finished));
    out.push_str(&format!("starved: {}\n", result.starved));
    out.push_str(&format!("errors: {}\n", result.error_count));
    out.push_str(&format!("limit: {:?}\n", result.limit_hit));
    out.push_str(&format!("instructions: {}\n", result.instructions_executed));
    out.push_str(&format!("eval_allocs: {}\n", perf.eval_allocs));
    for line in &result.lines {
        out.push_str(&format!("log[{}]: {}\n", line.time, line.text));
    }
    out.push_str("---\n");
    out
}

/// When `AIVRIL_BENCH_RESULTS` is set, runs each workload once and
/// writes the combined functional artifact there.
fn maybe_write_results() {
    let Ok(path) = std::env::var("AIVRIL_BENCH_RESULTS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut combined = String::new();
    for (name, design) in [
        ("clkdiv_osc", clkdiv_design()),
        ("wide_adder", wide_adder_design()),
    ] {
        let (result, perf) = run_with_perf(&design);
        combined.push_str(&result_artifact(name, &result, &perf));
    }
    std::fs::write(&path, combined).expect("write AIVRIL_BENCH_RESULTS artifact");
    eprintln!("[bench] wrote kernel result artifact to {path}");
}

fn bench_clkdiv(c: &mut Criterion) {
    let design = clkdiv_design();
    let (result, perf) = run_with_perf(&design);
    assert!(result.finished, "clkdiv bench design must finish cleanly");
    assert_eq!(
        perf.eval_allocs, 0,
        "every clkdiv net fits one word: the compiled steady state must \
         be allocation-free"
    );
    c.bench_function("sim_kernel/clkdiv_osc", |bencher| {
        bencher.iter(|| run_once(&design))
    });
}

fn bench_wide_adder(c: &mut Criterion) {
    let design = wide_adder_design();
    let (result, perf) = run_with_perf(&design);
    assert!(
        result.finished,
        "wide-adder bench design must finish cleanly"
    );
    assert!(
        perf.eval_allocs > 0,
        "the 256-bit workload must exercise the spilled paths"
    );
    c.bench_function("sim_kernel/wide_adder", |bencher| {
        bencher.iter(|| run_once(&design))
    });
}

fn bench_entry(c: &mut Criterion) {
    maybe_write_results();
    bench_clkdiv(c);
    bench_wide_adder(c);
}

criterion_group!(kernel, bench_entry);
criterion_main!(kernel);
