//! The Verification Agent: turns simulation logs into corrective
//! prompts.
//!
//! Per Sec. 3.3, it runs the design against the *frozen* testbench,
//! extracts the discrepancies between expected and observed behaviour
//! ("Test Case 2 Failed: shift_ena should be 0 after 4 clock cycles"),
//! and guides the Code Agent until every test passes or the iteration
//! budget is exhausted. The testbench is never edited in this loop,
//! keeping every RTL revision evaluated against the same yardstick.

use aivril_eda::SimReport;

/// The Verification Agent. Stateless.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerificationAgent;

impl VerificationAgent {
    /// Creates the agent.
    #[must_use]
    pub fn new() -> VerificationAgent {
        VerificationAgent
    }

    /// `true` when the report shows full functional success.
    #[must_use]
    pub fn all_tests_passed(&self, report: &SimReport) -> bool {
        report.passed
    }

    /// Builds the corrective prompt for the Code Agent. Always contains
    /// the phrase `failing test case` (the protocol marker) plus the
    /// extracted failures.
    #[must_use]
    pub fn corrective_prompt(&self, report: &SimReport) -> String {
        let mut p = format!(
            "The simulation reported {} failing test case(s) against the \
             reference testbench. Analyse each failure, correct the RTL \
             logic, and return the complete fixed file. Do not change the \
             testbench.\n\n",
            report.failures.len().max(1)
        );
        for f in report.failures.iter().take(8) {
            p.push_str(&format!("- {}\n", f.message));
        }
        if report.failures.len() > 8 {
            p.push_str(&format!("(and {} more)\n", report.failures.len() - 8));
        }
        if report.failures.is_empty() {
            // Ran to a limit or never finished: report what the log shows.
            let tail: Vec<&str> = report.log.lines().rev().take(5).collect();
            p.push_str("The simulation did not complete normally. Last log lines:\n");
            for line in tail.iter().rev() {
                p.push_str(&format!("  {line}\n"));
            }
        }
        if let Some(diverged) = &report.diverged {
            // A watchdog abort carries a structured diagnostic; quote it
            // so the model learns *why* the run was cut short instead of
            // parsing the raw `ERROR: [XSIM 43-3225]` line.
            p.push('\n');
            p.push_str(&diverged.describe());
            p.push('\n');
        }
        p
    }

    /// Low-detail variant (failure count only) for the prompt-detail
    /// ablation.
    #[must_use]
    pub fn corrective_prompt_brief(&self, report: &SimReport) -> String {
        format!(
            "The simulation reported {} failing test case(s). Fix the RTL.\n",
            report.failures.len().max(1)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};

    const DUT_BAD: &str = "module inv(input a, output y);\n  assign y = a;\nendmodule\n";
    const TB: &str = "module tb;\n  reg a; wire y;\n  inv dut(.a(a), .y(y));\n\
        initial begin\n    a = 0; #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n\
        else $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";

    #[test]
    fn corrective_prompt_lists_failures_with_marker() {
        let tools = XsimToolSuite::new();
        let report = tools.simulate(
            &[HdlFile::new("inv.v", DUT_BAD), HdlFile::new("tb.v", TB)],
            Some("tb"),
        );
        let agent = VerificationAgent::new();
        assert!(!agent.all_tests_passed(&report));
        let prompt = agent.corrective_prompt(&report);
        assert!(prompt.contains("failing test case"), "{prompt}");
        assert!(prompt.contains("Test Case 1 Failed"), "{prompt}");
        assert!(prompt.contains("Do not change the testbench"));
    }

    #[test]
    fn diverged_runs_quote_the_watchdog_diagnostic() {
        // Zero-delay oscillation: the delta-cycle watchdog aborts and the
        // corrective prompt must carry the structured explanation.
        let osc = "module tb;\n  wire a;\n  assign a = (a === 1'b0) ? 1'b1 : 1'b0;\nendmodule\n";
        let tools = XsimToolSuite::new();
        let report = tools.simulate(&[HdlFile::new("tb.v", osc)], Some("tb"));
        assert!(report.diverged.is_some(), "log:\n{}", report.log);
        let agent = VerificationAgent::new();
        let prompt = agent.corrective_prompt(&report);
        assert!(prompt.contains("did not settle"), "{prompt}");
        assert!(prompt.contains("combinational feedback"), "{prompt}");
    }

    #[test]
    fn passing_report_is_recognised() {
        let good = "module inv(input a, output y);\n  assign y = ~a;\nendmodule\n";
        let tools = XsimToolSuite::new();
        let report = tools.simulate(
            &[HdlFile::new("inv.v", good), HdlFile::new("tb.v", TB)],
            Some("tb"),
        );
        let agent = VerificationAgent::new();
        assert!(agent.all_tests_passed(&report));
    }
}
