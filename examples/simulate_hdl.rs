//! Using the EDA substrate standalone: compile and simulate hand-written
//! Verilog and VHDL with the `xvlog`/`xsim`-style tool suite — no agents
//! or models involved.
//!
//! Run with:
//! ```text
//! cargo run --release -p aivril-bench --example simulate_hdl
//! ```

use aivril_eda::{HdlFile, ToolSuite, XsimToolSuite};

const TRAFFIC_V: &str = "module traffic(
  input wire clk,
  input wire rst,
  output reg [1:0] light
);
  localparam GREEN = 2'd0, YELLOW = 2'd1, RED = 2'd2;
  reg [2:0] timer;
  always @(posedge clk) begin
    if (rst) begin
      light <= GREEN;
      timer <= 0;
    end else begin
      case (light)
        GREEN: begin
          if (timer == 3'd4) begin light <= YELLOW; timer <= 0; end
          else timer <= timer + 1;
        end
        YELLOW: begin
          if (timer == 3'd1) begin light <= RED; timer <= 0; end
          else timer <= timer + 1;
        end
        default: begin
          if (timer == 3'd3) begin light <= GREEN; timer <= 0; end
          else timer <= timer + 1;
        end
      endcase
    end
  end
endmodule
";

const TRAFFIC_TB: &str = "module tb;
  reg clk = 0;
  reg rst = 1;
  wire [1:0] light;
  traffic dut(.clk(clk), .rst(rst), .light(light));
  always #5 clk = ~clk;
  integer cycle;
  initial begin
    #12 rst = 0;
    for (cycle = 0; cycle < 20; cycle = cycle + 1) begin
      @(posedge clk);
      #1;
      $display(\"cycle %0d: light=%0d\", cycle, light);
    end
    if (light !== 2'd2) $error(\"Test Case 1 Failed: expected RED at cycle 20\");
    else $display(\"All tests passed successfully!\");
    $finish;
  end
endmodule
";

const BLINK_VHD: &str = "library ieee;
use ieee.std_logic_1164.all;

entity blink is
  port (clk : in std_logic; led : out std_logic);
end entity;

architecture rtl of blink is
  signal state : std_logic := '0';
begin
  process (clk)
  begin
    if rising_edge(clk) then
      state <= not state;
    end if;
  end process;
  led <= state;
end architecture;
";

const BLINK_TB: &str = "entity tb is
end entity;

architecture sim of tb is
  signal clk : std_logic := '0';
  signal led : std_logic;
begin
  dut: entity work.blink port map (clk => clk, led => led);
  process
  begin
    wait for 5 ns; clk <= '1'; wait for 1 ns;
    assert led = '1' report \"Test Case 1 Failed: led should toggle high\" severity error;
    wait for 4 ns; clk <= '0';
    wait for 5 ns; clk <= '1'; wait for 1 ns;
    assert led = '0' report \"Test Case 2 Failed: led should toggle low\" severity error;
    report \"All tests passed successfully!\";
    wait;
  end process;
end architecture;
";

fn main() {
    let tools = XsimToolSuite::new();

    println!("=== Verilog: traffic-light controller ===");
    let report = tools.simulate(
        &[
            HdlFile::new("traffic.v", TRAFFIC_V),
            HdlFile::new("tb.v", TRAFFIC_TB),
        ],
        Some("tb"),
    );
    println!("{}", report.log);
    println!(
        "passed: {}   modeled tool latency: {:.2}s\n",
        report.passed, report.modeled_latency
    );

    println!("=== VHDL: clock divider ===");
    let report = tools.simulate(
        &[
            HdlFile::new("blink.vhd", BLINK_VHD),
            HdlFile::new("tb.vhd", BLINK_TB),
        ],
        Some("tb"),
    );
    println!("{}", report.log);
    println!(
        "passed: {}   modeled tool latency: {:.2}s",
        report.passed, report.modeled_latency
    );

    println!("=== Waveform dump (VCD) of the VHDL run ===");
    let (_, vcd) = tools.simulate_with_waves(
        &[
            HdlFile::new("blink.vhd", BLINK_VHD),
            HdlFile::new("tb.vhd", BLINK_TB),
        ],
        Some("tb"),
    );
    let vcd = vcd.expect("compiled run yields waves");
    for line in vcd.lines().take(20) {
        println!("{line}");
    }
    println!(
        "... ({} lines total; load into GTKWave)\n",
        vcd.lines().count()
    );

    println!("=== And a broken file, to see the Vivado-style error log ===");
    let broken = "module oops(input a output y);\n  assign y = ~a\nendmodule\n";
    let report = tools.compile(&[HdlFile::new("oops.v", broken)]);
    println!("{}", report.log);
}
