//! The user side of the clarification dialogue.
//!
//! Sec. 3.1: *"If the prompt lacks sufficient detail, the Code Agent
//! initiates an interactive dialogue with the user to gather further
//! information."* The pipeline models the user as a [`UserProxy`]; in
//! batch evaluation it is a [`StaticUser`] holding the full task
//! description, while an interactive frontend would forward the
//! question to a human.

/// Answers the Code Agent's clarification questions.
pub trait UserProxy {
    /// Responds to `question` with additional specification detail.
    /// An empty answer means no more information is available.
    fn clarify(&self, question: &str) -> String;
}

/// A user who never answers — the pipeline proceeds with whatever the
/// original prompt contained.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoClarification;

impl UserProxy for NoClarification {
    fn clarify(&self, _question: &str) -> String {
        String::new()
    }
}

/// A scripted user holding the complete specification, returned on the
/// first (and any) clarification request — the batch-evaluation stand-in
/// for the interactive dialogue.
#[derive(Debug, Clone)]
pub struct StaticUser {
    /// The full specification to supply on request.
    pub full_spec: String,
}

impl StaticUser {
    /// Creates a scripted user.
    #[must_use]
    pub fn new(full_spec: impl Into<String>) -> StaticUser {
        StaticUser {
            full_spec: full_spec.into(),
        }
    }
}

impl UserProxy for StaticUser {
    fn clarify(&self, _question: &str) -> String {
        self.full_spec.clone()
    }
}

/// Heuristic sufficiency check: a workable RTL prompt must carry the
/// task identification header and name the required module.
#[must_use]
pub fn spec_is_sufficient(spec: &str, module_name: &str) -> bool {
    spec.contains("Design task:") && spec.contains(module_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sufficiency_heuristic() {
        assert!(spec_is_sufficient(
            "Design task: t.\nImplement `adder` ...",
            "adder"
        ));
        assert!(!spec_is_sufficient("make me an adder please", "adder"));
        assert!(!spec_is_sufficient("Design task: t.\nsomething", "adder"));
    }

    #[test]
    fn proxies_answer() {
        assert_eq!(NoClarification.clarify("?"), "");
        assert_eq!(StaticUser::new("full").clarify("?"), "full");
    }
}
