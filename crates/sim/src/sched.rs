//! Indexed future-event scheduling: a timing-wheel / binary-heap hybrid.
//!
//! The kernel used to keep its pending wake-ups in a
//! `BTreeMap<u64, Vec<(process, generation)>>`. Every `#delay` paid a
//! tree insert and every quiescent step paid a tree lookup plus a
//! node removal — and the per-time `Vec` values were allocated and
//! dropped once per distinct wake time. [`FutureQueue`] replaces that
//! with:
//!
//! * a **timing wheel** of [`WHEEL_SIZE`] buckets for events within
//!   [`WHEEL_SIZE`] ticks of the current time (the overwhelmingly
//!   common case: clock half-periods), giving O(1) amortised insert
//!   and in-place bucket reuse with zero steady-state allocation;
//! * a **binary heap** ordered by `(time, seq)` for far-future events
//!   (timeouts, watchdogs);
//! * a global monotonically increasing sequence number so same-time
//!   events pop in exactly the order they were scheduled — the order
//!   the old `BTreeMap`'s per-time `Vec` preserved. Determinism of
//!   every downstream artifact depends on this.
//!
//! The distinct-pending-time count (the old `future.len()`) feeds the
//! `sim_event_queue_depth` histogram, so [`FutureQueue::distinct_times`]
//! tracks it exactly via a `HashSet<u64>`; only its `len()` is ever
//! observed, so the set's iteration order cannot leak anywhere.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Wheel span in ticks. Events scheduled at most this far ahead of the
/// current time go to a wheel bucket; everything else goes to the heap.
const WHEEL_SIZE: u64 = 64;

/// One pending wake-up: absolute time, global sequence, process,
/// process generation at scheduling time.
type Entry = (u64, u64, usize, u64);

/// The simulator's future-event queue. See the module docs for the
/// wheel/heap split and the determinism contract.
#[derive(Debug)]
pub(crate) struct FutureQueue {
    wheel: Vec<Vec<Entry>>,
    /// Total entries currently stored in wheel buckets, so
    /// [`FutureQueue::next_time`] can skip the bucket scan entirely
    /// when the wheel is empty.
    wheel_len: usize,
    heap: BinaryHeap<Reverse<Entry>>,
    /// Times with at least one pending (possibly stale) entry.
    times: HashSet<u64>,
    seq: u64,
    /// Reused merge buffers for [`FutureQueue::pop_at`]: `(seq, pid,
    /// generation)` from the wheel bucket and from the heap.
    merge_wheel: Vec<(u64, usize, u64)>,
    merge_heap: Vec<(u64, usize, u64)>,
}

impl FutureQueue {
    pub(crate) fn new() -> FutureQueue {
        FutureQueue {
            wheel: (0..WHEEL_SIZE).map(|_| Vec::new()).collect(),
            wheel_len: 0,
            heap: BinaryHeap::new(),
            times: HashSet::new(),
            seq: 0,
            merge_wheel: Vec::new(),
            merge_heap: Vec::new(),
        }
    }

    /// Number of distinct pending wake times — the exact quantity the
    /// old `BTreeMap::len` reported for the queue-depth histogram.
    pub(crate) fn distinct_times(&self) -> usize {
        self.times.len()
    }

    /// Schedules `(pid, generation)` to wake at absolute `time`.
    /// `now` is the current simulation time; `time` must be `> now`
    /// (zero delays go to the inactive region, not here).
    pub(crate) fn schedule(&mut self, now: u64, time: u64, pid: usize, generation: u64) {
        debug_assert!(time > now, "future events are strictly in the future");
        let seq = self.seq;
        self.seq += 1;
        self.times.insert(time);
        if time - now <= WHEEL_SIZE {
            self.wheel[(time % WHEEL_SIZE) as usize].push((time, seq, pid, generation));
            self.wheel_len += 1;
        } else {
            self.heap.push(Reverse((time, seq, pid, generation)));
        }
    }

    /// Earliest pending wake time, or `None` when the queue is empty.
    /// Because simulation time only ever advances *to* this minimum,
    /// every stored entry satisfies `entry.time > now`, and every wheel
    /// entry satisfies
    /// `entry.time <= insertion_now + WHEEL_SIZE <= now + WHEEL_SIZE`,
    /// so scanning the next [`WHEEL_SIZE`] ticks covers the whole wheel.
    pub(crate) fn next_time(&self, now: u64) -> Option<u64> {
        let heap_min = self.heap.peek().map(|Reverse((t, _, _, _))| *t);
        let mut wheel_min = None;
        if self.wheel_len > 0 {
            for off in 1..=WHEEL_SIZE {
                let Some(t) = now.checked_add(off) else {
                    break;
                };
                let bucket = &self.wheel[(t % WHEEL_SIZE) as usize];
                if bucket.iter().any(|e| e.0 == t) {
                    wheel_min = Some(t);
                    break;
                }
            }
        }
        match (wheel_min, heap_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes every entry scheduled for exactly `time` and appends
    /// them to `out` as `(pid, generation)` in scheduling order.
    pub(crate) fn pop_at(&mut self, time: u64, out: &mut Vec<(usize, u64)>) {
        self.times.remove(&time);
        let from_wheel = &mut self.merge_wheel;
        from_wheel.clear();
        let bucket = &mut self.wheel[(time % WHEEL_SIZE) as usize];
        bucket.retain(|&(t, seq, pid, generation)| {
            if t == time {
                from_wheel.push((seq, pid, generation));
                false
            } else {
                true
            }
        });
        self.wheel_len -= from_wheel.len();
        let from_heap = &mut self.merge_heap;
        from_heap.clear();
        while let Some(&Reverse((t, _, _, _))) = self.heap.peek() {
            if t != time {
                break;
            }
            let Reverse((_, seq, pid, generation)) = self.heap.pop().expect("peeked");
            from_heap.push((seq, pid, generation));
        }
        // Bucket entries arrive in push (= seq) order and heap pops are
        // (time, seq)-sorted; merge the two runs by seq to reproduce the
        // old per-time Vec's push order exactly.
        let (mut i, mut j) = (0, 0);
        while i < from_wheel.len() && j < from_heap.len() {
            if from_wheel[i].0 < from_heap[j].0 {
                out.push((from_wheel[i].1, from_wheel[i].2));
                i += 1;
            } else {
                out.push((from_heap[j].1, from_heap[j].2));
                j += 1;
            }
        }
        for &(_, pid, generation) in &from_wheel[i..] {
            out.push((pid, generation));
        }
        for &(_, pid, generation) in &from_heap[j..] {
            out.push((pid, generation));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut FutureQueue, now: u64) -> Vec<(u64, Vec<(usize, u64)>)> {
        let mut now = now;
        let mut out = Vec::new();
        while let Some(t) = q.next_time(now) {
            let mut batch = Vec::new();
            q.pop_at(t, &mut batch);
            out.push((t, batch));
            now = t;
        }
        out
    }

    #[test]
    fn pops_in_time_then_schedule_order() {
        let mut q = FutureQueue::new();
        q.schedule(0, 10, 1, 0); // wheel
        q.schedule(0, 5, 2, 0); // wheel
        q.schedule(0, 10, 3, 0); // wheel, same time as first
        q.schedule(0, 500, 4, 0); // heap
        q.schedule(0, 10, 5, 0); // wheel again
        assert_eq!(q.distinct_times(), 3);
        let batches = drain(&mut q, 0);
        assert_eq!(
            batches,
            vec![
                (5, vec![(2, 0)]),
                (10, vec![(1, 0), (3, 0), (5, 0)]),
                (500, vec![(4, 0)]),
            ]
        );
        assert_eq!(q.distinct_times(), 0);
    }

    #[test]
    fn same_time_merges_wheel_and_heap_by_seq() {
        let mut q = FutureQueue::new();
        // Seq 0 lands in the heap (far future), seq 1 in the wheel once
        // time has advanced close enough, seq 2 back in the... there is
        // no way back: so interleave by scheduling around the boundary.
        q.schedule(0, 100, 7, 0); // heap (100 - 0 > 64)
        q.schedule(50, 100, 8, 0); // wheel (100 - 50 <= 64)
        q.schedule(50, 100, 9, 1); // wheel
        let mut batch = Vec::new();
        assert_eq!(q.next_time(50), Some(100));
        q.pop_at(100, &mut batch);
        assert_eq!(
            batch,
            vec![(7, 0), (8, 0), (9, 1)],
            "seq order across stores"
        );
    }

    #[test]
    fn wheel_wraparound_keeps_times_apart() {
        let mut q = FutureQueue::new();
        q.schedule(0, 64, 1, 0); // bucket 0
        let mut batch = Vec::new();
        q.pop_at(64, &mut batch);
        assert_eq!(batch, vec![(1, 0)]);
        // Same bucket, next lap of the wheel.
        q.schedule(64, 128, 2, 0); // bucket 0 again
        assert_eq!(q.next_time(64), Some(128));
        batch.clear();
        q.pop_at(128, &mut batch);
        assert_eq!(batch, vec![(2, 0)]);
    }

    #[test]
    fn distinct_times_counts_times_not_entries() {
        let mut q = FutureQueue::new();
        for pid in 0..10 {
            q.schedule(0, 7, pid, 0);
        }
        q.schedule(0, 9, 99, 0);
        assert_eq!(q.distinct_times(), 2);
    }
}
