//! Lexer for the Verilog-2001 subset.
//!
//! The lexer is *total*: any byte sequence produces a token stream, with
//! unrecognised characters reported as syntax diagnostics. This matters
//! because the AIVRIL2 loop feeds it LLM-corrupted source — garbage must
//! surface as a well-located error, never a panic.

use crate::token::{Keyword, Punct, Token, TokenKind};
use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::source::{FileId, Span};

/// Lexes `text` (registered as `file`) into tokens, appending any
/// lexical errors to `diags`. Always ends with an [`TokenKind::Eof`]
/// token.
pub fn lex(file: FileId, text: &str, diags: &mut Diagnostics) -> Vec<Token> {
    Lexer {
        file,
        bytes: text.as_bytes(),
        pos: 0,
        tokens: Vec::new(),
    }
    .run(diags)
}

struct Lexer<'a> {
    file: FileId,
    bytes: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self, diags: &mut Diagnostics) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.pos += 2;
                    let mut closed = false;
                    while self.pos + 1 < self.bytes.len() {
                        if self.bytes[self.pos] == b'*' && self.bytes[self.pos + 1] == b'/' {
                            self.pos += 2;
                            closed = true;
                            break;
                        }
                        self.pos += 1;
                    }
                    if !closed {
                        self.pos = self.bytes.len();
                        diags.push(Diagnostic::error(
                            codes::VLOG_SYNTAX,
                            "unterminated block comment",
                            self.span(start),
                        ));
                    }
                }
                b'"' => self.lex_string(start, diags),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.lex_ident(start),
                b'\\' => self.lex_escaped_ident(start),
                b'$' => self.lex_sys_ident(start, diags),
                b'0'..=b'9' | b'\'' => self.lex_number(start, diags),
                b'`' => {
                    // Compiler directives (`timescale etc.): skip the line.
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                _ => self.lex_punct(start, diags),
            }
        }
        let end = self.bytes.len();
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            text: String::new(),
            span: Span::new(self.file, end as u32, end as u32),
        });
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn span(&self, start: usize) -> Span {
        Span::new(self.file, start as u32, self.pos as u32)
    }

    fn text(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    fn push(&mut self, kind: TokenKind, text: String, start: usize) {
        let span = self.span(start);
        self.tokens.push(Token { kind, text, span });
    }

    fn lex_string(&mut self, start: usize, diags: &mut Diagnostics) {
        self.pos += 1;
        let content_start = self.pos;
        let mut text = String::new();
        let mut closed = false;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    closed = true;
                    break;
                }
                b'\\' => {
                    // Escape sequences: \n \t \\ \" pass through decoded.
                    if let Some(next) = self.peek(1) {
                        text.push(match next {
                            b'n' => '\n',
                            b't' => '\t',
                            other => other as char,
                        });
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                    }
                }
                b'\n' => break,
                other => {
                    text.push(other as char);
                    self.pos += 1;
                }
            }
        }
        if !closed {
            diags.push(Diagnostic::error(
                codes::VLOG_SYNTAX,
                "unterminated string literal",
                Span::new(self.file, start as u32, content_start as u32),
            ));
        }
        self.push(TokenKind::Str, text, start);
    }

    fn lex_ident(&mut self, start: usize) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'$')
        ) {
            self.pos += 1;
        }
        let text = self.text(start);
        // A number base suffix can follow a size: handled in lex_number,
        // so here any word is an identifier or keyword.
        let kind = match Keyword::from_str(&text) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident,
        };
        self.push(kind, text, start);
    }

    fn lex_escaped_ident(&mut self, start: usize) {
        self.pos += 1;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| !b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
        let text = self.text(start + 1);
        self.push(TokenKind::Ident, text, start);
    }

    fn lex_sys_ident(&mut self, start: usize, _diags: &mut Diagnostics) {
        self.pos += 1;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.pos += 1;
        }
        let text = self.text(start);
        self.push(TokenKind::SysIdent, text, start);
    }

    /// Lexes decimal, sized and based literals: `42`, `8'hFF`, `'b01xz`,
    /// `4'd1_0`. The whole literal becomes a single `Number` token whose
    /// text is parsed for value later (keeping the lexer total).
    fn lex_number(&mut self, start: usize, diags: &mut Diagnostics) {
        // Optional size digits.
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9' | b'_')) {
            self.pos += 1;
        }
        // Optional whitespace before the base tick (legal Verilog).
        let mut look = self.pos;
        while matches!(self.bytes.get(look), Some(b' ' | b'\t')) {
            look += 1;
        }
        if self.bytes.get(look) == Some(&b'\'') {
            self.pos = look + 1;
            // Base character.
            match self.bytes.get(self.pos) {
                Some(b'b' | b'B' | b'o' | b'O' | b'd' | b'D' | b'h' | b'H' | b's' | b'S') => {
                    if matches!(self.bytes.get(self.pos), Some(b's' | b'S')) {
                        self.pos += 1; // signed marker, rare; tolerate
                    }
                    self.pos += 1;
                    // Optional whitespace between base and digits.
                    while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t')) {
                        self.pos += 1;
                    }
                    while matches!(
                        self.bytes.get(self.pos),
                        Some(
                            b'0'..=b'9'
                            | b'a'..=b'f'
                            | b'A'..=b'F'
                            | b'x'
                            | b'X'
                            | b'z'
                            | b'Z'
                            | b'?'
                            | b'_',
                        )
                    ) {
                        self.pos += 1;
                    }
                }
                _ => {
                    diags.push(Diagnostic::error(
                        codes::VLOG_SYNTAX,
                        "expected base specifier after \"'\" in number literal",
                        self.span(start),
                    ));
                }
            }
        }
        let text = self.text(start).replace([' ', '\t'], "");
        self.push(TokenKind::Number, text, start);
    }

    fn lex_punct(&mut self, start: usize, diags: &mut Diagnostics) {
        use Punct::*;
        let c = self.bytes[self.pos];
        let two = |l: &Lexer<'_>| l.peek(1);
        let three = |l: &Lexer<'_>| l.peek(2);
        let (p, len) = match c {
            b'(' => (LParen, 1),
            b')' => (RParen, 1),
            b'[' => (LBracket, 1),
            b']' => (RBracket, 1),
            b'{' => (LBrace, 1),
            b'}' => (RBrace, 1),
            b';' => (Semi, 1),
            b',' => (Comma, 1),
            b':' => (Colon, 1),
            b'.' => (Dot, 1),
            b'#' => (Hash, 1),
            b'@' => (At, 1),
            b'?' => (Question, 1),
            b'+' => (Plus, 1),
            b'-' => (Minus, 1),
            b'*' if two(self) == Some(b'*') => (Star2, 2),
            b'*' => (Star, 1),
            b'/' => (Slash, 1),
            b'%' => (Percent, 1),
            b'&' if two(self) == Some(b'&') => (AmpAmp, 2),
            b'&' => (Amp, 1),
            b'|' if two(self) == Some(b'|') => (PipePipe, 2),
            b'|' => (Pipe, 1),
            b'^' if two(self) == Some(b'~') => (TildeCaret, 2),
            b'^' => (Caret, 1),
            b'~' if two(self) == Some(b'^') => (TildeCaret, 2),
            b'~' if two(self) == Some(b'&') => (TildeAmp, 2),
            b'~' if two(self) == Some(b'|') => (TildePipe, 2),
            b'~' => (Tilde, 1),
            b'!' if two(self) == Some(b'=') && three(self) == Some(b'=') => (CaseNotEq, 3),
            b'!' if two(self) == Some(b'=') => (NotEq, 2),
            b'!' => (Bang, 1),
            b'=' if two(self) == Some(b'=') && three(self) == Some(b'=') => (CaseEq, 3),
            b'=' if two(self) == Some(b'=') => (EqEq, 2),
            b'=' => (Assign, 1),
            b'<' if two(self) == Some(b'=') => (LtEqual, 2),
            b'<' if two(self) == Some(b'<') => (Shl, 2),
            b'<' => (Lt, 1),
            b'>' if two(self) == Some(b'=') => (GtEq, 2),
            b'>' if two(self) == Some(b'>') => (Shr, 2),
            b'>' => (Gt, 1),
            other => {
                self.pos += 1;
                diags.push(Diagnostic::error(
                    codes::VLOG_SYNTAX,
                    format!("unexpected character '{}'", other as char),
                    self.span(start),
                ));
                return;
            }
        };
        self.pos += len;
        self.push(TokenKind::Punct(p), p.to_string(), start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_hdl::source::SourceMap;

    fn lex_ok(src: &str) -> Vec<Token> {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.v", src);
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        assert!(!diags.has_errors(), "unexpected errors: {:?}", diags.all());
        toks
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex_ok(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        let toks = lex_ok("module foo_1;");
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Module));
        assert_eq!(toks[1].kind, TokenKind::Ident);
        assert_eq!(toks[1].text, "foo_1");
        assert_eq!(toks[2].kind, TokenKind::Punct(Punct::Semi));
        assert_eq!(toks[3].kind, TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        let toks = lex_ok("42 8'hFF 4'b10xz 'd9 16'd1_000");
        let texts: Vec<&str> = toks[..5].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["42", "8'hFF", "4'b10xz", "'d9", "16'd1_000"]);
        assert!(toks[..5].iter().all(|t| t.kind == TokenKind::Number));
    }

    #[test]
    fn operators_longest_match() {
        use Punct::*;
        assert_eq!(
            kinds("=== == = !== != ! <= << < ~^ ~& ~| **"),
            vec![
                TokenKind::Punct(CaseEq),
                TokenKind::Punct(EqEq),
                TokenKind::Punct(Assign),
                TokenKind::Punct(CaseNotEq),
                TokenKind::Punct(NotEq),
                TokenKind::Punct(Bang),
                TokenKind::Punct(LtEqual),
                TokenKind::Punct(Shl),
                TokenKind::Punct(Lt),
                TokenKind::Punct(TildeCaret),
                TokenKind::Punct(TildeAmp),
                TokenKind::Punct(TildePipe),
                TokenKind::Punct(Star2),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex_ok("a // line comment\n/* block\ncomment */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[1].text, "b");
    }

    #[test]
    fn string_escapes() {
        let toks = lex_ok(r#""hello\nworld""#);
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, "hello\nworld");
    }

    #[test]
    fn sys_idents() {
        let toks = lex_ok("$display $finish");
        assert_eq!(toks[0].kind, TokenKind::SysIdent);
        assert_eq!(toks[0].text, "$display");
        assert_eq!(toks[1].text, "$finish");
    }

    #[test]
    fn directives_skipped() {
        let toks = lex_ok("`timescale 1ns/1ps\nmodule");
        assert_eq!(toks[0].kind, TokenKind::Keyword(Keyword::Module));
    }

    #[test]
    fn bad_character_reports_error_but_continues() {
        let mut sources = SourceMap::new();
        let file = sources.add_file("t.v", "a £ b");
        let mut diags = Diagnostics::new();
        let toks = lex(file, "a £ b", &mut diags);
        assert!(diags.has_errors());
        // 'a' and 'b' still lexed (the £ is two utf-8 bytes, each flagged).
        assert!(toks.iter().any(|t| t.text == "a"));
        assert!(toks.iter().any(|t| t.text == "b"));
    }

    #[test]
    fn unterminated_string_is_error() {
        let mut sources = SourceMap::new();
        let src = "\"oops\nmodule";
        let file = sources.add_file("t.v", src);
        let mut diags = Diagnostics::new();
        let _ = lex(file, src, &mut diags);
        assert!(diags.has_errors());
    }

    #[test]
    fn spans_give_correct_lines() {
        let mut sources = SourceMap::new();
        let src = "module m;\nwire w;\nendmodule\n";
        let file = sources.add_file("t.v", src);
        let mut diags = Diagnostics::new();
        let toks = lex(file, src, &mut diags);
        let wire = toks
            .iter()
            .find(|t| t.kind == TokenKind::Keyword(Keyword::Wire))
            .expect("wire token");
        assert_eq!(sources.file(file).line_of(wire.span.start), 2);
    }
}
