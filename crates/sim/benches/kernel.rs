//! Simulation-kernel microbenchmarks.
//!
//! Four workloads exercise the kernel's and the EDA layer's hot paths:
//!
//! * `clkdiv_osc` — an oscillating clock driving a 32-bit divider chain
//!   with ternary/compare feedback: every value fits one 64-bit word,
//!   so this measures the inline-`LogicVec` + compiled-bytecode steady
//!   state (zero allocations per activation).
//! * `wide_adder` — a 256-bit accumulator pipeline, measuring the
//!   multi-word arithmetic paths through the pre-sized wide-value
//!   arena (zero allocations per activation too).
//! * `wide_mix` — a 384/512-bit datapath mixing xor/shift/add/mul with
//!   slices, concatenation, replication and a ternary whose condition
//!   stays `X` for the whole run, so every four-state merge and
//!   word-parallel unknown-plane path runs hot — still allocation-free.
//! * `many_module` — a ten-file Verilog hierarchy compiled through
//!   `XsimToolSuite`'s incremental path: each iteration edits one file
//!   outside the top's instantiation closure, so a compile re-parses
//!   one file and replays the memoized elaboration. Set
//!   `AIVRIL_BENCH_NOINC=1` to disable the incremental memos and
//!   measure the full-recompile baseline.
//!
//! Run with `cargo bench -p aivril-sim --bench kernel`. Environment
//! switches (see the vendored criterion stand-in): `CRITERION_QUICK=1`
//! for a fast smoke run, `CRITERION_JSON=<path>` for a machine-readable
//! report. Additionally `AIVRIL_BENCH_RESULTS=<path>` writes each
//! workload's *functional* outcome (log lines, end time, instruction
//! count) to `<path>` before timing — CI diffs that artifact against
//! `crates/sim/benches/expected_results.txt` to prove optimisations
//! changed no observable output. `BENCH_SIM.json` at the repo root
//! records the tracked before/after timings.

use aivril_hdl::ir::{
    BinaryOp, Design, Expr, Instr, LValue, Net, NetKind, Process, ProcessKind, SysTaskKind,
    Trigger, UnaryOp,
};
use aivril_hdl::vec::LogicVec;
use aivril_sim::{KernelPerf, SimConfig, SimResult, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn net(d: &mut Design, name: &str, width: u32, init: u64) -> aivril_hdl::ir::NetId {
    d.add_net(Net {
        name: name.into(),
        width,
        kind: NetKind::Reg,
        init: Some(LogicVec::from_u64(width, init)),
    })
}

fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// `forever #half clk = ~clk;` plus `#run_for; $display(...); $finish`.
fn add_clock_and_finish(
    d: &mut Design,
    clk: aivril_hdl::ir::NetId,
    half_period: u64,
    run_for: u64,
    summary_format: &str,
    summary_args: Vec<Expr>,
) {
    d.add_process(Process {
        name: "clkgen".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::Delay {
                amount: Expr::constant(64, half_period),
            },
            Instr::BlockingAssign {
                lvalue: LValue::Net(clk),
                expr: Expr::Unary {
                    op: UnaryOp::Not,
                    operand: Box::new(Expr::Net(clk)),
                },
            },
            Instr::Jump(0),
        ],
    });
    d.add_process(Process {
        name: "timeout".into(),
        kind: ProcessKind::Initial,
        body: vec![
            Instr::Delay {
                amount: Expr::constant(64, run_for),
            },
            Instr::SysCall {
                kind: SysTaskKind::Display,
                format: Some(summary_format.into()),
                args: summary_args,
            },
            Instr::SysCall {
                kind: SysTaskKind::Finish,
                format: None,
                args: vec![],
            },
            Instr::Halt,
        ],
    });
}

/// Oscillating clock divider: every net is <= 64 bits wide, so the whole
/// steady state should run allocation-free through the inline-word
/// representation and compiled bytecode.
fn clkdiv_design() -> Design {
    let mut d = Design::new("clkdiv_osc");
    let clk = net(&mut d, "clk", 1, 0);
    let div = net(&mut d, "div", 32, 0);
    let q = net(&mut d, "q", 16, 0);
    let tap = net(&mut d, "tap", 1, 0);
    // always @(posedge clk) begin
    //   div <= div + 1;
    //   q <= ((div & 15) == 0) ? q + 3 : q ^ (div >> 4);
    // end
    d.add_process(Process {
        name: "divider".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::WaitEvent {
                triggers: vec![Trigger::Posedge(clk)],
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(div),
                expr: binary(BinaryOp::Add, Expr::Net(div), Expr::constant(32, 1)),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(q),
                expr: Expr::Ternary {
                    cond: Box::new(binary(
                        BinaryOp::Eq,
                        binary(BinaryOp::And, Expr::Net(div), Expr::constant(32, 15)),
                        Expr::constant(32, 0),
                    )),
                    then: Box::new(binary(BinaryOp::Add, Expr::Net(q), Expr::constant(16, 3))),
                    els: Box::new(binary(
                        BinaryOp::Xor,
                        Expr::Net(q),
                        binary(BinaryOp::Shr, Expr::Net(div), Expr::constant(32, 4)),
                    )),
                },
            },
            Instr::Jump(0),
        ],
    });
    // assign tap = div[7];
    d.add_continuous_assign(
        LValue::Net(tap),
        Expr::Range {
            net: div,
            msb: 7,
            lsb: 7,
        },
    );
    add_clock_and_finish(
        &mut d,
        clk,
        5,
        100_000,
        "div=%h q=%h tap=%b",
        vec![Expr::Net(div), Expr::Net(q), Expr::Net(tap)],
    );
    d
}

/// Wide-adder testbench: a 256-bit accumulator pipeline exercising the
/// spilled (multi-word) arithmetic, bitwise and shift paths.
fn wide_adder_design() -> Design {
    let mut d = Design::new("wide_adder");
    let clk = net(&mut d, "clk", 1, 0);
    let a = net(&mut d, "a", 256, 0x0123_4567_89ab_cdef);
    let b = net(&mut d, "b", 256, 0xfedc_ba98_7654_3210);
    let acc = net(&mut d, "acc", 256, 1);
    // always @(posedge clk) begin
    //   acc <= acc + (a ^ b) + (acc >> 1);
    //   a <= a + 257;
    //   b <= b - 3;
    // end
    d.add_process(Process {
        name: "adder".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::WaitEvent {
                triggers: vec![Trigger::Posedge(clk)],
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(acc),
                expr: binary(
                    BinaryOp::Add,
                    binary(
                        BinaryOp::Add,
                        Expr::Net(acc),
                        binary(BinaryOp::Xor, Expr::Net(a), Expr::Net(b)),
                    ),
                    binary(BinaryOp::Shr, Expr::Net(acc), Expr::constant(32, 1)),
                ),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(a),
                expr: binary(BinaryOp::Add, Expr::Net(a), Expr::constant(256, 257)),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(b),
                expr: binary(BinaryOp::Sub, Expr::Net(b), Expr::constant(256, 3)),
            },
            Instr::Jump(0),
        ],
    });
    add_clock_and_finish(
        &mut d,
        clk,
        5,
        20_000,
        "acc=%h a=%h b=%h",
        vec![Expr::Net(acc), Expr::Net(a), Expr::Net(b)],
    );
    d
}

/// Wide mixed-operation datapath: 384- and 512-bit values through
/// xor/shift/add/mul, slices, concatenation, replication and a ternary
/// whose condition is never driven — it stays `X`, forcing the
/// four-state merge path (and unknown-plane propagation through every
/// word-parallel op) on each cycle.
fn wide_mix_design() -> Design {
    let mut d = Design::new("wide_mix");
    let clk = net(&mut d, "clk", 1, 0);
    let a = net(&mut d, "a", 512, 0x0123_4567_89ab_cdef);
    let b = net(&mut d, "b", 512, 0x0f0f_f0f0_5a5a_a5a5);
    let m = net(&mut d, "m", 384, 7);
    // Declared but never driven: permanently X.
    let xcond = d.add_net(Net {
        name: "xcond".into(),
        width: 1,
        kind: NetKind::Reg,
        init: None,
    });
    // always @(posedge clk) begin
    //   a <= (a ^ (a >> 3)) + {8{m[47:0]}};
    //   b <= xcond ? b + 513 : {b[255:0], a[511:256]};
    //   m <= (m | a[400:17]) & (m * 3);
    // end
    // `a` and `m` stay fully known (a rich hex fingerprint in the
    // artifact); `b` soaks up the X condition through the merge, the
    // add-with-unknowns and the mixed known/unknown concatenation.
    d.add_process(Process {
        name: "mixer".into(),
        kind: ProcessKind::Always,
        body: vec![
            Instr::WaitEvent {
                triggers: vec![Trigger::Posedge(clk)],
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(a),
                expr: binary(
                    BinaryOp::Add,
                    binary(
                        BinaryOp::Xor,
                        Expr::Net(a),
                        binary(BinaryOp::Shr, Expr::Net(a), Expr::constant(32, 3)),
                    ),
                    Expr::Repeat {
                        count: 8,
                        operand: Box::new(Expr::Range {
                            net: m,
                            msb: 47,
                            lsb: 0,
                        }),
                    },
                ),
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(b),
                expr: Expr::Ternary {
                    cond: Box::new(Expr::Net(xcond)),
                    then: Box::new(binary(
                        BinaryOp::Add,
                        Expr::Net(b),
                        Expr::constant(512, 513),
                    )),
                    els: Box::new(Expr::Concat(vec![
                        Expr::Range {
                            net: b,
                            msb: 255,
                            lsb: 0,
                        },
                        Expr::Range {
                            net: a,
                            msb: 511,
                            lsb: 256,
                        },
                    ])),
                },
            },
            Instr::NonblockingAssign {
                lvalue: LValue::Net(m),
                expr: binary(
                    BinaryOp::And,
                    binary(
                        BinaryOp::Or,
                        Expr::Net(m),
                        Expr::Range {
                            net: a,
                            msb: 400,
                            lsb: 17,
                        },
                    ),
                    binary(BinaryOp::Mul, Expr::Net(m), Expr::constant(384, 3)),
                ),
            },
            Instr::Jump(0),
        ],
    });
    add_clock_and_finish(
        &mut d,
        clk,
        5,
        20_000,
        "a=%h b=%h m=%h",
        vec![Expr::Net(a), Expr::Net(b), Expr::Net(m)],
    );
    d
}

/// The many-module workload: eight chained 32-bit stages under one
/// top, plus a module nothing instantiates (so edits to it stay
/// outside every elaboration closure). The top comes last — `find_top`
/// prefers later definitions.
fn many_module_files() -> Vec<aivril_eda::HdlFile> {
    let mut files = Vec::new();
    for i in 0..8 {
        files.push(aivril_eda::HdlFile::new(
            format!("stage{i}.v"),
            format!(
                "module stage{i}(input [31:0] d, output [31:0] q);\n  \
                 assign q = d + 32'd{};\nendmodule\n",
                i + 1
            ),
        ));
    }
    files.push(aivril_eda::HdlFile::new(
        "scratch.v",
        "module scratch(input s, output t);\n  assign t = ~s;\nendmodule\n",
    ));
    let mut top = String::from("module chain_top(input [31:0] din, output [31:0] dout);\n");
    for i in 0..8 {
        top.push_str(&format!("  wire [31:0] w{i};\n"));
    }
    for i in 0..8 {
        let src = if i == 0 {
            "din".to_string()
        } else {
            format!("w{}", i - 1)
        };
        top.push_str(&format!("  stage{i} u{i}(.d({src}), .q(w{i}));\n"));
    }
    top.push_str("  assign dout = w7;\nendmodule\n");
    files.push(aivril_eda::HdlFile::new("top.v", top));
    files
}

fn many_module_suite(cache: aivril_eda::EdaCache) -> aivril_eda::XsimToolSuite {
    aivril_eda::XsimToolSuite::new()
        .with_cache(cache)
        .with_incremental(std::env::var("AIVRIL_BENCH_NOINC").is_err())
}

/// Drives the incremental-compile scenario once and renders its
/// functional outcome: cold compile, explicit-top recompile (same
/// closure — elaboration replays), an edit outside the closure
/// (elaboration replays again), and an edit inside it (elaboration
/// reruns). Counter values are schedule-independent, so the artifact is
/// byte-stable.
fn many_module_artifact() -> String {
    let files = many_module_files();
    let cache = aivril_eda::EdaCache::new();
    let suite = many_module_suite(cache.clone());

    let (r1, design) = suite.compile_to_design(&files, None);
    let (r2, _) = suite.compile_to_design(&files, Some("chain_top"));
    let mut outside = files.clone();
    outside[8].text.push_str("// revision note\n");
    let (r3, _) = suite.compile_to_design(&outside, None);
    let mut inside = files.clone();
    inside[3].text = inside[3].text.replace("32'd4", "32'd40");
    let (r4, _) = suite.compile_to_design(&inside, None);

    let stats = cache.stats();
    if std::env::var("AIVRIL_BENCH_NOINC").is_err() {
        assert!(
            stats.elab_hits >= 2,
            "the explicit-top and outside-closure compiles must replay \
             the memoized elaboration: {stats}"
        );
    }
    let mut out = String::new();
    out.push_str("bench: many_module\n");
    out.push_str(&format!(
        "success: {} {} {} {}\n",
        r1.success, r2.success, r3.success, r4.success
    ));
    out.push_str(&format!(
        "top: {}\n",
        design.as_deref().map_or("<none>", |d| d.top.as_str())
    ));
    out.push_str(&format!(
        "parse: {} hits / {} misses\n",
        stats.parse_hits, stats.parse_misses
    ));
    out.push_str(&format!(
        "elab: {} hits / {} misses\n",
        stats.elab_hits, stats.elab_misses
    ));
    out.push_str("---\n");
    out
}

fn run_once(design: &Design) -> SimResult {
    Simulator::new(design, SimConfig::default()).run()
}

fn run_with_perf(design: &Design) -> (SimResult, KernelPerf) {
    let mut sim = Simulator::new(design, SimConfig::default());
    let result = sim.run();
    let perf = sim.perf();
    (result, perf)
}

/// Renders one workload's functional outcome — everything observable
/// about the run except wall-clock time. Byte-stable across kernel
/// optimisations by construction. The `eval_allocs` line pins the
/// zero-steady-state-allocation claim — 0 for every workload now that
/// wide values run through the pre-sized arena.
fn result_artifact(name: &str, result: &SimResult, perf: &KernelPerf) -> String {
    let mut out = String::new();
    out.push_str(&format!("bench: {name}\n"));
    out.push_str(&format!("end_time: {}\n", result.end_time));
    out.push_str(&format!("finished: {}\n", result.finished));
    out.push_str(&format!("starved: {}\n", result.starved));
    out.push_str(&format!("errors: {}\n", result.error_count));
    out.push_str(&format!("limit: {:?}\n", result.limit_hit));
    out.push_str(&format!("instructions: {}\n", result.instructions_executed));
    out.push_str(&format!("eval_allocs: {}\n", perf.eval_allocs));
    for line in &result.lines {
        out.push_str(&format!("log[{}]: {}\n", line.time, line.text));
    }
    out.push_str("---\n");
    out
}

/// When `AIVRIL_BENCH_RESULTS` is set, runs each workload once and
/// writes the combined functional artifact there.
fn maybe_write_results() {
    let Ok(path) = std::env::var("AIVRIL_BENCH_RESULTS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut combined = String::new();
    for (name, design) in [
        ("clkdiv_osc", clkdiv_design()),
        ("wide_adder", wide_adder_design()),
        ("wide_mix", wide_mix_design()),
    ] {
        let (result, perf) = run_with_perf(&design);
        combined.push_str(&result_artifact(name, &result, &perf));
    }
    combined.push_str(&many_module_artifact());
    std::fs::write(&path, combined).expect("write AIVRIL_BENCH_RESULTS artifact");
    eprintln!("[bench] wrote kernel result artifact to {path}");
}

fn bench_clkdiv(c: &mut Criterion) {
    let design = clkdiv_design();
    let (result, perf) = run_with_perf(&design);
    assert!(result.finished, "clkdiv bench design must finish cleanly");
    assert_eq!(
        perf.eval_allocs, 0,
        "every clkdiv net fits one word: the compiled steady state must \
         be allocation-free"
    );
    c.bench_function("sim_kernel/clkdiv_osc", |bencher| {
        bencher.iter(|| run_once(&design))
    });
}

fn bench_wide_adder(c: &mut Criterion) {
    let design = wide_adder_design();
    let (result, perf) = run_with_perf(&design);
    assert!(
        result.finished,
        "wide-adder bench design must finish cleanly"
    );
    assert_eq!(
        perf.eval_allocs, 0,
        "the 256-bit workload must run allocation-free through the \
         pre-sized wide-value arena"
    );
    c.bench_function("sim_kernel/wide_adder", |bencher| {
        bencher.iter(|| run_once(&design))
    });
}

fn bench_wide_mix(c: &mut Criterion) {
    let design = wide_mix_design();
    let (result, perf) = run_with_perf(&design);
    assert!(result.finished, "wide-mix bench design must finish cleanly");
    assert_eq!(
        perf.eval_allocs, 0,
        "the 384/512-bit four-state workload must run allocation-free \
         through the pre-sized wide-value arena"
    );
    c.bench_function("sim_kernel/wide_mix", |bencher| {
        bencher.iter(|| run_once(&design))
    });
}

fn bench_many_module(c: &mut Criterion) {
    // One warm-up pass checks the functional outcome and the memo
    // accounting before any timing happens.
    let _ = many_module_artifact();
    let files = many_module_files();
    let cache = aivril_eda::EdaCache::new();
    let suite = many_module_suite(cache.clone());
    let (report, _) = suite.compile_to_design(&files, None);
    assert!(report.success, "many-module hierarchy must compile");
    // Each iteration edits the one file outside the top's instantiation
    // closure — a distinct text per iteration, so the whole-invocation
    // compile cache always misses and the timing measures the
    // incremental path: nine parse replays + one fresh parse + one
    // elaboration replay (or a full recompile with AIVRIL_BENCH_NOINC).
    let mut revision = 0u64;
    c.bench_function("sim_kernel/many_module", |bencher| {
        bencher.iter(|| {
            revision += 1;
            let mut edited = files.clone();
            edited[8].text = format!(
                "module scratch(input s, output t);\n  \
                 assign t = ~s; // rev {revision}\nendmodule\n"
            );
            suite.compile_to_design(&edited, None)
        })
    });
}

fn bench_entry(c: &mut Criterion) {
    maybe_write_results();
    bench_clkdiv(c);
    bench_wide_adder(c);
    bench_wide_mix(c);
    bench_many_module(c);
}

criterion_group!(kernel, bench_entry);
criterion_main!(kernel);
