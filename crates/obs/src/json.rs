//! A tiny hand-rolled JSON writer *and reader*: exactly what the
//! exporters and the [`crate::analyze`] read side need, with
//! deterministic formatting (no registry access, no dependencies).
//!
//! The reader ([`parse`]) is total — malformed input yields `None`,
//! never a panic — and preserves object key order, which the analysis
//! layer relies on for byte-stable reports.

/// Escapes `s` for inclusion in a JSON string literal (no quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string literal.
#[must_use]
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders an `f64` as a JSON number with fixed six-decimal precision —
/// the deterministic formatting every exporter uses. Non-finite values
/// (not representable in JSON) render as `null`.
#[must_use]
pub fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders an object from pre-rendered `key: value` fragments.
#[must_use]
pub fn object(fields: &[(&str, String)]) -> String {
    let inner: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("{}:{v}", string(k)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

/// A parsed JSON value. Object members keep their source order (the
/// exporters emit fixed field orders, and the analysis layer renders
/// reports in that same order for byte stability).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also produced by the writer for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, members in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` for other variants or absent
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array; `None` otherwise.
    #[must_use]
    pub fn arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The text of a string; `None` otherwise.
    #[must_use]
    pub fn str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a number; `None` otherwise.
    #[must_use]
    pub fn num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value of a boolean; `None` otherwise.
    #[must_use]
    pub fn bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document. Total: `None` on any malformation
/// (trailing garbage included) — corrupt artifacts are data for the
/// analysis layer, never a panic.
#[must_use]
pub fn parse(text: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

/// Nesting guard: the parser recurses per container, so a pathological
/// `[[[[…` input must be refused before it exhausts the stack.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        (self.peek() == Some(b)).then(|| self.pos += 1)
    }

    fn lit(&mut self, lit: &str) -> Option<()> {
        let end = self.pos + lit.len();
        (self.bytes.get(self.pos..end) == Some(lit.as_bytes())).then(|| self.pos = end)
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'n' => self.lit("null").map(|()| Value::Null),
            b't' => self.lit("true").map(|()| Value::Bool(true)),
            b'f' => self.lit("false").map(|()| Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse().ok().map(Value::Num)
    }

    fn string(&mut self) -> Option<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek()? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(self.bytes.get(self.pos + 1..self.pos + 5)?)
                                    .ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            // Surrogates would need pairing; the
                            // exporters never emit them, so refuse.
                            out.push(char::from_u32(code)?);
                            self.pos += 4;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is &str, so
                    // boundaries are valid by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
                    let c = rest.chars().next()?;
                    if (c as u32) < 0x20 {
                        return None; // raw control characters are invalid JSON
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return None;
        }
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Some(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Some(Value::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return None;
        }
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Some(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Some(Value::Obj(members));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_fixed_precision() {
        assert_eq!(number(1.5), "1.500000");
        assert_eq!(number(f64::NAN), "null");
    }

    #[test]
    fn objects_compose() {
        assert_eq!(
            object(&[("a", "1".to_string()), ("b", string("x"))]),
            "{\"a\":1,\"b\":\"x\"}"
        );
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = object(&[
            ("s", string("a\"b\\c\nd\u{e9}")),
            ("n", number(1.5)),
            ("neg", "-2".to_string()),
            ("b", "true".to_string()),
            ("nul", "null".to_string()),
            ("arr", "[1,2,3]".to_string()),
            ("obj", object(&[("k", string("v"))])),
        ]);
        let v = parse(&doc).expect("writer output parses");
        assert_eq!(v.get("s").and_then(Value::str), Some("a\"b\\c\nd\u{e9}"));
        assert_eq!(v.get("n").and_then(Value::num), Some(1.5));
        assert_eq!(v.get("neg").and_then(Value::num), Some(-2.0));
        assert_eq!(v.get("b").and_then(Value::bool), Some(true));
        assert_eq!(v.get("nul"), Some(&Value::Null));
        assert_eq!(
            v.get("arr").and_then(Value::arr).map(<[Value]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("obj").and_then(|o| o.get("k")).and_then(Value::str),
            Some("v")
        );
        // Key order is the source order.
        match &v {
            Value::Obj(m) => assert_eq!(m[0].0, "s"),
            other => panic!("not an object: {other:?}"),
        }
    }

    #[test]
    fn parse_is_total_on_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "nul",
            "\"abc",
            "\"\\u12\"",
            "1 2",
            "{\"a\":1} x",
            "[1 2]",
            "\"\\q\"",
            "--1",
            "0x10",
        ] {
            assert_eq!(parse(bad), None, "input {bad:?} must not parse");
        }
        // Deep nesting is refused, not a stack overflow.
        let deep = "[".repeat(100_000);
        assert_eq!(parse(&deep), None);
    }

    #[test]
    fn parse_accepts_whitespace_and_unicode_escapes() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\" ] } ").unwrap();
        let arr = v.get("k").and_then(Value::arr).unwrap();
        assert_eq!(arr[0].num(), Some(1.0));
        assert_eq!(arr[1].str(), Some("\u{e9}"));
    }
}
