//! EDA result cache suite: the cache must be a pure wall-clock
//! optimisation. Every canonical artifact — evaluation outcomes, the
//! run journal, the canonical metrics view — must be *byte-identical*
//! with the cache on or off, at any `AIVRIL_THREADS`, and the per-run
//! pipeline results must match bit-for-bit across arbitrary seeds.
//!
//! Latency comparison is `f64::to_bits` equality, never an epsilon:
//! the contract is that a cache hit replays the stored report
//! (`modeled_latency` included), not that it recomputes something
//! close to it.

use aivril_bench::{build_library, Flow, Harness, HarnessConfig};
use aivril_core::{Aivril2, Aivril2Config, TaskInput};
use aivril_eda::{EdaCache, XsimToolSuite};
use aivril_llm::{profiles, SimLlm, TaskLibrary};
use aivril_metrics::EvalOutcome;
use aivril_obs::{render_journal, Recorder};
use proptest::prelude::*;
use std::sync::OnceLock;

fn suite() -> &'static [aivril_verilogeval::Problem] {
    static SUITE: OnceLock<Vec<aivril_verilogeval::Problem>> = OnceLock::new();
    SUITE.get_or_init(aivril_verilogeval::suite)
}

fn library() -> &'static TaskLibrary {
    static LIB: OnceLock<TaskLibrary> = OnceLock::new();
    LIB.get_or_init(|| build_library(suite()))
}

fn harness(threads: usize, eda_cache: bool, recorder: Recorder) -> Harness {
    Harness::new(HarnessConfig {
        samples: 2,
        task_limit: 10,
        threads,
        eda_cache,
        ..HarnessConfig::default()
    })
    .with_recorder(recorder)
}

fn outcomes(threads: usize, eda_cache: bool) -> Vec<EvalOutcome> {
    let h = harness(threads, eda_cache, Recorder::disabled());
    let (outcomes, stats) =
        h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
    assert_eq!(stats.eda_cache.is_some(), eda_cache);
    outcomes
}

fn assert_outcomes_bit_identical(a: &[EvalOutcome], b: &[EvalOutcome], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: outcome count");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.task, y.task, "{what}");
        assert_eq!(x.samples.len(), y.samples.len(), "{what}: {}", x.task);
        for (s, t) in x.samples.iter().zip(&y.samples) {
            assert_eq!(s.syntax, t.syntax, "{what}: {}", x.task);
            assert_eq!(s.functional, t.functional, "{what}: {}", x.task);
            assert_eq!(
                s.total_latency.to_bits(),
                t.total_latency.to_bits(),
                "{what}: {} modeled latency must be replayed, not recomputed",
                x.task
            );
        }
    }
}

#[test]
fn outcomes_are_bit_identical_cache_on_vs_off() {
    let off = outcomes(1, false);
    for threads in [1, 2, 4] {
        let on = outcomes(threads, true);
        assert_outcomes_bit_identical(&off, &on, &format!("cache on, {threads} thread(s)"));
    }
}

#[test]
fn journal_is_byte_identical_cache_on_vs_off() {
    let run = |threads: usize, eda_cache: bool| {
        let rec = Recorder::new();
        let h = harness(threads, eda_cache, rec.clone());
        let _ = h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
        rec
    };
    let off = render_journal(&run(1, false));
    for threads in [1, 2, 4] {
        let on = render_journal(&run(threads, true));
        assert_eq!(
            off, on,
            "journal bytes must not depend on the cache ({threads} thread(s))"
        );
    }
}

#[test]
fn canonical_metrics_are_bit_identical_cache_on_vs_off() {
    let run = |threads: usize, eda_cache: bool| {
        let rec = Recorder::new();
        let h = harness(threads, eda_cache, rec.clone());
        let _ = h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
        rec.metrics()
    };
    let off = run(1, false);
    // Cache off: the canonical view is the whole registry (no
    // diagnostic series to strip).
    assert_eq!(off.render(), off.canonical().render());
    for threads in [1, 2, 4] {
        let on = run(threads, true);
        // The raw cache-on registry carries the eda_cache_* diagnostic
        // series; the canonical view must shed exactly those and
        // nothing else.
        assert!(on.get("eda_cache_hits_total", &[]).is_some());
        assert!(on.canonical().get("eda_cache_hits_total", &[]).is_none());
        assert_eq!(
            off.canonical().snapshot(),
            on.canonical().snapshot(),
            "canonical metrics must not depend on the cache ({threads} thread(s))"
        );
    }
}

#[test]
fn quicklook_sized_grid_hits_well_above_threshold() {
    // Acceptance gate: on a Table-1-shaped grid the hit rate must
    // clear 30% — the agent loops re-analyze and re-simulate enough
    // identical (testbench, RTL) sets to make the cache worthwhile.
    let h = harness(2, true, Recorder::disabled());
    let _ = h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
    let stats = h.cache_stats().expect("cache enabled");
    assert!(stats.hits > 0, "no hits on a quicklook grid: {stats}");
    assert!(
        stats.hit_rate() > 0.30,
        "hit rate below acceptance threshold: {stats}"
    );
}

#[test]
fn hit_accounting_is_thread_count_independent() {
    let count = |threads: usize| {
        let h = harness(threads, true, Recorder::disabled());
        let _ = h.evaluate_with_stats(&profiles::claude35_sonnet(), true, Flow::Aivril2);
        h.cache_stats().expect("cache enabled")
    };
    let serial = count(1);
    for threads in [2, 4] {
        let parallel = count(threads);
        assert_eq!(serial.hits, parallel.hits, "hits at {threads} threads");
        assert_eq!(
            serial.misses, parallel.misses,
            "misses at {threads} threads"
        );
        assert_eq!(
            serial.entries, parallel.entries,
            "entries at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Per-run property: for any suite problem, model and seed, one
    /// AIVRIL2 pipeline execution over a cached tool suite is
    /// bit-identical to the same execution over a plain suite.
    #[test]
    fn pipeline_run_is_bit_identical_cache_on_vs_off(
        problem_idx in 0usize..48,
        model_idx in 0usize..4,
        seed in 0u64..1_000_000,
        verilog_bit in 0u8..2,
    ) {
        let verilog = verilog_bit == 1;
        let problems = suite();
        let p = &problems[problem_idx % problems.len()];
        let models = profiles::all();
        let profile = &models[model_idx % models.len()];
        let task = TaskInput {
            name: p.name.clone(),
            module_name: p.module_name.clone(),
            spec: p.spec.clone(),
            verilog,
            seed,
        };
        let run = |tools: &XsimToolSuite| {
            let mut model = SimLlm::new(profile.clone(), library().clone());
            let pipeline = Aivril2::new(tools, Aivril2Config::default());
            pipeline.run(&mut model, &task)
        };
        let plain = XsimToolSuite::new();
        let cached = XsimToolSuite::new().with_cache(EdaCache::new());
        let a = run(&plain);
        let b = run(&cached);
        // Run the cached suite a second time: now every tool call is a
        // replay, and the result must still not drift.
        let c = run(&cached);
        for (other, label) in [(&b, "first cached"), (&c, "replayed")] {
            prop_assert_eq!(&a.final_rtl, &other.final_rtl, "{} run", label);
            prop_assert_eq!(&a.final_tb, &other.final_tb, "{} run", label);
            prop_assert_eq!(a.syntax_pass, other.syntax_pass, "{} run", label);
            prop_assert_eq!(a.functional_pass, other.functional_pass, "{} run", label);
            prop_assert_eq!(
                a.trace.narration(),
                other.trace.narration(),
                "{} run",
                label
            );
            prop_assert_eq!(
                a.trace.total_latency().to_bits(),
                other.trace.total_latency().to_bits(),
                "{} run",
                label
            );
        }
        let stats = cached.cache().expect("cache attached").stats();
        prop_assert!(stats.hits > 0, "second cached run must hit: {}", stats);
    }
}
