//! Task description handed to the pipeline.

/// One RTL design task, as presented to AIVRIL2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskInput {
    /// Benchmark task name (unique key, e.g. `prob042_count_mod10_w4`).
    pub name: String,
    /// Required module/entity name for the generated design.
    pub module_name: String,
    /// Natural-language specification (the user prompt of Fig. 2 ①).
    pub spec: String,
    /// `true` targets Verilog, `false` targets VHDL.
    pub verilog: bool,
    /// Sample seed (pass@k evaluation draws several samples per task).
    pub seed: u64,
}

impl TaskInput {
    /// Conventional DUT file name (`<module>.v` / `<module>.vhd`).
    #[must_use]
    pub fn dut_file_name(&self) -> String {
        format!("{}.{}", self.module_name, self.extension())
    }

    /// Conventional testbench file name.
    #[must_use]
    pub fn tb_file_name(&self) -> String {
        format!("tb_{}.{}", self.module_name, self.extension())
    }

    /// File extension for the target language.
    #[must_use]
    pub fn extension(&self) -> &'static str {
        if self.verilog {
            "v"
        } else {
            "vhd"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_follow_language() {
        let mut t = TaskInput {
            name: "n".into(),
            module_name: "adder".into(),
            spec: String::new(),
            verilog: true,
            seed: 0,
        };
        assert_eq!(t.dut_file_name(), "adder.v");
        assert_eq!(t.tb_file_name(), "tb_adder.v");
        t.verilog = false;
        assert_eq!(t.dut_file_name(), "adder.vhd");
    }
}
