//! The two pipelines: the AIVRIL2 loop architecture and the zero-shot
//! baseline it is compared against.

use crate::agents::{CodeAgent, Generation, ReviewAgent, VerificationAgent};
use crate::config::{Aivril2Config, PromptDetail};
use crate::resilience::{CircuitBreaker, ResilienceCounters, ResiliencePolicy};
use crate::task::TaskInput;
use crate::trace::{RunTrace, Stage, TraceEventKind};
use crate::user::{spec_is_sufficient, NoClarification, UserProxy};
use aivril_eda::{HdlFile, ToolSuite};
use aivril_llm::{LanguageModel, LlmError};
use aivril_obs::Recorder;

/// Outcome of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Final RTL source (the last version the Code Agent produced).
    pub final_rtl: String,
    /// Final (frozen) self-generated testbench; empty for the baseline
    /// flow, which generates none.
    pub final_tb: String,
    /// `true` when the final RTL+testbench compiled cleanly inside the
    /// pipeline.
    pub syntax_pass: bool,
    /// `true` when the final simulation against the self-generated
    /// testbench passed inside the pipeline. (External pass@1 scoring
    /// re-evaluates against the benchmark's reference testbench.)
    pub functional_pass: bool,
    /// Full per-stage record.
    pub trace: RunTrace,
    /// Retry/breaker/degradation counters; all-zero for fault-free runs.
    pub resilience: ResilienceCounters,
}

/// Runs `call` under the retry/backoff/breaker policy. `call` receives
/// the attempt index (mixed into the fault RNG by the agent) and either
/// yields a usable [`Generation`] or a transport fault.
///
/// `Some(gen)` on success; `None` after graceful degradation — the
/// matching [`TraceEventKind::Retry`]/[`TraceEventKind::Degraded`]
/// events are already in `trace` and the counters updated. All waits
/// happen on the modeled clock (`trace.total_latency()` is "now"), so
/// the whole schedule is deterministic.
#[allow(clippy::too_many_arguments)]
fn with_retries(
    policy: &ResiliencePolicy,
    breaker: &mut CircuitBreaker,
    trace: &mut RunTrace,
    counters: &mut ResilienceCounters,
    recorder: &Recorder,
    stage: Stage,
    seed: u64,
    op: &str,
    mut call: impl FnMut(u32) -> Result<Generation, LlmError>,
) -> Option<Generation> {
    for attempt in 0..=policy.retry_max {
        let now = trace.total_latency();
        if !breaker.try_acquire(now) {
            counters.degraded += 1;
            trace.push(
                stage,
                TraceEventKind::Degraded,
                format!("{op}: circuit breaker open; skipping the call"),
                0.0,
                0.0,
            );
            return None;
        }
        match call(attempt) {
            Ok(gen) => {
                breaker.on_success();
                return Some(gen);
            }
            Err(err) => {
                counters.llm_faults += 1;
                let fault_s = err.elapsed_s();
                let now = trace.total_latency() + fault_s;
                breaker.on_failure(now);
                let opened = breaker.is_open(now);
                if attempt < policy.retry_max && !opened {
                    // Honour an explicit Retry-After when it exceeds our
                    // own backoff schedule.
                    let floor = match err {
                        LlmError::RateLimited { retry_after_s } => retry_after_s,
                        LlmError::Timeout { .. } => 0.0,
                    };
                    let wait = policy.backoff_s(seed, op, attempt).max(floor);
                    counters.retries += 1;
                    counters.backoff_s += wait;
                    recorder.advance(wait);
                    trace.push(
                        stage,
                        TraceEventKind::Retry,
                        format!("{op}: {err}; retrying after {wait:.2}s backoff"),
                        fault_s + wait,
                        0.0,
                    );
                } else {
                    let why = if opened {
                        "circuit breaker opened"
                    } else {
                        "retry budget exhausted"
                    };
                    counters.degraded += 1;
                    trace.push(
                        stage,
                        TraceEventKind::Degraded,
                        format!("{op}: {err}; {why}"),
                        fault_s,
                        0.0,
                    );
                    return None;
                }
            }
        }
    }
    None
}

/// `true` when a fresh generation is unusable as a starting point: the
/// model answered in prose (no code fence — it does not know the task)
/// or produced an empty artefact. Corrective iteration cannot restore
/// knowledge the model never had, so the pipeline degrades immediately
/// instead of burning its iteration budget.
fn generation_unusable(gen: &Generation) -> bool {
    !gen.fenced || gen.code.trim().is_empty()
}

/// The AIVRIL2 pipeline: testbench-first generation with a Syntax
/// Optimization loop (Review Agent) and a Functional Optimization loop
/// (Verification Agent).
///
/// The pipeline sees the tools only as a `&dyn ToolSuite`, so shared
/// infrastructure like the content-addressed EDA result cache travels
/// *inside* the suite: a harness that enables `aivril_eda::EdaCache`
/// hands every pipeline (and its own scoring path) clones of one cached
/// suite, and the pipeline itself stays oblivious. Tool results are
/// bit-identical with the cache on or off (`cache_tests` below), so
/// every downstream decision — loop iterations, rollbacks, traces — is
/// too.
pub struct Aivril2<'t> {
    tools: &'t dyn ToolSuite,
    config: Aivril2Config,
    review: ReviewAgent,
    verification: VerificationAgent,
    recorder: Recorder,
}

impl std::fmt::Debug for Aivril2<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Aivril2")
            .field("config", &self.config)
            .finish()
    }
}

impl<'t> Aivril2<'t> {
    /// Creates a pipeline over the given EDA tool suite.
    #[must_use]
    pub fn new(tools: &'t dyn ToolSuite, config: Aivril2Config) -> Aivril2<'t> {
        Aivril2 {
            tools,
            config,
            review: ReviewAgent::new(),
            verification: VerificationAgent::new(),
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches an observability recorder: stage and iteration spans
    /// plus pipeline counters are emitted into it. The default is a
    /// disabled recorder with a no-op fast path.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Aivril2<'t> {
        self.recorder = recorder;
        self
    }

    fn syntax_corrective(
        &self,
        report: &aivril_eda::CompileReport,
        source: &str,
        artifact: &str,
    ) -> String {
        match self.config.prompt_detail {
            PromptDetail::Detailed => self.review.corrective_prompt(report, source, artifact),
            PromptDetail::ErrorsOnly => self.review.corrective_prompt_brief(report, artifact),
        }
    }

    /// Runs the full two-stage pipeline for `task` on `model`, with no
    /// user available for clarification questions.
    pub fn run(&self, model: &mut dyn LanguageModel, task: &TaskInput) -> RunResult {
        self.run_with_user(model, task, &NoClarification)
    }

    /// Runs the pipeline with a [`UserProxy`] available: when the prompt
    /// lacks the details the Code Agent needs (Sec. 3.1), it asks the
    /// user and folds the answer into the task before generating.
    pub fn run_with_user(
        &self,
        model: &mut dyn LanguageModel,
        task: &TaskInput,
        user: &dyn UserProxy,
    ) -> RunResult {
        let mut trace = RunTrace::default();
        // -- Step ①: check the user requirement is workable; open the
        // clarification dialogue if not.
        let mut task = task.clone();
        if !spec_is_sufficient(&task.spec, &task.module_name) {
            let question = format!(
                "The specification does not fully identify the design task or the                  required module `{}`. Please provide the complete requirements:                  the task name, the interface (ports and widths), and the intended                  behaviour.",
                task.module_name
            );
            let answer = user.clarify(&question);
            if answer.is_empty() {
                trace.push(
                    Stage::TbGeneration,
                    TraceEventKind::Clarification,
                    "clarification requested; no answer — proceeding with the original prompt",
                    0.0,
                    0.0,
                );
            } else {
                task.spec = format!(
                    "{}
{answer}",
                    task.spec
                );
                trace.push(
                    Stage::TbGeneration,
                    TraceEventKind::Clarification,
                    "clarification requested; user supplied additional detail",
                    0.0,
                    0.0,
                );
            }
        }
        let task = &task;
        let policy = self.config.resilience;
        let mut counters = ResilienceCounters::default();
        let mut breaker = CircuitBreaker::new(&policy);
        let mut agent = CodeAgent::new(model, task, self.config.gen_params);

        // -- Step ②: testbench generation, then its syntax loop.
        let tb_gen = {
            let span = self.recorder.span("stage.tb_generation");
            let tb_gen = with_retries(
                &policy,
                &mut breaker,
                &mut trace,
                &mut counters,
                &self.recorder,
                Stage::TbGeneration,
                task.seed,
                "generate testbench",
                |attempt| {
                    agent.set_attempt(attempt);
                    agent.generate_testbench(task)
                },
            );
            if let Some(gen) = &tb_gen {
                span.attr_f64("llm_s", gen.latency_s);
            }
            tb_gen
        };
        let Some(tb_gen) = tb_gen else {
            return self.degraded_result(String::new(), String::new(), trace, counters, &breaker);
        };
        trace.push(
            Stage::TbGeneration,
            TraceEventKind::Generation,
            "generate testbench",
            tb_gen.latency_s,
            0.0,
        );
        if generation_unusable(&tb_gen) {
            counters.degraded += 1;
            trace.push(
                Stage::TbGeneration,
                TraceEventKind::Degraded,
                "testbench generation unusable (no code); aborting the run",
                0.0,
                0.0,
            );
            return self.degraded_result(String::new(), tb_gen.code, trace, counters, &breaker);
        }
        let mut tb = tb_gen.code;
        // The AIVRIL(1)-style ablation skips the testbench-first
        // pre-validation: the testbench is used exactly as generated.
        let tb_loop_budget = if self.config.testbench_first {
            self.config.max_syntax_iters
        } else {
            0
        };
        let tb_loop_span = self.recorder.span("stage.tb_syntax_loop");
        for iter in 0..=tb_loop_budget {
            if !self.config.testbench_first {
                break;
            }
            let iter_span = self.recorder.span("iteration");
            iter_span.attr_int("index", iter as i64);
            let report = self
                .tools
                .analyze(&[HdlFile::new(task.tb_file_name(), tb.clone())]);
            iter_span.attr_int("errors", report.error_count() as i64);
            trace.push(
                Stage::TbSyntaxLoop,
                TraceEventKind::Analysis,
                format!("analyze testbench: {} error(s)", report.error_count()),
                0.0,
                report.modeled_latency,
            );
            if report.success {
                break;
            }
            if trace.iterations(Stage::TbSyntaxLoop) >= self.config.max_syntax_iters {
                break;
            }
            let corrective = self.syntax_corrective(&report, &tb, "testbench");
            let Some(gen) = with_retries(
                &policy,
                &mut breaker,
                &mut trace,
                &mut counters,
                &self.recorder,
                Stage::TbSyntaxLoop,
                task.seed,
                "revise testbench",
                |attempt| {
                    agent.set_attempt(attempt);
                    agent.revise(corrective.clone())
                },
            ) else {
                // Degrade: freeze the best testbench we have.
                break;
            };
            trace.push(
                Stage::TbSyntaxLoop,
                TraceEventKind::Revise,
                "revise after syntax feedback",
                gen.latency_s,
                0.0,
            );
            tb = gen.code;
        }
        drop(tb_loop_span);
        // The testbench is frozen from here on.

        // -- Step ③: RTL generation, then its syntax loop.
        let rtl_gen = {
            let span = self.recorder.span("stage.rtl_generation");
            let rtl_gen = with_retries(
                &policy,
                &mut breaker,
                &mut trace,
                &mut counters,
                &self.recorder,
                Stage::RtlGeneration,
                task.seed,
                "generate RTL",
                |attempt| {
                    agent.set_attempt(attempt);
                    agent.generate_rtl(task, &tb)
                },
            );
            if let Some(gen) = &rtl_gen {
                span.attr_f64("llm_s", gen.latency_s);
            }
            rtl_gen
        };
        let Some(rtl_gen) = rtl_gen else {
            return self.degraded_result(String::new(), tb, trace, counters, &breaker);
        };
        trace.push(
            Stage::RtlGeneration,
            TraceEventKind::Generation,
            "generate RTL",
            rtl_gen.latency_s,
            0.0,
        );
        if generation_unusable(&rtl_gen) {
            counters.degraded += 1;
            trace.push(
                Stage::RtlGeneration,
                TraceEventKind::Degraded,
                "RTL generation unusable (no code); aborting the run",
                0.0,
                0.0,
            );
            return self.degraded_result(rtl_gen.code, tb, trace, counters, &breaker);
        }
        let mut rtl = rtl_gen.code;
        let mut syntax_pass = false;
        let rtl_loop_span = self.recorder.span("stage.rtl_syntax_loop");
        for iter in 0..=self.config.max_syntax_iters {
            let iter_span = self.recorder.span("iteration");
            iter_span.attr_int("index", iter as i64);
            let report = self.tools.compile(&[
                HdlFile::new(task.dut_file_name(), rtl.clone()),
                HdlFile::new(task.tb_file_name(), tb.clone()),
            ]);
            iter_span.attr_int("errors", report.error_count() as i64);
            trace.push(
                Stage::RtlSyntaxLoop,
                TraceEventKind::Compile,
                format!("compile: {} error(s)", report.error_count()),
                0.0,
                report.modeled_latency,
            );
            if report.success {
                syntax_pass = true;
                break;
            }
            if trace.iterations(Stage::RtlSyntaxLoop) >= self.config.max_syntax_iters {
                break;
            }
            let corrective = self.syntax_corrective(&report, &rtl, "RTL module");
            let Some(gen) = with_retries(
                &policy,
                &mut breaker,
                &mut trace,
                &mut counters,
                &self.recorder,
                Stage::RtlSyntaxLoop,
                task.seed,
                "revise RTL",
                |attempt| {
                    agent.set_attempt(attempt);
                    agent.revise(corrective.clone())
                },
            ) else {
                // Degrade: keep the last RTL revision; `syntax_pass`
                // stays false.
                break;
            };
            trace.push(
                Stage::RtlSyntaxLoop,
                TraceEventKind::Revise,
                "revise after syntax feedback",
                gen.latency_s,
                0.0,
            );
            rtl = gen.code;
        }
        drop(rtl_loop_span);

        // -- Steps ⑤–⑧: the functional loop (only for compiling designs).
        // The Code Agent keeps every version; when a revision makes the
        // failure count strictly worse, the loop rolls the conversation
        // back to the best version seen so far (Sec. 3.1).
        let mut functional_pass = false;
        let mut best: Option<(usize, usize)> = None; // (failure count, version index)
        let func_loop_span = self.recorder.span("stage.functional_loop");
        if syntax_pass {
            for iter in 0..=self.config.max_functional_iters {
                let iter_span = self.recorder.span("iteration");
                iter_span.attr_int("index", iter as i64);
                let report = self.tools.simulate(
                    &[
                        HdlFile::new(task.dut_file_name(), rtl.clone()),
                        HdlFile::new(task.tb_file_name(), tb.clone()),
                    ],
                    Some("tb"),
                );
                if iter_span.is_recording() {
                    iter_span.attr_bool("passed", report.passed);
                    iter_span.attr_int("failures", report.failures.len() as i64);
                }
                if report.diverged.is_some() {
                    counters.sim_diverged += 1;
                }
                trace.push(
                    Stage::FunctionalLoop,
                    TraceEventKind::Simulate,
                    format!(
                        "simulate: {}",
                        if report.passed {
                            "all tests passed".to_string()
                        } else if !report.compiled {
                            // Distinguish a compile-broken revision from a
                            // compiled run with zero extracted failures, so
                            // trace consumers can trust the failure counts.
                            "revision failed to compile".to_string()
                        } else if let Some(diverged) = &report.diverged {
                            format!("watchdog abort ({})", diverged.limit)
                        } else {
                            format!("{} failing test case(s)", report.failures.len())
                        }
                    ),
                    0.0,
                    report.modeled_latency,
                );
                if self.verification.all_tests_passed(&report) {
                    functional_pass = true;
                    break;
                }
                let failures = if report.compiled {
                    report.failures.len()
                } else {
                    usize::MAX
                };
                // The agent produced at least the testbench and RTL to
                // reach this loop, but guard the underflow anyway now
                // that generations can fail.
                let current_version = agent.versions().len().saturating_sub(1);
                match best {
                    Some((best_failures, best_version)) if failures > best_failures => {
                        agent.rollback_to(best_version);
                        rtl = agent.versions()[best_version].clone();
                        trace.push(
                            Stage::FunctionalLoop,
                            TraceEventKind::Rollback,
                            format!(
                                "rollback: revision regressed to {} failure(s); restored version {}",
                                if failures == usize::MAX {
                                    "compile-breaking".to_string()
                                } else {
                                    failures.to_string()
                                },
                                best_version
                            ),
                            0.0,
                            0.0,
                        );
                    }
                    _ => best = Some((failures, current_version)),
                }
                if trace.iterations(Stage::FunctionalLoop) >= self.config.max_functional_iters {
                    break;
                }
                // A revision may have broken compilation again; route the
                // failure to the appropriate agent.
                let corrective = if report.compiled {
                    match self.config.prompt_detail {
                        PromptDetail::Detailed => self.verification.corrective_prompt(&report),
                        PromptDetail::ErrorsOnly => {
                            self.verification.corrective_prompt_brief(&report)
                        }
                    }
                } else {
                    syntax_pass = false;
                    self.review
                        .corrective_prompt_from_sim(&report, &rtl, "RTL module")
                };
                let Some(gen) = with_retries(
                    &policy,
                    &mut breaker,
                    &mut trace,
                    &mut counters,
                    &self.recorder,
                    Stage::FunctionalLoop,
                    task.seed,
                    "revise after simulation",
                    |attempt| {
                        agent.set_attempt(attempt);
                        agent.revise(corrective.clone())
                    },
                ) else {
                    // Degrade to the best version seen so far instead of
                    // aborting the run (the current `rtl` was just
                    // evaluated and recorded in `best` unless worse).
                    if let Some((_, best_version)) = best {
                        if best_version + 1 < agent.versions().len() {
                            agent.rollback_to(best_version);
                            rtl = agent.versions()[best_version].clone();
                            trace.push(
                                Stage::FunctionalLoop,
                                TraceEventKind::Rollback,
                                format!("rollback: degraded to best-so-far version {best_version}"),
                                0.0,
                                0.0,
                            );
                        }
                    }
                    break;
                };
                trace.push(
                    Stage::FunctionalLoop,
                    TraceEventKind::Revise,
                    "revise after functional feedback",
                    gen.latency_s,
                    0.0,
                );
                rtl = gen.code;
                if !syntax_pass {
                    // Re-established below if the next compile succeeds.
                    syntax_pass = true;
                }
            }
        }
        drop(func_loop_span);

        counters.breaker_opens = breaker.opens();
        if self.recorder.is_enabled() {
            self.record_run_metrics(&trace, syntax_pass, functional_pass, &counters);
        }
        RunResult {
            final_rtl: rtl,
            final_tb: tb,
            syntax_pass,
            functional_pass,
            trace,
            resilience: counters,
        }
    }

    /// Assembles the structured-failure result for a run the pipeline
    /// had to abandon early (exhausted retries, open breaker, or an
    /// unusable generation). Nothing panics and nothing is lost: the
    /// trace carries the [`TraceEventKind::Degraded`] record and the
    /// partial artefacts are returned as-is.
    fn degraded_result(
        &self,
        rtl: String,
        tb: String,
        trace: RunTrace,
        mut counters: ResilienceCounters,
        breaker: &CircuitBreaker,
    ) -> RunResult {
        counters.breaker_opens = breaker.opens();
        if self.recorder.is_enabled() {
            self.record_run_metrics(&trace, false, false, &counters);
        }
        RunResult {
            final_rtl: rtl,
            final_tb: tb,
            syntax_pass: false,
            functional_pass: false,
            trace,
            resilience: counters,
        }
    }

    /// End-of-run pipeline counters (only called when recording).
    fn record_run_metrics(
        &self,
        trace: &RunTrace,
        syntax_pass: bool,
        functional_pass: bool,
        res: &ResilienceCounters,
    ) {
        let rec = &self.recorder;
        rec.counter_add("pipeline_runs_total", &[("flow", "aivril2")], 1);
        rec.counter_add(
            "pipeline_pass_total",
            &[("check", "syntax")],
            u64::from(syntax_pass),
        );
        rec.counter_add(
            "pipeline_pass_total",
            &[("check", "functional")],
            u64::from(functional_pass),
        );
        for (label, stage) in [
            ("tb_syntax", Stage::TbSyntaxLoop),
            ("rtl_syntax", Stage::RtlSyntaxLoop),
            ("functional", Stage::FunctionalLoop),
        ] {
            rec.counter_add(
                "pipeline_iterations_total",
                &[("loop", label)],
                u64::from(trace.iterations(stage)),
            );
        }
        let rollbacks = trace
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Rollback)
            .count() as u64;
        rec.counter_add("pipeline_rollbacks_total", &[], rollbacks);
        // Diagnostic-only resilience series (`resilience_` prefix, like
        // `eda_cache_`): emitted only when something actually fired, so
        // fault-free telemetry stays byte-identical.
        for (name, value) in [
            ("resilience_retries_total", u64::from(res.retries)),
            ("resilience_degraded_total", u64::from(res.degraded)),
            (
                "resilience_breaker_opens_total",
                u64::from(res.breaker_opens),
            ),
            ("resilience_sim_diverged_total", u64::from(res.sim_diverged)),
        ] {
            if value > 0 {
                rec.counter_add(name, &[], value);
            }
        }
    }
}

/// The zero-shot baseline: a single generation, no tools in the loop —
/// the per-model baseline rows of Table 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineFlow;

impl BaselineFlow {
    /// Creates the baseline flow.
    #[must_use]
    pub fn new() -> BaselineFlow {
        BaselineFlow
    }

    /// Generates RTL once; no feedback of any kind. Transport faults are
    /// retried under the same policy as the full pipeline; if the budget
    /// is exhausted the baseline degrades to an empty artefact (scored
    /// as a failure) instead of panicking.
    pub fn run(
        &self,
        model: &mut dyn LanguageModel,
        task: &TaskInput,
        config: &Aivril2Config,
    ) -> RunResult {
        let mut trace = RunTrace::default();
        let policy = config.resilience;
        let mut counters = ResilienceCounters::default();
        let mut breaker = CircuitBreaker::new(&policy);
        let recorder = Recorder::disabled();
        let mut agent = CodeAgent::new(model, task, config.gen_params);
        let gen = with_retries(
            &policy,
            &mut breaker,
            &mut trace,
            &mut counters,
            &recorder,
            Stage::RtlGeneration,
            task.seed,
            "zero-shot RTL generation",
            |attempt| {
                agent.set_attempt(attempt);
                agent.generate_rtl(task, "(no testbench available)")
            },
        );
        counters.breaker_opens = breaker.opens();
        let Some(gen) = gen else {
            return RunResult {
                final_rtl: String::new(),
                final_tb: String::new(),
                syntax_pass: false,
                functional_pass: false,
                trace,
                resilience: counters,
            };
        };
        trace.push(
            Stage::RtlGeneration,
            TraceEventKind::Generation,
            "zero-shot RTL generation",
            gen.latency_s,
            0.0,
        );
        RunResult {
            final_rtl: gen.code,
            final_tb: String::new(),
            syntax_pass: false,
            functional_pass: false,
            trace,
            resilience: counters,
        }
    }
}

impl ReviewAgent {
    /// Adapts a failed-compile simulation report into the syntax
    /// corrective format (used when a functional-loop revision broke
    /// compilation).
    #[must_use]
    pub fn corrective_prompt_from_sim(
        &self,
        report: &aivril_eda::SimReport,
        source: &str,
        artifact: &str,
    ) -> String {
        let compile_report = aivril_eda::CompileReport {
            success: report.compiled,
            log: report.log.clone(),
            messages: report.compile_messages.clone(),
            modeled_latency: 0.0,
        };
        self.corrective_prompt(&compile_report, source, artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aivril_eda::XsimToolSuite;
    use aivril_llm::{profiles, SimLlm, TaskLibrary};

    const DUT: &str =
        "module inv(\n  input wire a,\n  output wire y\n);\n  assign y = ~a;\nendmodule\n";
    const TB: &str = "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0;\n    #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n    a = 1;\n    #1;\n    if (y !== 1'b0) $error(\"Test Case 2 Failed: y should be 0\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";

    fn library() -> TaskLibrary {
        let mut lib = TaskLibrary::new();
        lib.add_task(
            "inv",
            DUT,
            TB,
            "entity inv is end entity;\n",
            "entity tb is end entity;\n",
        );
        lib
    }

    fn task(seed: u64) -> TaskInput {
        TaskInput {
            name: "inv".into(),
            module_name: "inv".into(),
            spec: "The module inv has a single 1-bit input a and a single 1-bit \
                   output y. The output y is the logical inverse (complement) of \
                   the input a at all times; the module is purely combinational."
                .into(),
            verilog: true,
            seed,
        }
    }

    #[test]
    fn pipeline_converges_over_many_seeds() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library());
        let mut syntax_ok = 0;
        let mut func_ok = 0;
        for seed in 0..40 {
            let r = pipeline.run(&mut model, &task(seed));
            syntax_ok += u32::from(r.syntax_pass);
            func_ok += u32::from(r.functional_pass);
            assert!(!r.final_rtl.is_empty());
            assert!(!r.final_tb.is_empty());
        }
        // Claude profile: syntax loop converges essentially always;
        // functional pass lands well above the ~66% zero-shot rate.
        assert!(syntax_ok >= 38, "syntax_ok={syntax_ok}");
        assert!(func_ok >= 25, "func_ok={func_ok}");
    }

    #[test]
    fn trace_records_all_stages() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library());
        let r = pipeline.run(&mut model, &task(1));
        let stages: Vec<Stage> = r.trace.events.iter().map(|e| e.stage).collect();
        assert!(stages.contains(&Stage::TbGeneration));
        assert!(stages.contains(&Stage::TbSyntaxLoop));
        assert!(stages.contains(&Stage::RtlGeneration));
        assert!(stages.contains(&Stage::RtlSyntaxLoop));
        assert!(r.trace.total_latency() > 0.0);
    }

    #[test]
    fn weak_model_still_recovers_some_tasks() {
        // Llama3 on VHDL is the paper's stress case: 1.28% baseline
        // syntax. The loop must still recover a meaningful share.
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let vdut = "entity inv is\n  port (a : in std_logic; y : out std_logic);\nend entity;\n\narchitecture rtl of inv is\nbegin\n  y <= not a;\nend architecture;\n";
        let vtb = "entity tb is\nend entity;\n\narchitecture sim of tb is\n  signal a, y : std_logic;\nbegin\n  dut: entity work.inv port map (a => a, y => y);\n  stim: process\n  begin\n    a <= '0';\n    wait for 1 ns;\n    assert y = '1' report \"Test Case 1 Failed: y should be 1\" severity error;\n    report \"All tests passed successfully!\" severity note;\n    wait;\n  end process;\nend architecture;\n";
        let mut lib = TaskLibrary::new();
        lib.add_task("inv", DUT, TB, vdut, vtb);
        let mut model = SimLlm::new(profiles::llama3_70b(), lib);
        let mut syntax_ok = 0;
        for seed in 0..30 {
            let t = TaskInput {
                verilog: false,
                ..task(seed)
            };
            let r = pipeline.run(&mut model, &t);
            syntax_ok += u32::from(r.syntax_pass);
        }
        // Target shape: well above the 1.28% baseline, well below 100%.
        assert!(syntax_ok >= 8, "syntax_ok={syntax_ok}");
        assert!(syntax_ok <= 28, "syntax_ok={syntax_ok}");
    }

    #[test]
    fn baseline_flow_is_single_shot() {
        let mut model = SimLlm::new(profiles::gpt4o(), library());
        let r = BaselineFlow::new().run(&mut model, &task(3), &Aivril2Config::default());
        assert_eq!(r.trace.events.len(), 1);
        assert!(r.final_tb.is_empty());
        assert!(!r.final_rtl.is_empty());
    }

    #[test]
    fn functional_loop_iterations_are_bounded() {
        let tools = XsimToolSuite::new();
        let config = Aivril2Config {
            max_functional_iters: 2,
            ..Aivril2Config::default()
        };
        let pipeline = Aivril2::new(&tools, config);
        let mut model = SimLlm::new(profiles::llama3_70b(), library());
        for seed in 0..10 {
            let r = pipeline.run(&mut model, &task(seed));
            assert!(r.trace.iterations(Stage::FunctionalLoop) <= 2);
            assert!(r.trace.iterations(Stage::RtlSyntaxLoop) <= 5);
        }
    }
}

#[cfg(test)]
mod rollback_tests {
    use super::*;
    use aivril_eda::XsimToolSuite;
    use aivril_llm::{ChatRequest, ChatResponse, LanguageModel, TokenUsage};

    /// Scripted model: returns canned replies in order, ignoring history.
    struct Scripted {
        replies: Vec<&'static str>,
        at: usize,
    }

    impl LanguageModel for Scripted {
        fn name(&self) -> &str {
            "scripted"
        }
        fn chat(&mut self, _request: &ChatRequest) -> Result<ChatResponse, aivril_llm::LlmError> {
            let content = self.replies[self.at.min(self.replies.len() - 1)].to_string();
            self.at += 1;
            Ok(ChatResponse {
                content: format!("```verilog\n{content}```"),
                usage: TokenUsage::default(),
                latency_s: 1.0,
            })
        }
    }

    const TB: &str = "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0; #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n    a = 1; #1;\n    if (y !== 1'b0) $error(\"Test Case 2 Failed: y should be 0\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";
    // One failure (fails only the a=1 case).
    const V1: &str = "module inv(input wire a, output wire y);\n  assign y = 1'b1;\nendmodule\n";
    // Two failures — a regression that must trigger rollback.
    const V2: &str = "module inv(input wire a, output wire y);\n  assign y = a;\nendmodule\n";
    // Correct.
    const V3: &str = "module inv(input wire a, output wire y);\n  assign y = ~a;\nendmodule\n";

    #[test]
    fn functional_loop_rolls_back_regressions() {
        let mut model = Scripted {
            replies: vec![TB, V1, V2, V3],
            at: 0,
        };
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let task = TaskInput {
            name: "inv".into(),
            module_name: "inv".into(),
            spec: "y is the logical inverse of a".into(),
            verilog: true,
            seed: 0,
        };
        let result = pipeline.run(&mut model, &task);
        assert!(
            result.functional_pass,
            "trace:\n{}",
            result.trace.narration()
        );
        let narration = result.trace.narration();
        assert!(
            narration.contains("rollback: revision regressed to 2 failure(s)"),
            "expected a rollback event, got:\n{narration}"
        );
        assert_eq!(result.final_rtl, V3);
    }
}

#[cfg(test)]
mod resilience_tests {
    use super::*;
    use aivril_eda::XsimToolSuite;
    use aivril_llm::{profiles, FaultConfig, SimLlm, TaskLibrary};

    const DUT: &str =
        "module inv(\n  input wire a,\n  output wire y\n);\n  assign y = ~a;\nendmodule\n";
    const TB: &str = "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0;\n    #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";

    fn library() -> TaskLibrary {
        let mut lib = TaskLibrary::new();
        lib.add_task(
            "inv",
            DUT,
            TB,
            "entity inv is end entity;\n",
            "entity tb is end entity;\n",
        );
        lib
    }

    fn task(seed: u64) -> TaskInput {
        TaskInput {
            name: "inv".into(),
            module_name: "inv".into(),
            spec: "The module inv has a single 1-bit input a and a single 1-bit \
                   output y. The output y is the logical inverse (complement) of \
                   the input a at all times; the module is purely combinational."
                .into(),
            verilog: true,
            seed,
        }
    }

    fn degraded_events(r: &RunResult) -> usize {
        r.trace
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Degraded)
            .count()
    }

    /// Regression (satellite): a fault-free model over an *empty* task
    /// library answers in prose. The run must come back as a structured
    /// failure — typed Degraded event, zero passes — not a panic.
    #[test]
    fn empty_task_library_returns_structured_failure() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::claude35_sonnet(), TaskLibrary::new());
        let r = pipeline.run(&mut model, &task(1));
        assert!(!r.syntax_pass);
        assert!(!r.functional_pass);
        assert!(degraded_events(&r) >= 1, "{}", r.trace.narration());
        assert!(r.resilience.degraded >= 1);
        assert!(r.trace.narration().contains("unusable"));
    }

    /// Regression (satellite): a known task whose golden source for the
    /// requested language is missing (empty) yields an empty fenced
    /// block — also a structured failure, not a panic.
    #[test]
    fn missing_golden_rtl_returns_structured_failure() {
        let mut lib = TaskLibrary::new();
        lib.add_task("inv", DUT, TB, "", "");
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::claude35_sonnet(), lib);
        let t = TaskInput {
            verilog: false,
            ..task(1)
        };
        let r = pipeline.run(&mut model, &t);
        assert!(!r.syntax_pass);
        assert!(!r.functional_pass);
        assert!(r.resilience.degraded >= 1, "{}", r.trace.narration());
    }

    /// The baseline flow degrades the same way instead of panicking.
    #[test]
    fn baseline_with_empty_library_does_not_panic() {
        let mut model = SimLlm::new(profiles::gpt4o(), TaskLibrary::new());
        let r = BaselineFlow::new().run(&mut model, &task(2), &Aivril2Config::default());
        assert!(!r.functional_pass);
    }

    /// Transient transport faults are absorbed by retry/backoff: every
    /// run completes, retries are counted, and the success rate stays in
    /// the model's normal band.
    #[test]
    fn transport_faults_are_retried_to_success() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let faults = FaultConfig {
            timeout: 0.15,
            rate_limit: 0.1,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(faults);
        let mut retries = 0;
        let mut func_ok = 0;
        let mut backoff = 0.0;
        for seed in 0..25 {
            let r = pipeline.run(&mut model, &task(seed));
            retries += r.resilience.retries;
            backoff += r.resilience.backoff_s;
            func_ok += u32::from(r.functional_pass);
        }
        assert!(retries > 0, "25% fault rate must trigger retries");
        assert!(backoff > 0.0, "retries carry modeled backoff");
        assert!(func_ok >= 15, "func_ok={func_ok}: faults must be absorbed");
    }

    /// A permanently failing backend trips the breaker and the run comes
    /// back degraded, with the schedule recorded — never a panic.
    #[test]
    fn persistent_faults_open_the_breaker_and_degrade() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let faults = FaultConfig {
            timeout: 1.0,
            ..FaultConfig::off()
        };
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library()).with_faults(faults);
        let r = pipeline.run(&mut model, &task(3));
        assert!(!r.syntax_pass);
        assert!(!r.functional_pass);
        assert!(r.final_rtl.is_empty());
        assert!(r.resilience.degraded >= 1);
        assert!(r.resilience.breaker_opens >= 1, "{:?}", r.resilience);
        assert!(r.resilience.llm_faults > r.resilience.retries);
        assert!(r.trace.total_latency() > 0.0, "faults consume modeled time");
    }

    /// The whole fault/retry/breaker schedule is a pure function of the
    /// run: two identical runs replay bit-identically.
    #[test]
    fn fault_schedules_replay_bit_identically() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let faults = FaultConfig::uniform(0.1);
        for seed in 0..10 {
            let mut m1 = SimLlm::new(profiles::llama3_70b(), library()).with_faults(faults);
            let mut m2 = SimLlm::new(profiles::llama3_70b(), library()).with_faults(faults);
            let a = pipeline.run(&mut m1, &task(seed));
            let b = pipeline.run(&mut m2, &task(seed));
            assert_eq!(a.trace.narration(), b.trace.narration(), "seed {seed}");
            assert_eq!(
                a.trace.total_latency().to_bits(),
                b.trace.total_latency().to_bits(),
                "seed {seed}"
            );
            assert_eq!(a.resilience, b.resilience, "seed {seed}");
        }
    }

    /// Fault-free runs never touch the resilience machinery: counters
    /// all-zero and no Retry/Degraded events in the trace.
    #[test]
    fn fault_free_runs_have_zero_resilience_counters() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::claude35_sonnet(), library());
        for seed in 0..10 {
            let r = pipeline.run(&mut model, &task(seed));
            assert_eq!(r.resilience, ResilienceCounters::default(), "seed {seed}");
            assert!(!r
                .trace
                .events
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::Retry | TraceEventKind::Degraded)));
        }
    }
}

#[cfg(test)]
mod clarification_tests {
    use super::*;
    use crate::user::StaticUser;
    use aivril_eda::XsimToolSuite;
    use aivril_llm::{profiles, SimLlm, TaskLibrary};

    const DUT: &str =
        "module inv(\n  input wire a,\n  output wire y\n);\n  assign y = ~a;\nendmodule\n";
    const TB: &str = "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0;\n    #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n";

    fn model() -> SimLlm {
        let mut lib = TaskLibrary::new();
        lib.add_task("inv", DUT, TB, "", "");
        SimLlm::new(profiles::claude35_sonnet(), lib)
    }

    #[test]
    fn underspecified_prompt_triggers_dialogue() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        // The prompt omits the task header the model needs.
        let task = TaskInput {
            name: "inv".into(),
            module_name: "inv".into(),
            spec: "please build an inverter".into(),
            verilog: true,
            seed: 3,
        };
        let user = StaticUser::new(
            "Design task: inv.\nImplement a module named `inv` whose output y \
             is the logical inverse of input a. The module is combinational.",
        );
        // Compare across seeds: whenever the clarified run verifies, the
        // blind run of the same seed must not (the vague prompt costs
        // unrepairable functional faults). The clarified flow succeeds on
        // most seeds; require at least half.
        let mut clarified_wins = 0;
        for seed in 0..8 {
            let task = TaskInput {
                seed,
                ..task.clone()
            };
            let mut m = model();
            let blind = pipeline.run(&mut m, &task);
            assert!(
                !blind.functional_pass,
                "seed {seed}: blind run must fail\n{}",
                blind.trace.narration()
            );
            assert!(blind.trace.narration().contains("no answer"));
            let mut m = model();
            let clarified = pipeline.run_with_user(&mut m, &task, &user);
            assert!(clarified
                .trace
                .narration()
                .contains("user supplied additional detail"));
            clarified_wins += u32::from(clarified.functional_pass);
        }
        assert!(
            clarified_wins >= 4,
            "clarified runs won only {clarified_wins}/8"
        );
    }

    #[test]
    fn sufficient_prompt_skips_dialogue() {
        let tools = XsimToolSuite::new();
        let pipeline = Aivril2::new(&tools, Aivril2Config::default());
        let task = TaskInput {
            name: "inv".into(),
            module_name: "inv".into(),
            spec: "Design task: inv.\nOutput y of `inv` is the inverse of a.".into(),
            verilog: true,
            seed: 3,
        };
        let mut m = model();
        let r = pipeline.run_with_user(&mut m, &task, &StaticUser::new("ignored"));
        assert!(!r.trace.narration().contains("clarification"));
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use aivril_eda::{EdaCache, XsimToolSuite};
    use aivril_llm::{profiles, SimLlm, TaskLibrary};

    fn library() -> TaskLibrary {
        let mut lib = TaskLibrary::new();
        lib.add_task(
            "inv",
            "module inv(\n  input wire a,\n  output wire y\n);\n  assign y = ~a;\nendmodule\n",
            "module tb;\n  reg a;\n  wire y;\n  inv dut(.a(a), .y(y));\n  initial begin\n    a = 0;\n    #1;\n    if (y !== 1'b1) $error(\"Test Case 1 Failed: y should be 1\");\n    $display(\"All tests passed successfully!\");\n    $finish;\n  end\nendmodule\n",
            "entity inv is end entity;\n",
            "entity tb is end entity;\n",
        );
        lib
    }

    fn run(tools: &XsimToolSuite, seed: u64) -> RunResult {
        let pipeline = Aivril2::new(tools, Aivril2Config::default());
        let mut model = SimLlm::new(profiles::llama3_70b(), library());
        pipeline.run(
            &mut model,
            &TaskInput {
                name: "inv".into(),
                module_name: "inv".into(),
                spec: "y is the logical inverse of a".into(),
                verilog: true,
                seed,
            },
        )
    }

    /// The cache must be invisible to the pipeline: every decision the
    /// loops make (iteration counts, rollbacks, final sources) and every
    /// modeled latency in the trace is bit-identical with and without it.
    #[test]
    fn pipeline_runs_are_bit_identical_with_and_without_cache() {
        let plain = XsimToolSuite::new();
        let cached = XsimToolSuite::new().with_cache(EdaCache::new());
        for seed in 0..12 {
            let a = run(&plain, seed);
            let b = run(&cached, seed);
            assert_eq!(a.final_rtl, b.final_rtl, "seed {seed}");
            assert_eq!(a.final_tb, b.final_tb, "seed {seed}");
            assert_eq!(a.syntax_pass, b.syntax_pass, "seed {seed}");
            assert_eq!(a.functional_pass, b.functional_pass, "seed {seed}");
            assert_eq!(a.trace.narration(), b.trace.narration(), "seed {seed}");
            assert_eq!(
                a.trace.total_latency().to_bits(),
                b.trace.total_latency().to_bits(),
                "seed {seed}: modeled latency must come from the cached report"
            );
        }
        // And the later seeds actually exercised the cache (the fixed
        // testbench/golden convergence produces repeat invocations).
        let stats = cached.cache().expect("cache attached").stats();
        assert!(stats.hits > 0, "expected cross-run reuse: {stats}");
    }
}
