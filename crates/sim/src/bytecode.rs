//! Compiled expression evaluation: flat register-machine bytecode.
//!
//! The tree walker in [`crate::eval`] allocates nothing *per node*, but
//! it pays a recursive call, a `match` on a boxed node, and pointer
//! chasing for every operator on every activation — and the hot loop of
//! a simulation evaluates the same handful of expressions millions of
//! times. At [`Simulator::new`](crate::Simulator::new) each process's
//! expressions are lowered **once** into a flat [`ExprProgram`]: a
//! post-order sequence of [`Op`]s reading and writing numbered scratch
//! slots, executed by a tight non-recursive loop over a per-simulator
//! [`ScratchArena`] that is allocated once and reused for every
//! evaluation.
//!
//! Because every net's width is known at lowering time, `compile`
//! additionally infers a static width bound for each scratch slot (all
//! width rules — `max`, sum, `count * w` — are monotone in their
//! operands, so the bound holds for every dynamic evaluation). The
//! arena pre-sizes each slot's [`ScratchBuf`] to that bound once, and
//! execution then proceeds entirely in place over borrowed plane
//! slices: wide (>64-bit) operations never box a `LogicVec`, which is
//! what drives the kernel's `eval_allocs` to zero on wide datapaths. If
//! a bound is ever too small the buffer grows — correct, and *counted*,
//! so the zero-alloc claim stays honest.
//!
//! The tree interpreter stays in the crate as the semantic oracle: the
//! cold paths (`$display` arguments, `$monitor`, l-value indices) still
//! run it, and the differential property tests at the bottom of this
//! file require bit-for-bit agreement between the two on randomly
//! generated expression trees. Any divergence is a bug in *this* file —
//! the tree is the specification.
//!
//! Slot discipline: `compile_into(expr, dst)` leaves `expr`'s value in
//! slot `dst` and may scribble on any slot `> dst`. Binary operands go
//! to `dst` / `dst+1`, ternaries to `dst` / `dst+1` / `dst+2`, so the
//! arena height equals the expression tree's operand depth, not its
//! size.

use aivril_hdl::bits::{BitsRef, ScratchBuf};
use aivril_hdl::ir::{BinaryOp, Expr, NetId, UnaryOp};
use aivril_hdl::logic::Logic;
use aivril_hdl::vec::LogicVec;

/// One bytecode instruction. `dst` is the scratch slot the result is
/// written to; operand slots are fixed offsets from `dst` (see the
/// module docs).
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// `slot[dst] = value`.
    Const { dst: u32, value: LogicVec },
    /// `slot[dst] = nets[net]`.
    Net { dst: u32, net: NetId },
    /// Bit-select: the index value is already in `slot[dst]`;
    /// `slot[dst] = nets[net][index]` (X when unknown/out of range).
    Index { dst: u32, net: NetId },
    /// Part-select straight off the net: `slot[dst] = nets[net][msb:lsb]`.
    Range {
        dst: u32,
        net: NetId,
        msb: u32,
        lsb: u32,
    },
    /// `slot[dst] = op slot[dst]`.
    Unary { dst: u32, op: UnaryOp },
    /// `slot[dst] = slot[dst] op slot[dst+1]`.
    Binary { dst: u32, op: BinaryOp },
    /// Ternary select: condition in `dst`, arms in `dst+1` / `dst+2`.
    Select { dst: u32 },
    /// `slot[dst] = {slot[dst], slot[dst+1]}` (left operand is the MSBs).
    Concat2 { dst: u32 },
    /// `slot[dst] = {count{slot[dst]}}`.
    Repeat { dst: u32, count: u32 },
    /// `slot[dst] = $time` (64 bits).
    Time { dst: u32 },
    /// `slot[dst] = 1'b1` iff the wake that resumed this process was the
    /// matching edge of `net`.
    EdgeFlag { dst: u32, net: NetId, rising: bool },
}

/// A compiled expression: the op sequence, the arena height it needs,
/// and a static per-slot width bound. Executing it leaves the result in
/// slot 0.
#[derive(Debug, Clone)]
pub(crate) struct ExprProgram {
    ops: Vec<Op>,
    slots: u32,
    /// Maximum width any op result can take in each slot, inferred at
    /// compile time from the net-width environment.
    slot_widths: Vec<u32>,
}

impl ExprProgram {
    /// Scratch slots this program requires.
    #[cfg(test)]
    pub(crate) fn slots(&self) -> u32 {
        self.slots
    }

    /// Static per-slot width bounds (one entry per slot).
    #[cfg(test)]
    pub(crate) fn slot_widths(&self) -> &[u32] {
        &self.slot_widths
    }
}

/// Lowers `expr` into a flat program against the design's net widths
/// (`net_widths[net.0]`). Pure function of the expression; called once
/// per expression at simulator construction.
pub(crate) fn compile(expr: &Expr, net_widths: &[u32]) -> ExprProgram {
    let mut prog = ExprProgram {
        ops: Vec::new(),
        slots: 0,
        slot_widths: Vec::new(),
    };
    compile_into(expr, 0, net_widths, &mut prog);
    prog
}

/// Records that slot `dst` can hold a `width`-bit result.
fn note_width(prog: &mut ExprProgram, dst: u32, width: u32) {
    let d = dst as usize;
    if d >= prog.slot_widths.len() {
        prog.slot_widths.resize(d + 1, 1);
    }
    prog.slot_widths[d] = prog.slot_widths[d].max(width.max(1));
}

/// Lowers `expr` with its result in `dst`; returns the static width
/// bound of that result.
fn compile_into(expr: &Expr, dst: u32, net_widths: &[u32], prog: &mut ExprProgram) -> u32 {
    prog.slots = prog.slots.max(dst + 1);
    let net_width = |net: &NetId| net_widths.get(net.0 as usize).copied().unwrap_or(1);
    let width = match expr {
        Expr::Const(value) => {
            let w = value.width();
            prog.ops.push(Op::Const {
                dst,
                value: value.clone(),
            });
            w
        }
        Expr::Net(net) => {
            prog.ops.push(Op::Net { dst, net: *net });
            net_width(net)
        }
        Expr::Index { net, index } => {
            compile_into(index, dst, net_widths, prog);
            prog.ops.push(Op::Index { dst, net: *net });
            1
        }
        Expr::Range { net, msb, lsb } => {
            prog.ops.push(Op::Range {
                dst,
                net: *net,
                msb: *msb,
                lsb: *lsb,
            });
            msb.max(lsb) - msb.min(lsb) + 1
        }
        Expr::Unary { op, operand } => {
            let w = compile_into(operand, dst, net_widths, prog);
            prog.ops.push(Op::Unary { dst, op: *op });
            match op {
                UnaryOp::Not | UnaryOp::Negate => w,
                _ => 1,
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let wl = compile_into(lhs, dst, net_widths, prog);
            let wr = compile_into(rhs, dst + 1, net_widths, prog);
            prog.ops.push(Op::Binary { dst, op: *op });
            match op {
                BinaryOp::And
                | BinaryOp::Or
                | BinaryOp::Xor
                | BinaryOp::Xnor
                | BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::Div
                | BinaryOp::Rem => wl.max(wr),
                BinaryOp::Shl | BinaryOp::Shr => wl,
                _ => 1,
            }
        }
        Expr::Ternary { cond, then, els } => {
            // Both arms are always evaluated (expressions are pure, so
            // this is unobservable); Select picks per the tree walker's
            // exact rules, including the unknown-condition X-merge.
            compile_into(cond, dst, net_widths, prog);
            let wt = compile_into(then, dst + 1, net_widths, prog);
            let we = compile_into(els, dst + 2, net_widths, prog);
            prog.ops.push(Op::Select { dst });
            wt.max(we)
        }
        Expr::Concat(parts) => match parts.split_first() {
            None => {
                prog.ops.push(Op::Const {
                    dst,
                    value: LogicVec::zeros(1),
                });
                1
            }
            Some((first, rest)) => {
                let mut acc = compile_into(first, dst, net_widths, prog);
                for part in rest {
                    let wp = compile_into(part, dst + 1, net_widths, prog);
                    prog.ops.push(Op::Concat2 { dst });
                    acc = acc.saturating_add(wp);
                    note_width(prog, dst, acc);
                }
                acc
            }
        },
        Expr::Repeat { count, operand } => {
            let w = compile_into(operand, dst, net_widths, prog);
            let count = (*count).max(1);
            prog.ops.push(Op::Repeat { dst, count });
            w.saturating_mul(count)
        }
        Expr::Time => {
            prog.ops.push(Op::Time { dst });
            64
        }
        Expr::EdgeFlag { net, rising } => {
            prog.ops.push(Op::EdgeFlag {
                dst,
                net: *net,
                rising: *rising,
            });
            1
        }
    };
    note_width(prog, dst, width);
    width
}

/// The pre-sized wide-value scratch arena shared by every compiled
/// program of one simulator.
///
/// Slot `i` is sized to the maximum static width bound any program
/// records for slot `i`; `spare` (the staging buffer for `Repeat`) is
/// sized to the overall maximum. Sizing happens once at lowering, so
/// steady-state execution performs no heap allocation — [`allocs`]
/// reports any growth events that would falsify that claim, and
/// [`total_words`] reports the arena's high-water footprint for the
/// kernel telemetry.
///
/// [`allocs`]: Self::allocs
/// [`total_words`]: Self::total_words
#[derive(Debug, Default)]
pub(crate) struct ScratchArena {
    slots: Vec<ScratchBuf>,
    /// Staging buffer for `Repeat`'s source pattern.
    spare: ScratchBuf,
}

impl ScratchArena {
    /// Builds an arena sized for every program in `progs`.
    pub(crate) fn for_programs<'a, I>(progs: I) -> ScratchArena
    where
        I: IntoIterator<Item = &'a ExprProgram>,
    {
        let mut widths: Vec<u32> = Vec::new();
        let mut max_width = 1u32;
        for prog in progs {
            for (i, &w) in prog.slot_widths.iter().enumerate() {
                if i >= widths.len() {
                    widths.resize(i + 1, 1);
                }
                widths[i] = widths[i].max(w);
                max_width = max_width.max(w);
            }
        }
        ScratchArena {
            slots: widths.iter().map(|&w| ScratchBuf::with_width(w)).collect(),
            spare: ScratchBuf::with_width(max_width),
        }
    }

    /// Number of scratch slots.
    pub(crate) fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Total growth events across all buffers — zero on a correctly
    /// pre-sized arena.
    pub(crate) fn allocs(&self) -> u64 {
        self.slots.iter().map(ScratchBuf::grows).sum::<u64>() + self.spare.grows()
    }

    /// High-water footprint: per-plane capacity words summed over every
    /// buffer.
    pub(crate) fn total_words(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.capacity_words() as u64)
            .sum::<u64>()
            + self.spare.capacity_words() as u64
    }

    /// Borrowed view of the last executed program's result (slot 0).
    pub(crate) fn result(&self) -> BitsRef<'_> {
        self.slots[0].as_bits()
    }

    /// Owned copy of the result — test and cold-path use only.
    #[cfg(test)]
    pub(crate) fn result_vec(&self) -> LogicVec {
        self.slots[0].to_logic_vec()
    }
}

/// Runs `prog` against the current net `values`, leaving the result in
/// the arena's slot 0 (read it with [`ScratchArena::result`]).
///
/// Every op executes in place over the pre-sized slot buffers; the only
/// possible steady-state allocation is a slot outgrowing its static
/// bound, which the arena counts in [`ScratchArena::allocs`].
pub(crate) fn exec(
    prog: &ExprProgram,
    values: &[LogicVec],
    time: u64,
    last_wake: Option<NetId>,
    arena: &mut ScratchArena,
) {
    let ScratchArena { slots, spare } = arena;
    for op in &prog.ops {
        match op {
            Op::Const { dst, value } => slots[*dst as usize].load(value.as_bits()),
            Op::Net { dst, net } => slots[*dst as usize].load(values[net.0 as usize].as_bits()),
            Op::Index { dst, net } => {
                let value = &values[net.0 as usize];
                let d = *dst as usize;
                let bit = match slots[d].as_bits().to_u64() {
                    Some(i) if i < u64::from(value.width()) => value.get(i as u32),
                    _ => Logic::X,
                };
                slots[d].load_logic(bit);
            }
            Op::Range { dst, net, msb, lsb } => {
                slots[*dst as usize].slice_from(values[net.0 as usize].as_bits(), *msb, *lsb);
            }
            Op::Unary { dst, op } => {
                let v = &mut slots[*dst as usize];
                match op {
                    UnaryOp::Not => v.not_self(),
                    UnaryOp::LogicalNot => {
                        let b = match v.as_bits().to_bool() {
                            Some(b) => Logic::from_bool(!b),
                            None => Logic::X,
                        };
                        v.load_logic(b);
                    }
                    UnaryOp::Negate => v.neg_self(),
                    UnaryOp::ReduceAnd => {
                        let b = v.as_bits().reduce_and();
                        v.load_logic(b);
                    }
                    UnaryOp::ReduceOr => {
                        let b = v.as_bits().reduce_or();
                        v.load_logic(b);
                    }
                    UnaryOp::ReduceXor => {
                        let b = v.as_bits().reduce_xor();
                        v.load_logic(b);
                    }
                    UnaryOp::ReduceNand => {
                        let b = v.as_bits().reduce_and().not();
                        v.load_logic(b);
                    }
                    UnaryOp::ReduceNor => {
                        let b = v.as_bits().reduce_or().not();
                        v.load_logic(b);
                    }
                    UnaryOp::ReduceXnor => {
                        let b = v.as_bits().reduce_xor().not();
                        v.load_logic(b);
                    }
                }
            }
            Op::Binary { dst, op } => {
                let d = *dst as usize;
                let (lo, hi) = slots.split_at_mut(d + 1);
                let a = &mut lo[d];
                let b = hi[0].as_bits();
                match op {
                    BinaryOp::And => a.and_assign(b),
                    BinaryOp::Or => a.or_assign(b),
                    BinaryOp::Xor => a.xor_assign(b),
                    BinaryOp::Xnor => a.xnor_assign(b),
                    BinaryOp::Add => a.add_assign(b),
                    BinaryOp::Sub => a.sub_assign(b),
                    BinaryOp::Mul => a.mul_assign(b),
                    BinaryOp::Div => a.div_assign(b),
                    BinaryOp::Rem => a.rem_assign(b),
                    BinaryOp::Shl => a.shl_assign(b),
                    BinaryOp::Shr => a.shr_assign(b),
                    BinaryOp::Eq => {
                        let r = a.as_bits().logic_eq(b);
                        a.load_logic(r);
                    }
                    BinaryOp::Ne => {
                        let r = a.as_bits().logic_eq(b).not();
                        a.load_logic(r);
                    }
                    BinaryOp::CaseEq => {
                        let r = Logic::from_bool(a.as_bits().case_eq(b));
                        a.load_logic(r);
                    }
                    BinaryOp::CaseNe => {
                        let r = Logic::from_bool(!a.as_bits().case_eq(b));
                        a.load_logic(r);
                    }
                    BinaryOp::Lt => {
                        let r = cmp_logic(a.as_bits(), b, |o| o == std::cmp::Ordering::Less);
                        a.load_logic(r);
                    }
                    BinaryOp::Le => {
                        let r = cmp_logic(a.as_bits(), b, |o| o != std::cmp::Ordering::Greater);
                        a.load_logic(r);
                    }
                    BinaryOp::Gt => {
                        let r = cmp_logic(a.as_bits(), b, |o| o == std::cmp::Ordering::Greater);
                        a.load_logic(r);
                    }
                    BinaryOp::Ge => {
                        let r = cmp_logic(a.as_bits(), b, |o| o != std::cmp::Ordering::Less);
                        a.load_logic(r);
                    }
                    // The tree walker evaluates both operands' truth
                    // values unconditionally; with both already in
                    // slots this is the same computation.
                    BinaryOp::LogicalAnd | BinaryOp::LogicalOr => {
                        let (x, y) = (a.as_bits().to_bool(), b.to_bool());
                        let r = match (op, x, y) {
                            (BinaryOp::LogicalAnd, Some(false), _)
                            | (BinaryOp::LogicalAnd, _, Some(false)) => Logic::Zero,
                            (BinaryOp::LogicalAnd, Some(true), Some(true)) => Logic::One,
                            (BinaryOp::LogicalOr, Some(true), _)
                            | (BinaryOp::LogicalOr, _, Some(true)) => Logic::One,
                            (BinaryOp::LogicalOr, Some(false), Some(false)) => Logic::Zero,
                            _ => Logic::X,
                        };
                        a.load_logic(r);
                    }
                }
            }
            Op::Select { dst } => {
                let d = *dst as usize;
                let cond = slots[d].as_bits().to_bool();
                let (lo, hi) = slots.split_at_mut(d + 1);
                match cond {
                    // Known condition: the taken arm at its own width.
                    Some(true) => {
                        let src = hi[0].as_bits();
                        lo[d].load(src);
                    }
                    Some(false) => {
                        let src = hi[1].as_bits();
                        lo[d].load(src);
                    }
                    // IEEE 1364: merge both arms; disagreeing bits go X.
                    // Mirrors the tree walker bit for bit.
                    None => {
                        let (t, e) = (hi[0].as_bits(), hi[1].as_bits());
                        lo[d].select_merge(t, e);
                    }
                }
            }
            Op::Concat2 { dst } => {
                let d = *dst as usize;
                let (lo, hi) = slots.split_at_mut(d + 1);
                lo[d].concat_low(hi[0].as_bits());
            }
            Op::Repeat { dst, count } => slots[*dst as usize].replicate_self(*count, spare),
            Op::Time { dst } => slots[*dst as usize].load_u64(64, time),
            Op::EdgeFlag { dst, net, rising } => {
                let fired = last_wake == Some(*net) && {
                    let bit = values[net.0 as usize].get(0);
                    if *rising {
                        bit == Logic::One
                    } else {
                        bit == Logic::Zero
                    }
                };
                slots[*dst as usize].load_logic(Logic::from_bool(fired));
            }
        }
    }
}

fn cmp_logic(a: BitsRef<'_>, b: BitsRef<'_>, f: impl Fn(std::cmp::Ordering) -> bool) -> Logic {
    match a.value_cmp(b) {
        Some(ord) => Logic::from_bool(f(ord)),
        None => Logic::X,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::EvalCtx;
    use proptest::collection::vec as pvec;
    use proptest::prelude::*;
    use proptest::strategy::BoxedStrategy;

    /// Runs `expr` through both evaluators and asserts bit-for-bit
    /// agreement (width included, via `PartialEq`).
    fn check(expr: &Expr, values: &[LogicVec], time: u64, last_wake: Option<NetId>) {
        let oracle = EvalCtx {
            values,
            time,
            last_wake,
        }
        .eval(expr);
        let prog = compile(expr, &NET_WIDTHS);
        let mut arena = ScratchArena::for_programs(std::iter::once(&prog));
        exec(&prog, values, time, last_wake, &mut arena);
        assert_eq!(
            arena.result_vec(),
            oracle,
            "bytecode diverged from tree walker on {expr:?}"
        );
        assert_eq!(
            arena.allocs(),
            0,
            "statically sized arena grew at runtime on {expr:?}"
        );
    }

    /// Fixed net environment: widths chosen to cover the inline word,
    /// the boundary, and the spilled multi-word representation.
    const NET_WIDTHS: [u32; 6] = [1, 8, 16, 33, 64, 100];

    fn vec_from_masks(width: u32, aval: u64, bval: u64) -> LogicVec {
        let mut v = LogicVec::zeros(width);
        for i in 0..width.min(64) {
            v.set(i, Logic::from_avab(aval >> i & 1 == 1, bval >> i & 1 == 1));
        }
        v
    }

    fn values_strategy() -> BoxedStrategy<Vec<LogicVec>> {
        pvec(
            (0u64..=u64::MAX, 0u64..=u64::MAX),
            NET_WIDTHS.len()..=NET_WIDTHS.len(),
        )
        .prop_map(|masks| {
            NET_WIDTHS
                .iter()
                .zip(masks)
                .map(|(&w, (a, b))| vec_from_masks(w, a, b))
                .collect()
        })
        .boxed()
    }

    fn net_id_strategy() -> BoxedStrategy<NetId> {
        (0u32..NET_WIDTHS.len() as u32).prop_map(NetId).boxed()
    }

    fn leaf_strategy() -> BoxedStrategy<Expr> {
        prop_oneof![
            (1u32..=80, 0u64..=u64::MAX, 0u64..=u64::MAX)
                .prop_map(|(w, a, b)| Expr::Const(vec_from_masks(w, a, b))),
            net_id_strategy().prop_map(Expr::Net),
            (net_id_strategy(), 0u32..110, 0u32..110).prop_map(|(net, a, b)| Expr::Range {
                net,
                msb: a.max(b),
                lsb: a.min(b),
            }),
            Just(Expr::Time),
            (net_id_strategy(), 0u32..=1).prop_map(|(net, r)| Expr::EdgeFlag {
                net,
                rising: r == 1
            }),
        ]
        .boxed()
    }

    const UNARY_OPS: [UnaryOp; 9] = [
        UnaryOp::Not,
        UnaryOp::LogicalNot,
        UnaryOp::Negate,
        UnaryOp::ReduceAnd,
        UnaryOp::ReduceOr,
        UnaryOp::ReduceXor,
        UnaryOp::ReduceNand,
        UnaryOp::ReduceNor,
        UnaryOp::ReduceXnor,
    ];

    const BINARY_OPS: [BinaryOp; 21] = [
        BinaryOp::And,
        BinaryOp::Or,
        BinaryOp::Xor,
        BinaryOp::Xnor,
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Rem,
        BinaryOp::Shl,
        BinaryOp::Shr,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::CaseEq,
        BinaryOp::CaseNe,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::LogicalAnd,
        BinaryOp::LogicalOr,
    ];

    /// Random expression trees of bounded depth over the fixed nets.
    fn expr_strategy(depth: u32) -> BoxedStrategy<Expr> {
        if depth == 0 {
            return leaf_strategy();
        }
        let sub = move || expr_strategy(depth - 1);
        prop_oneof![
            leaf_strategy(),
            (0usize..UNARY_OPS.len(), sub()).prop_map(|(i, operand)| Expr::Unary {
                op: UNARY_OPS[i],
                operand: Box::new(operand),
            }),
            (0usize..BINARY_OPS.len(), sub(), sub()).prop_map(|(i, lhs, rhs)| Expr::Binary {
                op: BINARY_OPS[i],
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            }),
            (sub(), sub(), sub()).prop_map(|(cond, then, els)| Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                els: Box::new(els),
            }),
            pvec(sub(), 1..=3).prop_map(Expr::Concat),
            (1u32..=3, sub()).prop_map(|(count, operand)| Expr::Repeat {
                count,
                operand: Box::new(operand),
            }),
            (net_id_strategy(), sub()).prop_map(|(net, index)| Expr::Index {
                net,
                index: Box::new(index),
            }),
        ]
        .boxed()
    }

    fn last_wake_strategy() -> BoxedStrategy<Option<NetId>> {
        (0u32..=NET_WIDTHS.len() as u32)
            .prop_map(|i| (i as usize != NET_WIDTHS.len()).then_some(NetId(i)))
            .boxed()
    }

    proptest! {
        /// Satellite: compiled bytecode must agree with the tree
        /// interpreter bit-for-bit on arbitrary expression trees — and
        /// the statically sized arena must absorb every intermediate
        /// without growing.
        #[test]
        fn bytecode_matches_tree_interpreter(
            expr in expr_strategy(3),
            values in values_strategy(),
            time in 0u64..1_000_000,
            last_wake in last_wake_strategy(),
        ) {
            check(&expr, &values, time, last_wake);
        }

        /// Deep, narrow trees stress the slot allocator (operand depth
        /// beyond what random shapes usually reach).
        #[test]
        fn deep_chains_match(
            expr in expr_strategy(5),
            values in values_strategy(),
        ) {
            check(&expr, &values, 7, None);
        }
    }

    #[test]
    fn inline_only_programs_run_without_allocation() {
        // (n1 + 8'd3) ^ (n2 >> 2) over <=64-bit nets.
        let expr = Expr::Binary {
            op: BinaryOp::Xor,
            lhs: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::Net(NetId(1))),
                rhs: Box::new(Expr::constant(8, 3)),
            }),
            rhs: Box::new(Expr::Binary {
                op: BinaryOp::Shr,
                lhs: Box::new(Expr::Net(NetId(2))),
                rhs: Box::new(Expr::constant(8, 2)),
            }),
        };
        let values: Vec<LogicVec> = NET_WIDTHS
            .iter()
            .map(|&w| LogicVec::from_u64(w, 0x5a))
            .collect();
        let prog = compile(&expr, &NET_WIDTHS);
        let mut arena = ScratchArena::for_programs(std::iter::once(&prog));
        for _ in 0..100 {
            exec(&prog, &values, 0, None, &mut arena);
        }
        assert_eq!(arena.allocs(), 0, "no growth events may occur");
    }

    #[test]
    fn wide_programs_run_without_allocation() {
        // The zero-alloc tentpole: a 100-bit add used to spill three
        // boxed values per evaluation; the pre-sized arena does not
        // touch the heap at all.
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(NetId(5))), // 100-bit net
            rhs: Box::new(Expr::constant(100, 1)),
        };
        let values: Vec<LogicVec> = NET_WIDTHS
            .iter()
            .map(|&w| LogicVec::from_u64(w, 1))
            .collect();
        let prog = compile(&expr, &NET_WIDTHS);
        let mut arena = ScratchArena::for_programs(std::iter::once(&prog));
        for _ in 0..1000 {
            exec(&prog, &values, 0, None, &mut arena);
        }
        assert_eq!(arena.allocs(), 0, "wide ops must stay in the arena");
        assert_eq!(arena.result_vec().to_u64(), Some(2));
    }

    #[test]
    fn understated_widths_grow_and_are_counted() {
        // Compiling against an empty width environment understates the
        // 100-bit net as 1 bit; execution must still be correct, with
        // the growth honestly counted.
        let expr = Expr::Binary {
            op: BinaryOp::Add,
            lhs: Box::new(Expr::Net(NetId(5))),
            rhs: Box::new(Expr::Net(NetId(5))),
        };
        let values: Vec<LogicVec> = NET_WIDTHS
            .iter()
            .map(|&w| LogicVec::from_u64(w, 1))
            .collect();
        let prog = compile(&expr, &[]);
        let mut arena = ScratchArena::for_programs(std::iter::once(&prog));
        exec(&prog, &values, 0, None, &mut arena);
        assert_eq!(arena.result_vec().to_u64(), Some(2));
        assert!(arena.allocs() > 0, "under-sized slots must count growth");
    }

    #[test]
    fn slot_heights_are_depth_not_size() {
        // A left-leaning chain of adds reuses slot 1 for every rhs.
        let mut expr = Expr::constant(8, 1);
        for i in 2..30u64 {
            expr = Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(expr),
                rhs: Box::new(Expr::constant(8, i)),
            };
        }
        let prog = compile(&expr, &NET_WIDTHS);
        assert_eq!(prog.slots(), 2);
        assert_eq!(prog.slot_widths(), &[8, 8]);
    }

    #[test]
    fn empty_concat_compiles_to_one_bit_zero() {
        let prog = compile(&Expr::Concat(vec![]), &[]);
        let mut arena = ScratchArena::for_programs(std::iter::once(&prog));
        exec(&prog, &[], 0, None, &mut arena);
        assert_eq!(arena.result_vec(), LogicVec::zeros(1));
    }
}
