//! Verilog integer-literal parsing (`8'hFF`, `4'b10xz`, `42`).

use aivril_hdl::diag::{codes, Diagnostic, Diagnostics};
use aivril_hdl::logic::Logic;
use aivril_hdl::source::Span;
use aivril_hdl::vec::LogicVec;

/// Parses a literal's text into a [`LogicVec`], reporting malformed
/// literals to `diags` and substituting zero so elaboration can continue.
pub fn parse_literal(text: &str, span: Span, diags: &mut Diagnostics) -> LogicVec {
    match try_parse_literal(text) {
        Some(v) => v,
        None => {
            diags.push(Diagnostic::error(
                codes::VLOG_SYNTAX,
                format!("malformed number literal '{text}'"),
                span,
            ));
            LogicVec::zeros(32)
        }
    }
}

/// Pure parsing helper; `None` when the text is not a valid literal.
#[must_use]
pub fn try_parse_literal(text: &str) -> Option<LogicVec> {
    let text = text.replace('_', "");
    match text.find('\'') {
        None => {
            let v: u64 = text.parse().ok()?;
            Some(LogicVec::from_u64(32, v))
        }
        Some(tick) => {
            let size: u32 = if tick == 0 {
                32
            } else {
                text[..tick].parse().ok()?
            };
            if size == 0 || size > 4096 {
                return None;
            }
            let mut rest = text[tick + 1..].chars().peekable();
            let mut base_c = rest.next()?;
            if base_c == 's' || base_c == 'S' {
                base_c = rest.next()?;
            }
            let digits: String = rest.collect();
            if digits.is_empty() {
                return None;
            }
            let bits_per = match base_c.to_ascii_lowercase() {
                'b' => 1,
                'o' => 3,
                'h' => 4,
                'd' => 0,
                _ => return None,
            };
            if bits_per == 0 {
                // Decimal: x/z digits are only legal alone.
                if digits.eq_ignore_ascii_case("x") {
                    return Some(LogicVec::xes(size));
                }
                if digits.eq_ignore_ascii_case("z") {
                    return Some(LogicVec::filled(size, Logic::Z));
                }
                let v: u64 = digits.parse().ok()?;
                return Some(LogicVec::from_u64(size, v));
            }
            // Binary/octal/hex with four-state digits.
            let mut bits: Vec<Logic> = Vec::new();
            for c in digits.chars() {
                match c.to_ascii_lowercase() {
                    'x' => bits.extend(std::iter::repeat_n(Logic::X, bits_per)),
                    'z' | '?' => bits.extend(std::iter::repeat_n(Logic::Z, bits_per)),
                    d => {
                        let v = d.to_digit(1 << bits_per)?;
                        for i in (0..bits_per).rev() {
                            bits.push(Logic::from_bool(v >> i & 1 == 1));
                        }
                    }
                }
            }
            // Resize to declared size: truncate from the left, or pad with
            // 0 / X / Z depending on the leftmost digit (IEEE 1364 rule).
            let mut value = LogicVec::from_bits_msb_first(&bits);
            if value.width() > size {
                value = value.slice(size - 1, 0);
            } else if value.width() < size {
                let pad_bit = match bits.first() {
                    Some(Logic::X) => Logic::X,
                    Some(Logic::Z) => Logic::Z,
                    _ => Logic::Zero,
                };
                let pad = LogicVec::filled(size - value.width(), pad_bit);
                value = pad.concat(&value);
            }
            Some(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_decimal_is_32_bit() {
        let v = try_parse_literal("42").expect("valid");
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(42));
    }

    #[test]
    fn sized_hex() {
        let v = try_parse_literal("8'hA5").expect("valid");
        assert_eq!(v.width(), 8);
        assert_eq!(v.to_u64(), Some(0xA5));
    }

    #[test]
    fn binary_with_x_and_z() {
        let v = try_parse_literal("4'b1xz0").expect("valid");
        assert_eq!(v.get(3), Logic::One);
        assert_eq!(v.get(2), Logic::X);
        assert_eq!(v.get(1), Logic::Z);
        assert_eq!(v.get(0), Logic::Zero);
    }

    #[test]
    fn x_extension_pads_left() {
        let v = try_parse_literal("8'bx1").expect("valid");
        assert_eq!(v.get(7), Logic::X);
        assert_eq!(v.get(1), Logic::X);
        assert_eq!(v.get(0), Logic::One);
    }

    #[test]
    fn zero_extension_for_known_digits() {
        let v = try_parse_literal("8'b11").expect("valid");
        assert_eq!(v.to_u64(), Some(3));
    }

    #[test]
    fn truncation_from_left() {
        let v = try_parse_literal("4'hFF").expect("valid");
        assert_eq!(v.to_u64(), Some(0xF));
    }

    #[test]
    fn unsized_based_literal() {
        let v = try_parse_literal("'d9").expect("valid");
        assert_eq!(v.width(), 32);
        assert_eq!(v.to_u64(), Some(9));
    }

    #[test]
    fn underscores_ignored() {
        let v = try_parse_literal("16'b1010_1010_1010_1010").expect("valid");
        assert_eq!(v.to_u64(), Some(0xAAAA));
    }

    #[test]
    fn octal() {
        let v = try_parse_literal("6'o17").expect("valid");
        assert_eq!(v.to_u64(), Some(0o17));
    }

    #[test]
    fn decimal_x() {
        let v = try_parse_literal("8'dx").expect("valid");
        assert!(v.iter().all(|b| b == Logic::X));
    }

    #[test]
    fn malformed_literals_rejected() {
        assert!(try_parse_literal("8'q1").is_none());
        assert!(try_parse_literal("8'h").is_none());
        assert!(try_parse_literal("abc").is_none());
        assert!(try_parse_literal("8'dzz").is_none());
        assert!(try_parse_literal("0'b1").is_none());
    }
}
