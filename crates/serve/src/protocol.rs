//! The newline-delimited JSON wire protocol.
//!
//! Every line is one JSON object with a `"type"` field. Client → server:
//!
//! ```json
//! {"type":"submit","tenant":"acme","job":"j1","task":"prob000_and2",
//!  "lang":"verilog","flow":"aivril2"}
//! {"type":"ping"}
//! {"type":"stats"}
//! {"type":"shutdown"}
//! ```
//!
//! Server → client (`hello` greets each connection; then per job one
//! `ack` *or* `reject`, and for admitted jobs `progress` frames
//! followed by one `result`):
//!
//! ```json
//! {"type":"hello","schema":"aivril.serve","version":1,...}
//! {"type":"ack","tenant":"acme","job":"j1","seed":"0x..."}
//! {"type":"reject","tenant":"acme","job":"j9","reason":"queue_full",
//!  "retry_after_s":2.000000}
//! ```
//!
//! `reject.reason` is one of `queue_full` (the tenant's own budget is
//! exhausted), `server_full` (the global job cap is hit), `tenant_limit`
//! (no state slot for a new tenant name), `breaker_open` (the tenant's
//! admission breaker is open or probing) or `shutting_down`.
//!
//! ```json
//! {"type":"progress","tenant":"acme","job":"j1","seq":0,"event":{...}}
//! {"type":"result","tenant":"acme","job":"j1",...,"rtl":"..."}
//! ```
//!
//! Rendering rules match every other exporter in the workspace: fixed
//! field order, [`json::number`]'s fixed six-decimal floats, seeds as
//! hex strings (JSON numbers lose `u64` precision past 2^53). All
//! `ack`/`progress`/`result` fields are derived from job identity and
//! modeled time, so a replayed job's frames are byte-identical; the
//! volatile field of the schedule-dependent `reject` frame is
//! `retry_after_s` alone.

use crate::queue::QueueStats;
use aivril_bench::{Flow, JobRun};
use aivril_obs::{codec, json};

/// Current protocol schema version, carried by the `hello` frame.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on tenant/job/task name length — names become file
/// names and journal context values, so they stay short and printable.
const MAX_NAME: usize = 64;

/// One `submit` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitRequest {
    /// Tenant the job belongs to (admission-control scope).
    pub tenant: String,
    /// Job identifier, unique per tenant by convention; resubmitting
    /// the same `(tenant, job)` replays the same run bit-identically.
    pub job: String,
    /// Benchmark task name (e.g. `prob000_and2`).
    pub task: String,
    /// `true` for Verilog, `false` for VHDL.
    pub verilog: bool,
    /// Which pipeline to run.
    pub flow: Flow,
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Submit a job.
    Submit(SubmitRequest),
    /// Liveness probe; answered with `pong`.
    Ping,
    /// Service counters; answered with a `stats` frame.
    Stats,
    /// Graceful shutdown: drain admitted jobs, then exit.
    Shutdown,
}

/// `true` for names safe to use as file names and journal context
/// values: non-empty, bounded, `[A-Za-z0-9._-]`.
fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= MAX_NAME
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

/// Parses one request line. Total: malformed input yields a
/// human-readable error (sent back as an `error` frame), never a panic.
///
/// # Errors
///
/// Returns a description of the malformation: invalid JSON, unknown
/// `type`, missing or ill-formed fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line.trim()).ok_or_else(|| "invalid JSON".to_string())?;
    let typ = v
        .get("type")
        .and_then(json::Value::str)
        .ok_or_else(|| "missing \"type\"".to_string())?;
    match typ {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "submit" => {
            let field = |key: &str| -> Result<String, String> {
                let s = v
                    .get(key)
                    .and_then(json::Value::str)
                    .ok_or_else(|| format!("submit: missing \"{key}\""))?;
                if key == "task" || valid_name(s) {
                    Ok(s.to_string())
                } else {
                    Err(format!(
                        "submit: \"{key}\" must be 1..={MAX_NAME} chars of [A-Za-z0-9._-]"
                    ))
                }
            };
            let verilog = match v.get("lang").and_then(json::Value::str) {
                None | Some("verilog") => true,
                Some("vhdl") => false,
                Some(other) => {
                    return Err(format!(
                        "submit: \"lang\" must be verilog|vhdl, got {other:?}"
                    ))
                }
            };
            let flow = match v.get("flow").and_then(json::Value::str) {
                None | Some("aivril2") => Flow::Aivril2,
                Some("baseline") => Flow::Baseline,
                Some(other) => {
                    return Err(format!(
                        "submit: \"flow\" must be aivril2|baseline, got {other:?}"
                    ))
                }
            };
            Ok(Request::Submit(SubmitRequest {
                tenant: field("tenant")?,
                job: field("job")?,
                task: field("task")?,
                verilog,
                flow,
            }))
        }
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// Renders a client request line (the `aivril-submit` write side).
#[must_use]
pub fn render_request(req: &Request) -> String {
    match req {
        Request::Ping => json::object(&[("type", json::string("ping"))]),
        Request::Stats => json::object(&[("type", json::string("stats"))]),
        Request::Shutdown => json::object(&[("type", json::string("shutdown"))]),
        Request::Submit(s) => json::object(&[
            ("type", json::string("submit")),
            ("tenant", json::string(&s.tenant)),
            ("job", json::string(&s.job)),
            ("task", json::string(&s.task)),
            ("lang", json::string(lang_label(s.verilog))),
            ("flow", json::string(flow_label(s.flow))),
        ]),
    }
}

/// Stable label for the HDL of a request.
#[must_use]
pub fn lang_label(verilog: bool) -> &'static str {
    if verilog {
        "verilog"
    } else {
        "vhdl"
    }
}

/// Stable label for a [`Flow`].
#[must_use]
pub fn flow_label(flow: Flow) -> &'static str {
    match flow {
        Flow::Baseline => "baseline",
        Flow::Aivril2 => "aivril2",
    }
}

fn seed_hex(seed: u64) -> String {
    json::string(&format!("0x{seed:016x}"))
}

/// The per-connection greeting: schema, version, model and the
/// admission limits in force.
#[must_use]
pub fn hello_frame(model: &str, max_inflight: usize, max_queue: usize) -> String {
    json::object(&[
        ("type", json::string("hello")),
        ("schema", json::string("aivril.serve")),
        ("version", PROTOCOL_VERSION.to_string()),
        ("model", json::string(model)),
        ("max_inflight", max_inflight.to_string()),
        ("max_queue", max_queue.to_string()),
    ])
}

/// Admission acknowledgement for an accepted job.
#[must_use]
pub fn ack_frame(tenant: &str, job: &str, seed: u64) -> String {
    json::object(&[
        ("type", json::string("ack")),
        ("tenant", json::string(tenant)),
        ("job", json::string(job)),
        ("seed", seed_hex(seed)),
    ])
}

/// Structured admission rejection: the job will *not* run; the caller
/// should retry after `retry_after_s` wall seconds.
#[must_use]
pub fn reject_frame(tenant: &str, job: &str, reason: &str, retry_after_s: f64) -> String {
    json::object(&[
        ("type", json::string("reject")),
        ("tenant", json::string(tenant)),
        ("job", json::string(job)),
        ("reason", json::string(reason)),
        ("retry_after_s", json::number(retry_after_s)),
    ])
}

/// One streamed journal event (`seq` counts from 0 within the job);
/// `event` is a pre-rendered [`aivril_obs::render_event`] line,
/// embedded verbatim.
#[must_use]
pub fn progress_frame(tenant: &str, job: &str, seq: usize, event: &str) -> String {
    json::object(&[
        ("type", json::string("progress")),
        ("tenant", json::string(tenant)),
        ("job", json::string(job)),
        ("seq", seq.to_string()),
        ("event", event.to_string()),
    ])
}

/// The job's terminal frame: verdicts, modeled latencies, resilience
/// counters and the final sources. Every field is deterministic — a
/// function of the job's identity, never of scheduling.
#[must_use]
pub fn result_frame(spec: &SubmitRequest, seed: u64, run: &JobRun) -> String {
    let o = &run.record.outcome;
    let r = &run.record.resilience;
    let resilience = json::object(&[
        ("llm_faults", r.llm_faults.to_string()),
        ("retries", r.retries.to_string()),
        ("backoff_s", json::number(r.backoff_s)),
        ("breaker_opens", r.breaker_opens.to_string()),
        ("degraded", r.degraded.to_string()),
        ("sim_diverged", r.sim_diverged.to_string()),
    ]);
    json::object(&[
        ("type", json::string("result")),
        ("tenant", json::string(&spec.tenant)),
        ("job", json::string(&spec.job)),
        ("task", json::string(&spec.task)),
        ("lang", json::string(lang_label(spec.verilog))),
        ("flow", json::string(flow_label(spec.flow))),
        ("seed", seed_hex(seed)),
        ("syntax", o.syntax.to_string()),
        ("functional", o.functional.to_string()),
        ("syntax_iters", o.syntax_iters.to_string()),
        ("functional_iters", o.functional_iters.to_string()),
        ("modeled_seconds", json::number(o.total_latency)),
        ("llm_seconds", json::number(run.record.llm_seconds)),
        ("tool_seconds", json::number(run.record.tool_seconds)),
        ("crashed", o.crashed.to_string()),
        ("resilience", resilience),
        (
            "rtl_fnv",
            json::string(&format!("0x{:016x}", codec::fnv64(run.rtl.as_bytes()))),
        ),
        ("rtl", json::string(&run.rtl)),
        ("tb", json::string(&run.tb)),
    ])
}

/// Terminal frame for an admitted job that was cancelled without
/// running — e.g. `reason = "deadline_exceeded"` when a worker claimed
/// it past its per-job deadline. Replaces the `progress`/`result`
/// stream entirely: an expired job produces exactly this one frame
/// after its `ack`.
#[must_use]
pub fn expired_frame(tenant: &str, job: &str, reason: &str) -> String {
    json::object(&[
        ("type", json::string("expired")),
        ("tenant", json::string(tenant)),
        ("job", json::string(job)),
        ("reason", json::string(reason)),
    ])
}

/// Error frame for malformed or unserviceable requests.
#[must_use]
pub fn error_frame(message: &str) -> String {
    json::object(&[
        ("type", json::string("error")),
        ("message", json::string(message)),
    ])
}

/// Liveness answer.
#[must_use]
pub fn pong_frame() -> String {
    json::object(&[("type", json::string("pong"))])
}

/// Shutdown acknowledgement.
#[must_use]
pub fn bye_frame() -> String {
    json::object(&[("type", json::string("bye"))])
}

/// Service counters (volatile by nature; diagnostic only).
#[must_use]
pub fn stats_frame(stats: &QueueStats, cache: Option<&aivril_eda::CacheStats>) -> String {
    let cache = match cache {
        None => "null".to_string(),
        Some(c) => json::object(&[
            ("hits", c.hits.to_string()),
            ("misses", c.misses.to_string()),
            ("entries", c.entries.to_string()),
        ]),
    };
    json::object(&[
        ("type", json::string("stats")),
        ("completed", stats.completed.to_string()),
        ("rejected", stats.rejected.to_string()),
        ("queued", stats.queued.to_string()),
        ("inflight", stats.inflight.to_string()),
        ("tenants", stats.tenants.to_string()),
        ("eda_cache", cache),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Submit(SubmitRequest {
                tenant: "acme".into(),
                job: "j-1".into(),
                task: "prob000_and2".into(),
                verilog: true,
                flow: Flow::Aivril2,
            }),
            Request::Submit(SubmitRequest {
                tenant: "globex".into(),
                job: "nightly.42".into(),
                task: "prob001_or2".into(),
                verilog: false,
                flow: Flow::Baseline,
            }),
        ] {
            let line = render_request(&req);
            assert_eq!(parse_request(&line), Ok(req.clone()), "line: {line}");
        }
    }

    #[test]
    fn submit_defaults_lang_and_flow() {
        let r = parse_request(
            "{\"type\":\"submit\",\"tenant\":\"t\",\"job\":\"j\",\"task\":\"prob000_and2\"}",
        )
        .unwrap();
        match r {
            Request::Submit(s) => {
                assert!(s.verilog);
                assert_eq!(s.flow, Flow::Aivril2);
            }
            other => panic!("not a submit: {other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_described_not_panicked() {
        for (line, needle) in [
            ("", "invalid JSON"),
            ("{}", "missing \"type\""),
            ("{\"type\":\"warp\"}", "unknown request type"),
            ("{\"type\":\"submit\",\"job\":\"j\",\"task\":\"t\"}", "tenant"),
            (
                "{\"type\":\"submit\",\"tenant\":\"has space\",\"job\":\"j\",\"task\":\"t\"}",
                "tenant",
            ),
            (
                "{\"type\":\"submit\",\"tenant\":\"t\",\"job\":\"j\",\"task\":\"t\",\"lang\":\"ada\"}",
                "lang",
            ),
            (
                "{\"type\":\"submit\",\"tenant\":\"t\",\"job\":\"j\",\"task\":\"t\",\"flow\":\"warp\"}",
                "flow",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?} -> {err}");
        }
    }

    #[test]
    fn frames_are_stable_json() {
        let ack = ack_frame("acme", "j1", 0xdead_beef);
        assert_eq!(
            ack,
            "{\"type\":\"ack\",\"tenant\":\"acme\",\"job\":\"j1\",\
             \"seed\":\"0x00000000deadbeef\"}"
        );
        let rej = reject_frame("acme", "j9", "queue_full", 2.0);
        assert!(rej.contains("\"reason\":\"queue_full\""), "{rej}");
        assert!(rej.contains("\"retry_after_s\":2.000000"), "{rej}");
        let prog = progress_frame("acme", "j1", 3, "{\"span\":\"llm.chat\"}");
        assert!(prog.contains("\"seq\":3"), "{prog}");
        assert!(prog.contains("\"event\":{\"span\":\"llm.chat\"}"), "{prog}");
        // Frames parse back with the total reader.
        for frame in [
            ack,
            rej,
            prog,
            hello_frame("m", 2, 8),
            pong_frame(),
            bye_frame(),
        ] {
            assert!(aivril_obs::json::parse(&frame).is_some(), "{frame}");
        }
    }
}
