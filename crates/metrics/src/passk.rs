//! The unbiased pass@k estimator.

/// Unbiased pass@k of Chen et al. (2021): given `n` samples of which
/// `c` are correct, estimates the probability that at least one of `k`
/// drawn samples is correct:
///
/// `pass@k = 1 - C(n-c, k) / C(n, k)`
///
/// computed in the numerically stable product form.
///
/// `k` larger than `n` is clamped to `n`: drawing more samples than
/// exist is the same event as drawing all of them, so the estimate is
/// well defined and equals `pass@n`. This situation is reachable in
/// practice when a table binary is run with a reduced sample count
/// (`AIVRIL_SAMPLES=2` while the table reports pass@5).
///
/// # Panics
///
/// Panics if `c > n` or `k == 0`.
#[must_use]
pub fn pass_at_k(n: u64, c: u64, k: u64) -> f64 {
    assert!(c <= n, "correct count exceeds sample count");
    assert!(k >= 1, "k must be at least 1");
    let k = k.min(n);
    if c == 0 {
        return 0.0;
    }
    if n - c < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k/i)
    let mut prod = 1.0;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Average pass@k across a suite: `per_task` holds `(n, c)` pairs.
///
/// Tasks may carry heterogeneous sample counts (e.g. when a run was
/// truncated); `k` is clamped per task, so a task with `n < k`
/// contributes its `pass@n`.
///
/// # Panics
///
/// Panics when `per_task` is empty, or on any invalid `(n, c)` pair,
/// or when `k == 0`.
#[must_use]
pub fn suite_pass_at_k(per_task: &[(u64, u64)], k: u64) -> f64 {
    assert!(!per_task.is_empty(), "need at least one task");
    let sum: f64 = per_task.iter().map(|&(n, c)| pass_at_k(n, c, k)).sum();
    sum / per_task.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k1_is_fraction_correct() {
        assert!((pass_at_k(10, 3, 1) - 0.3).abs() < 1e-12);
        assert!((pass_at_k(1, 1, 1) - 1.0).abs() < 1e-12);
        assert_eq!(pass_at_k(10, 0, 1), 0.0);
    }

    #[test]
    fn all_correct_is_one() {
        assert_eq!(pass_at_k(5, 5, 3), 1.0);
    }

    #[test]
    fn matches_combinatorial_definition() {
        // n=5, c=2, k=2: 1 - C(3,2)/C(5,2) = 1 - 3/10 = 0.7
        assert!((pass_at_k(5, 2, 2) - 0.7).abs() < 1e-12);
        // n=4, c=1, k=2: 1 - C(3,2)/C(4,2) = 1 - 3/6 = 0.5
        assert!((pass_at_k(4, 1, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_c_and_k() {
        for c in 0..10u64 {
            assert!(pass_at_k(10, c + 1, 1) > pass_at_k(10, c, 1) - 1e-12);
        }
        for k in 1..9u64 {
            assert!(pass_at_k(10, 3, k + 1) >= pass_at_k(10, 3, k) - 1e-12);
        }
    }

    #[test]
    fn suite_average() {
        let v = suite_pass_at_k(&[(10, 10), (10, 0)], 1);
        assert!((v - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamps_k_above_n() {
        // pass@k for k > n is pass@n, not a panic: the "at least one of
        // k draws" event saturates once every sample is drawn.
        assert_eq!(
            pass_at_k(3, 1, 8).to_bits(),
            pass_at_k(3, 1, 3).to_bits(),
            "k > n must clamp to k = n"
        );
        assert_eq!(pass_at_k(2, 1, 5), 1.0);
        assert_eq!(pass_at_k(2, 0, 5), 0.0);
    }

    #[test]
    fn suite_with_heterogeneous_n_does_not_panic() {
        // Regression: a suite where one task has fewer samples than k
        // (truncated run) used to panic inside pass_at_k. The short
        // task now contributes its pass@n.
        let v = suite_pass_at_k(&[(5, 2), (2, 1)], 5);
        let expected = (pass_at_k(5, 2, 5) + pass_at_k(2, 1, 2)) / 2.0;
        assert_eq!(v.to_bits(), expected.to_bits());
        assert!(v > 0.0 && v <= 1.0);
    }

    #[test]
    #[should_panic(expected = "correct count exceeds")]
    fn rejects_c_above_n() {
        let _ = pass_at_k(3, 4, 1);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn rejects_zero_k() {
        let _ = pass_at_k(3, 1, 0);
    }
}
