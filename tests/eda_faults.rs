//! Chaos-plane acceptance suite: the deterministic EDA/storage fault
//! injector (`AIVRIL_EDA_FAULTS`) must not cost the workspace any of
//! its determinism guarantees. Every fault decision is a pure hash of
//! the invocation's content key, so a faulted evaluation is required
//! to be **byte-identical** across worker-thread counts and cache
//! modes — and with the plan off, byte-identical to a build that has
//! never heard of faults.

use aivril_bench::{results_json, Flow, Harness, HarnessConfig, ResultSection};
use aivril_eda::EdaFaultPlan;
use aivril_llm::{profiles, FaultConfig};
use aivril_obs::{render_journal, Recorder};

/// A canonical-mode config so the whole results JSON (volatile stats
/// masked) is byte-comparable across schedules.
fn config(threads: usize) -> HarnessConfig {
    HarnessConfig {
        samples: 1,
        task_limit: 4,
        threads,
        canonical: true,
        ..HarnessConfig::default()
    }
}

/// The composed plan the acceptance criteria exercise: every tool
/// class plus disk chaos, at rates high enough to fire repeatedly on
/// a four-task grid.
fn plan() -> EdaFaultPlan {
    EdaFaultPlan::parse(
        "crash=0.25,hang=0.1,garbled=0.2,truncate=0.15,spurious_exit=0.2,\
         disk_probe_eio=0.3,disk_short_write=0.3,retry_max=2,watchdog_s=30",
    )
    .expect("plan parses")
}

/// One full grid (both flows, Verilog) under `cfg`: (results JSON,
/// rendered run journal, canonical metrics text).
fn artifacts(cfg: &HarnessConfig) -> (String, String, String) {
    let recorder = Recorder::new();
    let harness = Harness::new(cfg.clone()).with_recorder(recorder.clone());
    let profile = profiles::claude35_sonnet();
    let mut sections = Vec::new();
    for flow in [Flow::Baseline, Flow::Aivril2] {
        let (outcomes, stats) = harness.evaluate_with_stats(&profile, true, flow);
        sections.push(ResultSection {
            label: "chaos acceptance".into(),
            outcomes,
            stats,
        });
    }
    (
        results_json(&sections),
        render_journal(&recorder),
        recorder.metrics().canonical().render(),
    )
}

#[test]
fn faulted_artifacts_are_bit_identical_across_thread_counts() {
    let mut one = config(1);
    one.eda_faults = plan();
    let mut four = config(4);
    four.eda_faults = plan();
    let (res_1, jrn_1, met_1) = artifacts(&one);
    let (res_4, jrn_4, met_4) = artifacts(&four);
    assert_eq!(res_1, res_4, "faulted results must not see the schedule");
    assert_eq!(jrn_1, jrn_4, "faulted journals must not see the schedule");
    assert_eq!(met_1, met_4, "faulted metrics must not see the schedule");

    // The plan is live, not decorative: it must change outcomes
    // relative to the clean run (crashes exhaust retries and fail
    // compiles that would otherwise succeed).
    let (clean, _, _) = artifacts(&config(1));
    assert_ne!(res_1, clean, "a composed fault plan must actually fire");
}

#[test]
fn faulted_artifacts_are_bit_identical_across_cache_modes() {
    let mut off = config(2);
    off.eda_faults = plan();
    let mut on = off.clone();
    on.eda_cache = true;
    let (res_off, jrn_off, _) = artifacts(&off);
    let (res_on, jrn_on, _) = artifacts(&on);
    assert_eq!(res_off, res_on, "faults must roll on content, not on hits");
    assert_eq!(jrn_off, jrn_on);
}

#[test]
fn composed_llm_and_eda_faults_stay_deterministic() {
    let compose = |threads: usize| {
        let mut cfg = config(threads);
        cfg.faults = FaultConfig::uniform(0.15);
        cfg.eda_faults = plan();
        cfg
    };
    let (res_1, jrn_1, met_1) = artifacts(&compose(1));
    let (res_4, jrn_4, met_4) = artifacts(&compose(4));
    assert_eq!(res_1, res_4);
    assert_eq!(jrn_1, jrn_4);
    assert_eq!(met_1, met_4);
}

#[test]
fn an_off_plan_is_exactly_the_default_code_path() {
    // `EdaFaultPlan::off()` (what an unset `AIVRIL_EDA_FAULTS`
    // resolves to) must be indistinguishable from a config that never
    // touched the field: same results, same journal, same metrics.
    let default = config(2);
    let mut explicit = config(2);
    explicit.eda_faults = EdaFaultPlan::off();
    assert!(explicit.eda_faults.is_off());
    let (res_d, jrn_d, met_d) = artifacts(&default);
    let (res_e, jrn_e, met_e) = artifacts(&explicit);
    assert_eq!(res_d, res_e);
    assert_eq!(jrn_d, jrn_e);
    assert_eq!(met_d, met_e);
}
