//! Source files, byte spans and line/column mapping.
//!
//! Both language frontends attach [`Span`]s to tokens, AST nodes and
//! diagnostics so that error messages can point at exact file/line
//! locations — the level of detail the paper's *Review Agent* relies on
//! when turning compiler logs into corrective prompts.

use std::fmt;

/// Identifies a file registered in a [`SourceMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A byte range inside a source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// File containing this span.
    pub file: FileId,
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)` in `file`.
    #[must_use]
    pub fn new(file: FileId, start: u32, end: u32) -> Span {
        Span { file, start, end }
    }

    /// A zero-length span at the start of `file`, used for diagnostics
    /// that have no better anchor.
    #[must_use]
    pub fn file_start(file: FileId) -> Span {
        Span {
            file,
            start: 0,
            end: 0,
        }
    }

    /// Merges two spans in the same file into their covering span.
    #[must_use]
    pub fn to(self, other: Span) -> Span {
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

/// One registered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    name: String,
    text: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    fn new(name: String, text: String) -> SourceFile {
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceFile {
            name,
            text,
            line_starts,
        }
    }

    /// File name as registered (e.g. `shift_register.v`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Full source text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// 1-based line number containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: u32) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based (line, column) of byte `offset`.
    #[must_use]
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = self.line_of(offset);
        let line_start = self.line_starts[(line - 1) as usize];
        (line, offset - line_start + 1)
    }

    /// The full text of 1-based line `line`, without its newline.
    #[must_use]
    pub fn line_text(&self, line: u32) -> &str {
        let idx = (line - 1) as usize;
        if idx >= self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[idx] as usize;
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.text.len(), |&e| e as usize);
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// Number of lines in the file.
    #[must_use]
    pub fn line_count(&self) -> u32 {
        self.line_starts.len() as u32
    }
}

/// A collection of source files addressed by [`FileId`].
///
/// # Example
///
/// ```
/// use aivril_hdl::source::SourceMap;
///
/// let mut map = SourceMap::new();
/// let id = map.add_file("top.v", "module top;\nendmodule\n");
/// assert_eq!(map.file(id).line_count(), 3);
/// assert_eq!(map.file(id).line_text(2), "endmodule");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    files: Vec<SourceFile>,
}

impl SourceMap {
    /// Creates an empty source map.
    #[must_use]
    pub fn new() -> SourceMap {
        SourceMap::default()
    }

    /// Registers a file and returns its id.
    pub fn add_file(&mut self, name: impl Into<String>, text: impl Into<String>) -> FileId {
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile::new(name.into(), text.into()));
        id
    }

    /// Looks up a registered file.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this map.
    #[must_use]
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Iterates over `(FileId, &SourceFile)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files
            .iter()
            .enumerate()
            .map(|(i, f)| (FileId(i as u32), f))
    }

    /// Number of registered files.
    #[must_use]
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// `true` when no files are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Renders `span` as `file.v:LINE` for log output.
    #[must_use]
    pub fn describe(&self, span: Span) -> String {
        let file = self.file(span.file);
        format!("{}:{}", file.name(), file.line_of(span.start))
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_mapping() {
        let mut map = SourceMap::new();
        let id = map.add_file("a.v", "abc\ndef\nghi");
        let f = map.file(id);
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(4), (2, 1));
        assert_eq!(f.line_col(6), (2, 3));
        assert_eq!(f.line_col(8), (3, 1));
    }

    #[test]
    fn line_text_extraction() {
        let mut map = SourceMap::new();
        let id = map.add_file("a.v", "first\nsecond\r\nthird");
        let f = map.file(id);
        assert_eq!(f.line_text(1), "first");
        assert_eq!(f.line_text(2), "second");
        assert_eq!(f.line_text(3), "third");
        assert_eq!(f.line_text(99), "");
    }

    #[test]
    fn describe_span() {
        let mut map = SourceMap::new();
        let id = map.add_file("adder.v", "module adder;\nendmodule\n");
        let span = Span::new(id, 14, 23);
        assert_eq!(map.describe(span), "adder.v:2");
    }

    #[test]
    fn span_merge() {
        let a = Span::new(FileId(0), 4, 9);
        let b = Span::new(FileId(0), 7, 20);
        let m = a.to(b);
        assert_eq!((m.start, m.end), (4, 20));
    }

    #[test]
    fn empty_map() {
        let map = SourceMap::new();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
    }
}
