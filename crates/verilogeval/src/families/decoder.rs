//! Binary decoders with one-hot outputs (10 problems).

use crate::builders::{comb_problem, CombSpec};
use crate::port::Port;
use crate::{Difficulty, Family, Problem};

/// n-to-2^n decoder; optional enable; optional active-low outputs.
fn decoder(sel_bits: u32, enable: bool, active_low: bool) -> CombSpec {
    let out_w = 1u32 << sel_bits;
    let out_mask = (1u64 << out_w) - 1;
    let mut name = format!("dec{}to{}", sel_bits, out_w);
    if enable {
        name.push_str("_en");
    }
    if active_low {
        name.push_str("_low");
    }
    let mut varms = String::new();
    let mut harms = String::new();
    for i in 0..out_w {
        let mut pat = 1u64 << i;
        if active_low {
            pat = !pat & out_mask;
        }
        let label_v = format!("{sel_bits}'b{:0w$b}", i, w = sel_bits as usize);
        let lit_v = format!("{out_w}'b{:0w$b}", pat, w = out_w as usize);
        varms.push_str(&format!("      {label_v}: y = {lit_v};\n"));
        harms.push_str(&format!(
            "      when \"{:0sw$b}\" => y <= \"{:0ow$b}\";\n",
            i,
            pat,
            sw = sel_bits as usize,
            ow = out_w as usize
        ));
    }
    let idle = if active_low { out_mask } else { 0 };
    let idle_v = format!("{out_w}'b{:0w$b}", idle, w = out_w as usize);
    let idle_h = format!("\"{:0w$b}\"", idle, w = out_w as usize);
    let (vlog_body, vhdl_body) = if enable {
        (
            format!(
                "  always @* begin\n    if (en) begin\n      case (a)\n{varms}      default: y = {idle_v};\n      endcase\n    end else begin\n      y = {idle_v};\n    end\n  end\n"
            ),
            format!(
                "  process (a, en)\n  begin\n    if en = '1' then\n      case a is\n{harms}      when others => y <= {idle_h};\n      end case;\n    else\n      y <= {idle_h};\n    end if;\n  end process;\n"
            ),
        )
    } else {
        (
            format!(
                "  always @* begin\n    case (a)\n{varms}      default: y = {idle_v};\n    endcase\n  end\n"
            ),
            format!(
                "  process (a)\n  begin\n    case a is\n{harms}      when others => y <= {idle_h};\n    end case;\n  end process;\n"
            ),
        )
    };
    let mut inputs = vec![Port::new("a", sel_bits)];
    if enable {
        inputs.push(Port::new("en", 1));
    }
    let polarity = if active_low {
        "active-low (exactly one 0)"
    } else {
        "one-hot (exactly one 1)"
    };
    let en_text = if enable {
        if active_low {
            " When en is 0 every output bit is 1."
        } else {
            " When en is 0 all outputs are 0."
        }
    } else {
        ""
    };
    CombSpec {
        name,
        family: Family::Decoder,
        difficulty: if sel_bits >= 3 { Difficulty::Medium } else { Difficulty::Easy },
        description: format!(
            "A {sel_bits}-to-{out_w} binary decoder: output bit a of y is asserted, with {polarity} encoding.{en_text}"
        ),
        inputs,
        outputs: vec![Port::new("y", out_w)],
        vlog_body,
        vlog_out_reg: true,
        vhdl_body,
        vhdl_decls: String::new(),
        eval: Box::new(move |v| {
            let mut out = 1u64 << v[0];
            if enable && v[1] == 0 {
                out = 0;
            }
            if active_low {
                out = !out & out_mask;
                if enable && v[1] == 0 {
                    out = out_mask;
                }
            }
            vec![out]
        }),
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(comb_problem(decoder(1, false, false)));
    problems.push(comb_problem(decoder(1, true, false)));
    problems.push(comb_problem(decoder(2, false, false)));
    problems.push(comb_problem(decoder(2, true, false)));
    problems.push(comb_problem(decoder(2, true, true)));
    problems.push(comb_problem(decoder(3, false, false)));
    problems.push(comb_problem(decoder(3, true, false)));
    problems.push(comb_problem(decoder(3, true, true)));
    problems.push(comb_problem(decoder(4, false, false)));
    problems.push(comb_problem(decoder(4, true, false)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_10_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 10);
    }

    #[test]
    fn active_low_inverts() {
        let spec = decoder(2, true, true);
        assert_eq!((spec.eval)(&[1, 1]), vec![0b1101]);
        assert_eq!((spec.eval)(&[1, 0]), vec![0b1111]);
    }

    #[test]
    fn plain_decoder_one_hot() {
        let spec = decoder(3, false, false);
        assert_eq!((spec.eval)(&[5]), vec![1 << 5]);
    }
}
