//! Edge detectors and pulse logic (8 problems).

use crate::builders::{seq_problem, SeqSpec};
use crate::port::{Port, SplitMix};
use crate::{Difficulty, Family, Problem};

fn bit_stim(cycles: usize, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix::new(seed);
    (0..cycles)
        .map(|c| vec![u64::from(c < 2), rng.next_u64() & 1])
        .collect()
}

/// Registered edge detector: `p` pulses one cycle after the selected
/// transition of `d`.
fn detector(kind: &str, f: fn(u64, u64) -> u64, vexpr: &str, hexpr: &str, desc: &str) -> SeqSpec {
    let stim = bit_stim(30, kind.len() as u64 * 7 + 3);
    let mut prev = 0u64;
    let mut p = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                prev = 0;
                p = 0;
            } else {
                p = f(prev, v[1]);
                prev = v[1];
            }
            Some(vec![p])
        })
        .collect();
    SeqSpec {
        name: format!("edge_{kind}_det"),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Medium,
        description: desc.to_string(),
        inputs: vec![Port::new("rst", 1), Port::new("d", 1)],
        outputs: vec![Port::new("p", 1)],
        vlog_body: format!(
            "  reg prev;\n  always @(posedge clk) begin\n    if (rst) begin prev <= 0; p <= 0; end\n    else begin\n      p <= {vexpr};\n      prev <= d;\n    end\n  end\n"
        ),
        vhdl_body: format!(
            "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        prev <= '0';\n        p <= '0';\n      else\n        p <= {hexpr};\n        prev <= d;\n      end if;\n    end if;\n  end process;\n"
        ),
        vhdl_decls: "  signal prev : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn bus_change(width: u32) -> SeqSpec {
    let mut rng = SplitMix::new(29);
    let stim: Vec<Vec<u64>> = (0..26)
        .map(|c| vec![u64::from(c < 2), rng.bits(width)])
        .collect();
    let m = (1u64 << width) - 1;
    let mut prev = 0u64;
    let mut p = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                prev = 0;
                p = 0;
            } else {
                p = (prev ^ v[1]) & m;
                prev = v[1];
            }
            Some(vec![p])
        })
        .collect();
    let hi = width - 1;
    SeqSpec {
        name: format!("bus_change_w{width}"),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Medium,
        description: format!(
            "A per-bit change detector over a {width}-bit bus: each bit of p is 1 for one cycle after the corresponding bit of d changed. rst synchronously clears the detector."
        ),
        inputs: vec![Port::new("rst", 1), Port::new("d", width)],
        outputs: vec![Port::new("p", width)],
        vlog_body: format!(
            "  reg [{hi}:0] prev;\n  always @(posedge clk) begin\n    if (rst) begin prev <= 0; p <= 0; end\n    else begin\n      p <= prev ^ d;\n      prev <= d;\n    end\n  end\n"
        ),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        prev <= (others => '0');\n        p <= (others => '0');\n      else\n        p <= prev xor d;\n        prev <= d;\n      end if;\n    end if;\n  end process;\n".into(),
        vhdl_decls: format!("  signal prev : std_logic_vector({hi} downto 0) := (others => '0');\n"),
        stimulus: stim,
        expected,
    }
}

fn stable2() -> SeqSpec {
    let stim = bit_stim(30, 17);
    let (mut prev, mut out) = (0u64, 0u64);
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                prev = 0;
                out = 0;
            } else {
                out = u64::from(prev == v[1]);
                prev = v[1];
            }
            Some(vec![out])
        })
        .collect();
    SeqSpec {
        name: "stable2".into(),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Medium,
        description: "s is 1 when the input d held the same value across the last two rising clock edges (a 2-sample stability/debounce flag). rst synchronously clears the history.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("d", 1)],
        outputs: vec![Port::new("s", 1)],
        vlog_body: "  reg prev;\n  always @(posedge clk) begin\n    if (rst) begin prev <= 0; s <= 0; end\n    else begin\n      s <= ~(prev ^ d);\n      prev <= d;\n    end\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        prev <= '0';\n        s <= '0';\n      else\n        s <= prev xnor d;\n        prev <= d;\n      end if;\n    end if;\n  end process;\n".into(),
        vhdl_decls: "  signal prev : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn toggle_on_rise() -> SeqSpec {
    let stim = bit_stim(30, 23);
    let (mut prev, mut t) = (0u64, 0u64);
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                prev = 0;
                t = 0;
            } else {
                if prev == 0 && v[1] == 1 {
                    t ^= 1;
                }
                prev = v[1];
            }
            Some(vec![t])
        })
        .collect();
    SeqSpec {
        name: "toggle_on_rise".into(),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Hard,
        description: "t flips its value on every rising edge of the input d (a toggle flip-flop driven by an edge detector). rst synchronously clears t and the edge history.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("d", 1)],
        outputs: vec![Port::new("t", 1)],
        vlog_body: "  reg prev;\n  always @(posedge clk) begin\n    if (rst) begin prev <= 0; t <= 0; end\n    else begin\n      if (~prev & d) t <= ~t;\n      prev <= d;\n    end\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        prev <= '0';\n        t <= '0';\n      else\n        if (not prev and d) = '1' then\n          t <= not t;\n        end if;\n        prev <= d;\n      end if;\n    end if;\n  end process;\n".into(),
        vhdl_decls: "  signal prev : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn sticky() -> SeqSpec {
    let stim = bit_stim(26, 31);
    let mut flag = 0u64;
    let expected = stim
        .iter()
        .map(|v| {
            flag = if v[0] == 1 { 0 } else { flag | v[1] };
            Some(vec![flag])
        })
        .collect();
    SeqSpec {
        name: "sticky_flag".into(),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Easy,
        description: "f is a sticky flag: once the input d has been 1 at any rising edge, f stays 1 until the synchronous reset rst clears it.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("d", 1)],
        outputs: vec![Port::new("f", 1)],
        vlog_body: "  always @(posedge clk) begin\n    if (rst) f <= 0;\n    else f <= f | d;\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        r <= '0';\n      else\n        r <= r or d;\n      end if;\n    end if;\n  end process;\n  f <= r;\n".into(),
        vhdl_decls: "  signal r : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

fn delay2() -> SeqSpec {
    let stim = bit_stim(26, 37);
    let (mut d1, mut d2) = (0u64, 0u64);
    let expected = stim
        .iter()
        .map(|v| {
            if v[0] == 1 {
                d1 = 0;
                d2 = 0;
            } else {
                d2 = d1;
                d1 = v[1];
            }
            Some(vec![d2])
        })
        .collect();
    SeqSpec {
        name: "delay2".into(),
        family: Family::EdgeDetector,
        difficulty: Difficulty::Easy,
        description: "q is the input d delayed by exactly two clock cycles (a two-stage synchroniser). rst synchronously clears both stages.".into(),
        inputs: vec![Port::new("rst", 1), Port::new("d", 1)],
        outputs: vec![Port::new("q", 1)],
        vlog_body: "  reg s1;\n  always @(posedge clk) begin\n    if (rst) begin s1 <= 0; q <= 0; end\n    else begin\n      q <= s1;\n      s1 <= d;\n    end\n  end\n".into(),
        vhdl_body: "  process (clk)\n  begin\n    if rising_edge(clk) then\n      if rst = '1' then\n        s1 <= '0';\n        q <= '0';\n      else\n        q <= s1;\n        s1 <= d;\n      end if;\n    end if;\n  end process;\n".into(),
        vhdl_decls: "  signal s1 : std_logic := '0';\n".into(),
        stimulus: stim,
        expected,
    }
}

/// Appends the family's problems.
pub fn extend(problems: &mut Vec<Problem>) {
    problems.push(seq_problem(detector(
        "rising",
        |prev, d| u64::from(prev == 0 && d == 1),
        "~prev & d",
        "(not prev) and d",
        "p pulses high for one cycle after each rising edge (0→1 transition) of the input d, observed across consecutive rising clock edges. rst synchronously clears the detector.",
    )));
    problems.push(seq_problem(detector(
        "falling",
        |prev, d| u64::from(prev == 1 && d == 0),
        "prev & ~d",
        "prev and (not d)",
        "p pulses high for one cycle after each falling edge (1→0 transition) of the input d, observed across consecutive rising clock edges. rst synchronously clears the detector.",
    )));
    problems.push(seq_problem(detector(
        "any",
        |prev, d| u64::from(prev != d),
        "prev ^ d",
        "prev xor d",
        "p pulses high for one cycle after every transition (either direction) of the input d, observed across consecutive rising clock edges. rst synchronously clears the detector.",
    )));
    problems.push(seq_problem(bus_change(4)));
    problems.push(seq_problem(bus_change(8)));
    problems.push(seq_problem(stable2()));
    problems.push(seq_problem(toggle_on_rise()));
    problems.push(seq_problem(sticky()));
    problems.push(seq_problem(delay2()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributes_9_problems() {
        let mut v = Vec::new();
        extend(&mut v);
        assert_eq!(v.len(), 9);
    }
}
