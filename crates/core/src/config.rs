//! Pipeline configuration.

use crate::resilience::ResiliencePolicy;
use aivril_llm::GenParams;

/// How much distilled detail corrective prompts carry — the ablation
/// knob behind the paper's claim (Sec. 3.2) that detailed prompts
/// minimise iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PromptDetail {
    /// Locations, code snippets and fixing hints (the AIVRIL2 default).
    #[default]
    Detailed,
    /// Error identifiers only — no locations or snippets.
    ErrorsOnly,
}

/// Iteration budgets and sampling parameters for the two loops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aivril2Config {
    /// Maximum corrective iterations of each Syntax Optimization loop
    /// (testbench and RTL each get this budget).
    pub max_syntax_iters: u32,
    /// Maximum corrective iterations of the Functional Optimization
    /// loop.
    pub max_functional_iters: u32,
    /// LLM sampling parameters (the paper fixes temperature 0.2 /
    /// top_p 0.1; the seed field is overwritten per task sample).
    pub gen_params: GenParams,
    /// `true` (default) runs the testbench-first methodology: the
    /// testbench is generated and syntax-validated before any RTL
    /// exists. `false` reproduces the AIVRIL(1)-style simultaneous
    /// flow the paper improved on: the testbench is taken as generated,
    /// unvalidated.
    pub testbench_first: bool,
    /// Corrective-prompt detail level.
    pub prompt_detail: PromptDetail,
    /// Retry/backoff/circuit-breaker policy for transient backend
    /// faults. Irrelevant (never consulted) when the model never fails.
    pub resilience: ResiliencePolicy,
}

impl Default for Aivril2Config {
    fn default() -> Aivril2Config {
        Aivril2Config {
            max_syntax_iters: 5,
            max_functional_iters: 5,
            gen_params: GenParams::default(),
            testbench_first: true,
            prompt_detail: PromptDetail::Detailed,
            resilience: ResiliencePolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_bounded() {
        let c = Aivril2Config::default();
        assert!(c.max_syntax_iters >= 1);
        assert!(c.max_functional_iters >= 1);
        assert!((c.gen_params.temperature - 0.2).abs() < 1e-9);
        assert!(c.testbench_first);
        assert_eq!(c.prompt_detail, PromptDetail::Detailed);
    }
}
